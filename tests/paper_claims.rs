//! The paper's headline claims, one test per claim, runnable end to end
//! through the public `webwave` API.

use webwave::experiments;
use webwave::fold::webfold;
use webwave::model::{NodeId, RateVector};
use webwave::tlb;
use webwave::topology::paper;

/// Claim (Section 3 / Figure 2): whether TLB achieves GLE depends only on
/// the spontaneous rates; both cases exist on the same tree.
#[test]
fn claim_tlb_vs_gle_duality() {
    let r = experiments::fig2();
    assert!(r.a_is_gle, "fig2a must admit GLE");
    assert!(!r.b_is_gle, "fig2b must not admit GLE");
    // The infeasibility is exactly an NSS violation of uniform load.
    let s = paper::fig2b();
    let uniform = RateVector::uniform(5, s.total_demand() / 5.0);
    assert!(!tlb::check_feasibility(&s.tree, &s.spontaneous, &uniform, 1e-9).nss);
}

/// Claim (Theorem 1): WebFold's assignment is tree load balanced — no
/// feasible assignment has a lexicographically smaller sorted load vector.
#[test]
fn claim_webfold_is_optimal() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for s in paper::all_scenarios() {
        let oracle = webfold(&s.tree, &s.spontaneous).into_load();
        assert!(tlb::is_tlb(&s.tree, &s.spontaneous, &oracle, 1e-9));
        for _ in 0..300 {
            let rival = tlb::random_feasible_assignment(&mut rng, &s.tree, &s.spontaneous);
            assert_ne!(
                oracle.compare_balance(&rival, 1e-9),
                std::cmp::Ordering::Greater,
                "{}: a feasible rival beat WebFold",
                s.name
            );
        }
    }
}

/// Claim (Lemmas 1-3): monotone loads, zero inter-fold flow, NSS.
#[test]
fn claim_webfold_lemmas() {
    for s in paper::all_scenarios() {
        let folded = webfold(&s.tree, &s.spontaneous);
        assert!(tlb::check_monotone_non_increasing(
            &s.tree,
            folded.load(),
            1e-9
        ));
        assert!(tlb::check_zero_interfold_flow(
            &s.tree,
            &s.spontaneous,
            &folded,
            1e-9
        ));
        assert!(tlb::check_feasibility(&s.tree, &s.spontaneous, folded.load(), 1e-9).is_feasible());
    }
}

/// Claim (Section 5.1 / Figure 6b): WebWave converges to TLB
/// exponentially fast; the distance is bounded by `a * gamma^t` with
/// `0 < gamma < 1`.
#[test]
fn claim_exponential_convergence() {
    let r = experiments::fig6b(400);
    let fit = r.fit.expect("fit succeeds");
    assert!(fit.gamma > 0.0 && fit.gamma < 1.0, "gamma {}", fit.gamma);
    // Exponential in practice: five decades of decay within the run.
    let d = &r.distances;
    assert!(
        d[d.len() - 1] < d[0] * 1e-5,
        "final {} of {}",
        d[d.len() - 1],
        d[0]
    );
}

/// Claim (Section 5.1): the regression machinery reproduces a
/// `gamma (stderr)` pair for a depth-9 random tree, with gamma rising
/// with depth (deeper trees mix more slowly).
#[test]
fn claim_gamma_regression_shape() {
    let study = experiments::gamma_study(&[3, 6, 9], 128, 500, 2026);
    assert_eq!(study.rows.len(), 3);
    for row in &study.rows {
        assert!(row.gamma > 0.0 && row.gamma < 1.0);
        assert!(row.stderr > 0.0 && row.stderr < 0.05);
    }
    assert!(
        study.rows[2].gamma > study.rows[0].gamma,
        "depth 9 ({}) should mix slower than depth 3 ({})",
        study.rows[2].gamma,
        study.rows[0].gamma
    );
}

/// Claim (Section 5.2 / Figure 7): the potential barrier stalls plain
/// diffusion off-TLB; tunneling recovers the uniform-90 optimum.
#[test]
fn claim_barrier_and_tunneling() {
    let r = experiments::fig7(1500);
    // Stalled: node 2 starves, the other three settle at ~120.
    assert_eq!(r.stalled[NodeId::new(2)], 0.0);
    for i in [0usize, 1, 3] {
        assert!((r.stalled[NodeId::new(i)] - 120.0).abs() < 1.0);
    }
    // Tunneled: everyone at 90.
    for i in 0..4 {
        assert!((r.tunneled[NodeId::new(i)] - 90.0).abs() < 1.0);
    }
    assert!(r.tunnel_fetches >= 1);
}

/// Claim (Section 5.2): the barrier predicate identifies the blocking
/// node in the stalled state.
#[test]
fn claim_barrier_predicate() {
    let r = experiments::fig7(1500);
    let b = paper::fig7();
    let barriers = tlb::potential_barrier_nodes(&b.tree, &r.stalled, 1e-6);
    assert_eq!(barriers, vec![NodeId::new(1)]);
}

/// Claim (Section 2): on connected graphs the diffusion substrate
/// converges to uniform at the spectrum-predicted rate (Cybenko; Xu-Lau
/// optimal parameters).
#[test]
fn claim_gle_diffusion_background() {
    let s = experiments::gle_study();
    for row in &s.rows {
        assert!(
            (row.predicted_gamma - row.measured_gamma).abs() < 0.02,
            "{}: predicted {} measured {}",
            row.topology,
            row.predicted_gamma,
            row.measured_gamma
        );
        assert!(row.iterations < 100_000);
    }
}

/// Claim (Sections 1, 6): WebWave needs no directory and keeps data on
/// the request route, unlike the alternatives, while matching the
/// optimal max-load.
#[test]
fn claim_baseline_positioning() {
    let study = experiments::baseline_study(3);
    let fig6_rows = &study.rows[..6];
    let get = |n: &str| fig6_rows.iter().find(|r| r.name.starts_with(n)).unwrap();
    let webwave = get("webwave");
    let oracle = get("webfold-oracle");
    assert!(!webwave.violates_nss);
    assert!((webwave.max_load - oracle.max_load).abs() < 0.02 * oracle.max_load);
    assert!(webwave.max_load < get("no-cache").max_load);
    // The directory achieves GLE but pays per-request control messages.
    let dir = get("directory");
    assert_eq!(dir.distance_to_gle, 0.0);
    assert!(dir.control_msgs_per_request > webwave.control_msgs_per_request);
}
