//! Cross-crate integration: all four WebWave engines (rate-level,
//! document-level, packet-level, threaded runtime) agree with the WebFold
//! oracle on shared scenarios.

use webwave::docsim::{DocSim, DocSimConfig};
use webwave::fold::webfold;
use webwave::model::{DocId, NodeId, RateVector};
use webwave::packetsim::{PacketSim, PacketSimConfig};
use webwave::runtime::{run_cluster, ClusterConfig};
use webwave::topology::paper;
use webwave::wave::{RateWave, WaveConfig};
use webwave::workload::DocMix;

/// Every engine drives the Figure 2(b) workload to (or near) the same
/// non-GLE TLB optimum.
#[test]
fn engines_agree_on_fig2b() {
    let s = paper::fig2b();
    let oracle = webfold(&s.tree, &s.spontaneous).into_load();
    assert_eq!(oracle.as_slice(), paper::fig2b_tlb().as_slice());

    // Rate-level: exact convergence.
    let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
    wave.run(4000);
    assert!(wave.distance_to_tlb() < 1e-6);

    // Document-level: one document per demanding node (no barriers).
    let mut mix = DocMix::new(s.tree.len());
    mix.set(NodeId::new(3), DocId::new(1), 90.0);
    mix.set(NodeId::new(4), DocId::new(2), 10.0);
    let mut doc = DocSim::new(&s.tree, &mix, DocSimConfig::default());
    doc.run(4000);
    assert!(
        doc.distance_to_tlb() < 0.5,
        "docsim distance {}",
        doc.distance_to_tlb()
    );

    // Threaded runtime: asynchronous, so a relative tolerance.
    let cluster = run_cluster(&s.tree, &s.spontaneous, ClusterConfig::default());
    assert!(
        cluster.distance < 0.05 * s.total_demand(),
        "cluster distance {}",
        cluster.distance
    );
}

/// The packet-level engine, measured under Poisson noise, still heads to
/// the same oracle.
#[test]
fn packet_engine_tracks_oracle_on_fig7() {
    let b = paper::fig7();
    let mut mix = DocMix::new(b.tree.len());
    for d in &b.demands {
        mix.set(d.origin, d.doc, d.rate);
    }
    let mut sim = PacketSim::new(&b.tree, &mix, PacketSimConfig::default());
    assert_eq!(sim.oracle().as_slice(), b.tlb.as_slice());
    let report = sim.run(60.0);
    let initial = report.trace.initial().unwrap();
    assert!(
        report.final_distance < 0.35 * initial,
        "final {} vs initial {initial}",
        report.final_distance
    );
}

/// The rate engine and the threaded runtime see the same fixed point on
/// every paper scenario.
#[test]
fn rate_and_runtime_share_fixed_points() {
    for s in paper::all_scenarios() {
        let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        wave.run(6000);
        let cluster = run_cluster(&s.tree, &s.spontaneous, ClusterConfig::default());
        let gap = wave.load().euclidean_distance(&cluster.loads);
        assert!(
            gap < 0.08 * s.total_demand(),
            "{}: engines disagree by {gap}",
            s.name
        );
    }
}

/// Document-level WebWave with tunneling solves the barrier the
/// rate-level engine cannot even express.
#[test]
fn docsim_reaches_tlb_where_rate_engine_is_blind_to_documents() {
    let b = paper::fig7();
    // The rate engine has no document granularity: it converges to the
    // uniform 90s directly (no barrier exists at the rate level).
    let mut wave = RateWave::new(&b.tree, &b.spontaneous, WaveConfig::default());
    wave.run(4000);
    assert!(wave.distance_to_tlb() < 1e-6);

    // The document engine needs tunneling for the same result.
    let mut with_tunnel = DocSim::from_barrier_scenario(&b, DocSimConfig::default());
    with_tunnel.run(1500);
    assert!(with_tunnel.distance_to_tlb() < 1.0);

    let mut without = DocSim::from_barrier_scenario(
        &b,
        DocSimConfig {
            tunneling: false,
            ..DocSimConfig::default()
        },
    );
    without.run(1500);
    assert!(without.distance_to_tlb() > 100.0);
}

/// Conservation: every engine serves exactly (or statistically) the
/// offered demand.
#[test]
fn demand_conservation_across_engines() {
    let s = paper::fig6();
    let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
    wave.run(500);
    assert!((wave.load().total() - s.total_demand()).abs() < 1e-6);

    let oracle = webfold(&s.tree, &s.spontaneous).into_load();
    assert!((oracle.total() - s.total_demand()).abs() < 1e-9);

    let cluster = run_cluster(&s.tree, &s.spontaneous, ClusterConfig::default());
    assert!((cluster.loads.total() - s.total_demand()).abs() < 0.02 * s.total_demand());
}

/// Warm-starting the rate engine from another engine's output stays put:
/// the oracle is a genuine fixed point shared by the implementations.
#[test]
fn oracle_is_a_shared_fixed_point() {
    let s = paper::fig4();
    let oracle = webfold(&s.tree, &s.spontaneous).into_load();
    let mut wave = RateWave::with_initial(
        &s.tree,
        &s.spontaneous,
        oracle.clone(),
        WaveConfig::default(),
    );
    wave.run(200);
    assert!(wave.distance_to_tlb() < 1e-9);
    assert_eq!(wave.load().as_slice().len(), oracle.as_slice().len());
}

/// A bigger randomized cross-check: rate engine vs oracle on a 200-node
/// random tree with skewed demand.
#[test]
fn rate_engine_converges_on_larger_random_tree() {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let tree = webwave::topology::random_tree_of_depth(&mut rng, 200, 8);
    let demand = webwave::workload::zipf_nodes(&mut rng, &tree, 2000.0, 1.0);
    let mut wave = RateWave::new(&tree, &demand, WaveConfig::default());
    wave.run_until(0.01 * demand.total(), 30_000);
    assert!(
        wave.distance_to_tlb() <= 0.01 * demand.total(),
        "distance {}",
        wave.distance_to_tlb()
    );
    // And the result is feasible.
    let a = webwave::model::LoadAssignment::new(&tree, &demand, wave.load().clone()).unwrap();
    assert!(a.check_feasible(1e-6).is_ok());
    let _ = RateVector::from(vec![0.0]); // keep import used in all cfgs
}
