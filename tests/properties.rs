//! Property-based tests (proptest) over the core data structures and the
//! paper's invariants, exercised through the public `webwave` API.

use proptest::prelude::*;
use webwave::fold::webfold;
use webwave::model::{LoadAssignment, NodeId, RateVector, Tree};
use webwave::tlb;
use webwave::wave::{RateWave, WaveConfig};

/// Strategy: a random parent-pointer tree of 1..=40 nodes where
/// `parent(i) < i` — always a valid rooted tree.
fn arb_tree() -> impl Strategy<Value = Tree> {
    (1usize..=40)
        .prop_flat_map(|n| {
            let parents: Vec<BoxedStrategy<Option<usize>>> = (0..n)
                .map(|i| {
                    if i == 0 {
                        Just(None).boxed()
                    } else {
                        (0..i).prop_map(Some).boxed()
                    }
                })
                .collect();
            parents
        })
        .prop_map(|parents| Tree::from_parents(&parents).expect("parent(i) < i is a tree"))
}

/// Strategy: non-negative rates for a given tree size.
fn arb_rates(n: usize) -> impl Strategy<Value = RateVector> {
    proptest::collection::vec(0.0f64..100.0, n).prop_map(RateVector::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tree structural invariants hold for arbitrary trees.
    #[test]
    fn tree_invariants(tree in arb_tree()) {
        // Depths increase by exactly one along parent edges.
        for u in tree.nodes() {
            if let Some(p) = tree.parent(u) {
                prop_assert_eq!(tree.depth(u), tree.depth(p) + 1);
            }
        }
        // Subtree sizes: root covers everything; each node's subtree is
        // 1 + children's subtrees.
        prop_assert_eq!(tree.subtree_size(tree.root()), tree.len());
        for u in tree.nodes() {
            let from_children: usize =
                tree.children(u).iter().map(|&c| tree.subtree_size(c)).sum();
            prop_assert_eq!(tree.subtree_size(u), 1 + from_children);
        }
        // Every path to root ends at the root, with length = depth + 1.
        for u in tree.nodes() {
            let path: Vec<NodeId> = tree.path_to_root(u).collect();
            prop_assert_eq!(path.len(), tree.depth(u) + 1);
            prop_assert_eq!(*path.last().unwrap(), tree.root());
        }
        // Round trip through parent array.
        let rebuilt = Tree::from_parents(&tree.to_parents()).unwrap();
        prop_assert_eq!(rebuilt, tree);
    }

    /// WebFold output satisfies every lemma and conservation law on
    /// arbitrary trees and demands.
    #[test]
    fn webfold_invariants((tree, rates) in arb_tree().prop_flat_map(|t| {
        let n = t.len();
        (Just(t), arb_rates(n))
    })) {
        let folded = webfold(&tree, &rates);
        // Conservation.
        prop_assert!((folded.load().total() - rates.total()).abs() < 1e-6);
        // Lemma 1: monotone non-increasing root -> leaf.
        prop_assert!(tlb::check_monotone_non_increasing(&tree, folded.load(), 1e-9));
        // Lemma 2: zero flow at fold roots.
        prop_assert!(tlb::check_zero_interfold_flow(&tree, &rates, &folded, 1e-6));
        // Lemma 3 + Constraint 1: full feasibility.
        let a = LoadAssignment::new(&tree, &rates, folded.load().clone()).unwrap();
        prop_assert!(a.check_feasible(1e-6).is_ok());
        // Folds partition the node set into contiguous regions.
        let mut seen = vec![false; tree.len()];
        for (root, members) in folded.folds() {
            for m in &members {
                prop_assert!(!seen[m.index()]);
                seen[m.index()] = true;
                if *m != root {
                    let p = tree.parent(*m).unwrap();
                    prop_assert!(folded.same_fold(*m, p));
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Theorem 1, randomized: no feasible assignment sorts strictly below
    /// WebFold's.
    #[test]
    fn webfold_beats_random_feasible((tree, rates, seed) in arb_tree().prop_flat_map(|t| {
        let n = t.len();
        (Just(t), arb_rates(n), any::<u64>())
    })) {
        use rand::SeedableRng;
        let oracle = webfold(&tree, &rates).into_load();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let rival = tlb::random_feasible_assignment(&mut rng, &tree, &rates);
            prop_assert_ne!(
                oracle.compare_balance(&rival, 1e-7),
                std::cmp::Ordering::Greater
            );
        }
    }

    /// Random feasible assignments really are feasible (the competitor
    /// generator itself is sound).
    #[test]
    fn random_assignments_feasible((tree, rates, seed) in arb_tree().prop_flat_map(|t| {
        let n = t.len();
        (Just(t), arb_rates(n), any::<u64>())
    })) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cand = tlb::random_feasible_assignment(&mut rng, &tree, &rates);
        let f = tlb::check_feasibility(&tree, &rates, &cand, 1e-6);
        prop_assert!(f.is_feasible());
    }

    /// WebWave preserves feasibility and total demand on every round, for
    /// arbitrary trees and demands.
    #[test]
    fn wave_rounds_stay_feasible((tree, rates) in arb_tree().prop_flat_map(|t| {
        let n = t.len();
        (Just(t), arb_rates(n))
    })) {
        let mut wave = RateWave::new(&tree, &rates, WaveConfig::default());
        for _ in 0..30 {
            wave.step();
            let a = LoadAssignment::new(&tree, &rates, wave.load().clone()).unwrap();
            prop_assert!(a.check_feasible(1e-6).is_ok());
            prop_assert!((wave.load().total() - rates.total()).abs() < 1e-6);
        }
    }

    /// WebWave's distance to TLB never grows (monotone contraction under
    /// instantaneous gossip) and small instances converge outright.
    #[test]
    fn wave_converges_on_small_trees((tree, rates) in arb_tree().prop_flat_map(|t| {
        let n = t.len();
        (Just(t), arb_rates(n))
    })) {
        let total = rates.total();
        let mut wave = RateWave::new(&tree, &rates, WaveConfig::default());
        wave.run(6000);
        prop_assert!(
            wave.distance_to_tlb() <= (0.01 * total).max(1e-6),
            "distance {} of total {}",
            wave.distance_to_tlb(),
            total
        );
    }

    /// GLE feasibility agrees with WebFold collapsing to one fold.
    #[test]
    fn gle_feasibility_matches_fold_count((tree, rates) in arb_tree().prop_flat_map(|t| {
        let n = t.len();
        (Just(t), arb_rates(n))
    })) {
        let single_fold = webfold(&tree, &rates).is_gle();
        let feasible = tlb::gle_feasible(&tree, &rates, 1e-9);
        // A single fold always implies GLE-feasible. (The converse can
        // fail on ties: equal-load folds are GLE in value while remaining
        // distinct folds.)
        if single_fold {
            prop_assert!(feasible);
        }
        if feasible {
            let folded = webfold(&tree, &rates);
            let spread = folded.load().max() - folded.load().min();
            prop_assert!(spread < 1e-6, "GLE-feasible but folds spread {spread}");
        }
    }
}
