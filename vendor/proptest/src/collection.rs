//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

/// Acceptable size specifications for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min {
            self.min
        } else {
            self.min + rng.next_below((self.max - self.min + 1) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing a `Vec` of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy producing a `HashSet` of values from `element`.
///
/// Sizes are best-effort: if the element strategy cannot produce enough
/// distinct values, the set is smaller than requested (matching upstream's
/// behavior of shrinking duplicates away).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0;
        while out.len() < n && attempts < n * 10 + 16 {
            out.insert(self.element.sample(rng));
            attempts += 1;
        }
        out
    }
}
