//! Test configuration and the deterministic test RNG.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases each property runs against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a per-test deterministic stream from the test's name, so the
    /// same test always sees the same case sequence.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}
