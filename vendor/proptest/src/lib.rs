//! Offline mini `proptest`.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! crate implements the subset of the proptest API the workspace's property
//! tests use: the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple and `Vec` strategies, [`collection::vec`] and
//! [`collection::hash_set`], [`strategy::any`], `Just`, `ProptestConfig`, and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! sampled inputs via the regular assert message), and the RNG is a fixed
//! deterministic stream per test function, so failures are reproducible
//! run-to-run.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::option;

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each test body against `cases` sampled inputs.
///
/// Supported grammar (a subset of upstream `proptest!`):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, (a, b) in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $( let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
