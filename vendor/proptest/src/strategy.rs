//! The [`Strategy`] trait and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: `sample` draws a single
/// value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy,
    /// then samples that.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.next_below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.next_below(span + 1) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (S0: 0)
    (S0: 0, S1: 1)
    (S0: 0, S1: 1, S2: 2)
    (S0: 0, S1: 1, S2: 2, S3: 3)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6)
    (S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5, S6: 6, S7: 7)
}

/// Optional-value strategies — mirrors upstream `proptest::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `None` or `Some(inner value)` with equal odds.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_below(2) == 1 {
                Some(self.0.sample(rng))
            } else {
                None
            }
        }
    }

    /// `Option<T>` strategy over `inner` — upstream's `option::of`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// A `Vec` of strategies generates a `Vec` of one value from each —
/// mirroring upstream proptest's `Strategy for Vec<S>`.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Full-range strategy for integer-like types.
#[derive(Debug, Clone, Copy)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}
