//! No-op replacements for serde's `Serialize`/`Deserialize` derives.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal stand-in: the derives accept the usual `#[serde(...)]` helper
//! attributes and expand to nothing. Nothing in this workspace serializes at
//! the serde level (reports are written as hand-built JSON), so the traits
//! never need real implementations.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
