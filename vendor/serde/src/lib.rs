//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! crate supplies just enough surface for the workspace to compile: the
//! `Serialize`/`Deserialize` trait names and the matching no-op derive
//! macros. No code in the workspace performs serde-based serialization —
//! machine-readable outputs (e.g. `BENCH_webfold_scaling.json`) are written
//! as hand-built JSON instead.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Blanket implementations so trait bounds (if any appear) are satisfiable.
impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
