//! Offline stand-in for `parking_lot`: a `Mutex` with the poison-free API
//! (`lock()` returns the guard directly), backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning (a panicked holder)
    /// like `parking_lot` does by simply continuing.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
