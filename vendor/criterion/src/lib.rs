//! Offline mini `criterion`.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! crate implements the subset of the criterion API the workspace's benches
//! use: [`Criterion`], [`BenchmarkGroup`] (with `measurement_time`,
//! `warm_up_time`, `sample_size`, `bench_function`, `bench_with_input`,
//! `finish`), [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs enough
//! iterations to fill the measurement window, collecting `sample_size`
//! samples; the mean, min and max per-iteration times are printed. There is
//! no statistical analysis, plotting, or baseline storage — for a recorded
//! perf trajectory use the `webwave-bench` runner, which emits JSON.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 10,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name.into(), |b| f(b));
        group.finish();
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the number of timing samples collected.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b),
        );
        report.print(&self.name, &id.0);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let report = run_bench(
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b, input),
        );
        report.print(&self.name, &id.0);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Drives timed iterations of a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
}

impl Report {
    fn print(&self, group: &str, id: &str) {
        eprintln!(
            "{group}/{id}: mean {:?} (min {:?}, max {:?})",
            self.mean, self.min, self.max
        );
    }
}

fn run_bench(
    warm_up: Duration,
    measurement: Duration,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) -> Report {
    // Warm-up + calibration: run single iterations until the warm-up window
    // elapses, estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut calib_iters: u64 = 0;
    let mut calib_time = Duration::ZERO;
    while warm_start.elapsed() < warm_up || calib_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        calib_time += b.elapsed;
        calib_iters += 1;
        if calib_iters >= 1000 {
            break;
        }
    }
    let per_iter =
        (calib_time / u32::try_from(calib_iters).unwrap_or(u32::MAX)).max(Duration::from_nanos(1));

    // Choose iterations per sample so all samples fit the measurement window.
    let budget_per_sample = measurement / u32::try_from(samples).unwrap_or(u32::MAX);
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total = Duration::ZERO;
    let mut total_iters: u64 = 0;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / u32::try_from(iters_per_sample).unwrap_or(u32::MAX);
        min = min.min(per);
        max = max.max(per);
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    Report {
        mean: total / u32::try_from(total_iters).unwrap_or(u32::MAX),
        min,
        max,
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
