//! Cross-thread stress tests and a single-thread model-based property
//! test for the SPSC ring. CI runs these via the workspace test suite.

use proptest::prelude::*;
use std::collections::VecDeque;

/// Two threads, every capacity class from degenerate to large: the
/// consumer must observe exactly `0..n` in order, with the producer
/// spinning on `Full` (the engine's flow-control discipline).
#[test]
fn two_thread_fifo_under_contention() {
    for cap in [1usize, 2, 8, 1024] {
        let n: u64 = 100_000;
        let (mut tx, mut rx) = spsc::ring::<u64>(cap);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..n {
                    let mut v = i;
                    loop {
                        match tx.push(v) {
                            Ok(()) => break,
                            Err(spsc::Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
            scope.spawn(move || {
                let mut expected = 0u64;
                while expected < n {
                    match rx.pop() {
                        Some(v) => {
                            assert_eq!(v, expected, "cap {cap}");
                            expected += 1;
                        }
                        None => std::thread::yield_now(),
                    }
                }
                assert_eq!(rx.pop(), None);
            });
        });
    }
}

/// Same contract when the producer stages batches and publishes them
/// with one commit per batch — the PDES lookahead-window pattern.
#[test]
fn two_thread_fifo_with_batched_commits() {
    let n: u64 = 100_000;
    let (mut tx, mut rx) = spsc::ring::<u64>(64);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut i = 0u64;
            // Deterministic "random" batch sizes 1..=13.
            let mut batch = 1u64;
            while i < n {
                let end = (i + batch).min(n);
                while i < end {
                    let mut v = i;
                    loop {
                        match tx.stage(v) {
                            Ok(()) => break,
                            Err(spsc::Full(back)) => {
                                v = back;
                                tx.commit(); // publish so the consumer can drain
                                std::thread::yield_now();
                            }
                        }
                    }
                    i += 1;
                }
                tx.commit();
                batch = batch % 13 + 1;
            }
        });
        scope.spawn(move || {
            let mut expected = 0u64;
            while expected < n {
                match rx.pop() {
                    Some(v) => {
                        assert_eq!(v, expected);
                        expected += 1;
                    }
                    None => std::thread::yield_now(),
                }
            }
        });
    });
}

/// Operation script for the model test.
#[derive(Debug, Clone, Copy)]
enum Op {
    Stage(u16),
    Commit,
    Pop,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Single-thread model check: an arbitrary stage/commit/pop script
    /// behaves exactly like a VecDeque that only reveals items at
    /// commit points, across wrap-arounds and full/empty boundaries.
    #[test]
    fn matches_queue_model(
        cap_pow in 0usize..6,
        ops in proptest::collection::vec(0u32..100, 1..200),
    ) {
        let cap = 1usize << cap_pow;
        let (mut tx, mut rx) = spsc::ring::<u16>(cap);
        let mut visible: VecDeque<u16> = VecDeque::new();
        let mut staged: VecDeque<u16> = VecDeque::new();
        let mut next = 0u16;
        for raw in ops {
            let op = match raw % 10 {
                0..=4 => {
                    next += 1;
                    Op::Stage(next)
                }
                5 | 6 => Op::Commit,
                _ => Op::Pop,
            };
            match op {
                Op::Stage(v) => {
                    let model_full = visible.len() + staged.len() == cap;
                    match tx.stage(v) {
                        Ok(()) => prop_assert!(!model_full, "stage accepted when model full"),
                        Err(spsc::Full(back)) => {
                            prop_assert!(model_full, "stage rejected when model has room");
                            prop_assert_eq!(back, v);
                            continue;
                        }
                    }
                    staged.push_back(v);
                }
                Op::Commit => {
                    tx.commit();
                    visible.append(&mut staged);
                }
                Op::Pop => {
                    prop_assert_eq!(rx.pop(), visible.pop_front());
                }
            }
            prop_assert_eq!(tx.staged_len(), staged.len());
        }
        // Drain: after a final commit everything comes out in order.
        tx.commit();
        visible.append(&mut staged);
        for expected in visible {
            prop_assert_eq!(rx.pop(), Some(expected));
        }
        prop_assert_eq!(rx.pop(), None);
    }
}
