//! Offline stand-in for a lock-free bounded SPSC ring buffer, in the
//! style of the `rtrb` / `ringbuf` registry crates (the build
//! environment has no registry access).
//!
//! One producer handle and one consumer handle share a fixed-capacity
//! ring of slots. The fast path is wait-free: a push is one slot write
//! plus one `Release` store of the producer's index; a pop is one slot
//! read plus one `Release` store of the consumer's index. There are no
//! locks, no parking, and no per-operation allocation — which is the
//! point: a conservative PDES exchanges millions of tiny timestamped
//! messages per second between shard pairs, and each shard pair is
//! exactly one producer and one consumer.
//!
//! On top of plain [`Producer::push`], the producer can **stage**
//! writes and publish them in one batch: [`Producer::stage`] fills
//! slots without making them visible, and [`Producer::commit`]
//! publishes everything staged with a single `Release` store. A
//! lookahead window's worth of cross-shard events thus costs one
//! synchronizing store instead of one per event.
//!
//! # Example
//!
//! ```
//! let (mut tx, mut rx) = spsc::ring::<u32>(8);
//! tx.push(1).unwrap();
//! tx.stage(2).unwrap();
//! tx.stage(3).unwrap();
//! assert_eq!(rx.pop(), Some(1)); // staged items are not yet visible
//! assert_eq!(rx.pop(), None);
//! tx.commit();
//! assert_eq!(rx.pop(), Some(2));
//! assert_eq!(rx.pop(), Some(3));
//! ```

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an atomic counter to its own cache line so the producer's and
/// consumer's indices never false-share.
#[repr(align(128))]
struct CachePadded<T>(T);

/// State shared by the two handles. `head` and `tail` are monotonically
/// increasing operation counts (not slot indices); the slot of count
/// `c` is `c & mask`. `tail - head` is the number of published,
/// unconsumed items, which distinguishes full (`== capacity`) from
/// empty (`== 0`) without a spare slot.
struct Shared<T> {
    /// Count of items consumed. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Count of items published. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: the two handles hand slots back and forth through the
// head/tail protocol below; `T: Send` is all that crossing threads
// requires. The `UnsafeCell`s are never accessed concurrently for the
// same slot (see the invariant on `Producer`/`Consumer`).
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Last handle alive (`Arc` synchronizes the other handle's
        // drop before this runs): whatever is still published and
        // unconsumed must be dropped here. Staged-but-uncommitted
        // items do not exist at this point — `Producer::drop` commits.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for c in head..tail {
            let slot = self.slots[c & self.mask].get();
            // SAFETY: slots in [head, tail) hold initialized values the
            // consumer never read.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// Error returned by [`Producer::push`] / [`Producer::stage`] when the
/// ring has no free slot; carries the rejected value back.
pub struct Full<T>(pub T);

impl<T> fmt::Debug for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Full(..)")
    }
}

/// The sending half: owned by exactly one thread at a time.
///
/// Invariant: slots at counts `[published, staged)` are initialized but
/// not yet visible to the consumer; slots at `[cached_head, published)`
/// may be read by the consumer at any moment; slots below the
/// consumer's true head are free for reuse.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local write count, including staged-but-unpublished items.
    staged: usize,
    /// Mirror of `shared.tail` (what the consumer can see).
    published: usize,
    /// Conservative snapshot of `shared.head`; refreshed on apparent
    /// full, so the hot path loads no foreign cache line.
    cached_head: usize,
}

impl<T> Producer<T> {
    /// Number of slots the ring holds.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Number of staged items not yet published by [`Producer::commit`].
    pub fn staged_len(&self) -> usize {
        self.staged - self.published
    }

    /// Producer-side occupancy estimate: staged-plus-unconsumed items,
    /// computed against the cached head snapshot. The snapshot only
    /// lags the consumer, so this is a conservative *upper* bound that
    /// never loads the foreign cache line — right for high-water
    /// telemetry, not for capacity decisions (use [`Producer::stage`]'s
    /// own refresh for those).
    pub fn occupancy_hint(&self) -> usize {
        self.staged - self.cached_head
    }

    /// Writes `value` into the next slot **without publishing it**: the
    /// consumer cannot see it until [`Producer::commit`]. Fails with
    /// [`Full`] when every slot is either unconsumed or already staged.
    pub fn stage(&mut self, value: T) -> Result<(), Full<T>> {
        if self.staged - self.cached_head == self.shared.capacity() {
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.staged - self.cached_head == self.shared.capacity() {
                return Err(Full(value));
            }
        }
        let slot = self.shared.slots[self.staged & self.shared.mask].get();
        // SAFETY: `staged - head < capacity`, so this slot is past
        // everything the consumer may still read (the Acquire load
        // above ordered the consumer's reads before our reuse), and the
        // producer is the only writer.
        unsafe { (*slot).write(value) };
        self.staged += 1;
        Ok(())
    }

    /// Publishes everything staged with one `Release` store. No-op when
    /// nothing is staged.
    pub fn commit(&mut self) {
        if self.staged != self.published {
            self.shared.tail.0.store(self.staged, Ordering::Release);
            self.published = self.staged;
        }
    }

    /// Stages and immediately publishes `value` — the plain SPSC push.
    pub fn push(&mut self, value: T) -> Result<(), Full<T>> {
        self.stage(value)?;
        self.commit();
        Ok(())
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // Publish staged items so `Shared::drop` sees (and drops) them.
        self.commit();
    }
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.capacity())
            .field("staged", &self.staged_len())
            .finish()
    }
}

/// The receiving half: owned by exactly one thread at a time.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local read count (mirror of `shared.head`).
    head: usize,
    /// Conservative snapshot of `shared.tail`; refreshed on apparent
    /// empty.
    cached_tail: usize,
}

impl<T> Consumer<T> {
    /// Number of slots the ring holds.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Takes the oldest published item, or `None` when the ring is
    /// empty (staged-but-uncommitted items are invisible).
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let slot = self.shared.slots[self.head & self.shared.mask].get();
        // SAFETY: `head < tail`, so the slot was initialized by the
        // producer, and the Acquire load of `tail` ordered that write
        // before this read. The consumer is the only reader.
        let value = unsafe { (*slot).assume_init_read() };
        self.head += 1;
        // Release: the slot's content move must be visible before the
        // producer reuses the slot.
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// `true` when no published item is waiting.
    pub fn is_empty(&mut self) -> bool {
        if self.head != self.cached_tail {
            return false;
        }
        self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
        self.head == self.cached_tail
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// Creates a ring with room for at least `capacity` items (rounded up
/// to a power of two) and returns its two handles.
///
/// # Panics
///
/// Panics if `capacity` is zero.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring capacity must be positive");
    let cap = capacity.next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        mask: cap - 1,
        slots,
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            staged: 0,
            published: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (mut tx, mut rx) = ring::<u32>(16);
        for i in 0..10 {
            tx.push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn wrap_around_many_times() {
        let (mut tx, mut rx) = ring::<u64>(4);
        for i in 0..1000u64 {
            tx.push(i).unwrap();
            assert_eq!(rx.pop(), Some(i));
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn full_and_empty_boundaries() {
        let (mut tx, mut rx) = ring::<u8>(4);
        assert_eq!(rx.pop(), None);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        // Exactly at capacity: the next push is rejected with its value.
        let Full(rejected) = tx.push(99).unwrap_err();
        assert_eq!(rejected, 99);
        assert_eq!(rx.pop(), Some(0));
        tx.push(99).unwrap();
        assert_eq!(
            std::iter::from_fn(|| rx.pop()).collect::<Vec<_>>(),
            vec![1, 2, 3, 99]
        );
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
    }

    #[test]
    fn staged_items_invisible_until_commit() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.stage(1).unwrap();
        tx.stage(2).unwrap();
        assert_eq!(tx.staged_len(), 2);
        assert_eq!(rx.pop(), None);
        tx.commit();
        assert_eq!(tx.staged_len(), 0);
        assert_eq!(rx.pop(), Some(1));
        assert_eq!(rx.pop(), Some(2));
    }

    #[test]
    fn staging_respects_capacity() {
        let (mut tx, mut rx) = ring::<u8>(2);
        tx.stage(1).unwrap();
        tx.stage(2).unwrap();
        assert!(tx.stage(3).is_err()); // staged slots count against capacity
        assert_eq!(rx.pop(), None); // nothing published yet
        tx.commit();
        assert_eq!(rx.pop(), Some(1));
        tx.stage(3).unwrap(); // freed slot is reusable after the pop
        tx.commit();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn drop_releases_unconsumed_and_staged_items() {
        let token = Arc::new(());
        {
            let (mut tx, rx) = ring::<Arc<()>>(8);
            tx.push(Arc::clone(&token)).unwrap();
            tx.push(Arc::clone(&token)).unwrap();
            tx.stage(Arc::clone(&token)).unwrap(); // uncommitted
            drop(tx); // commits the staged item
            drop(rx);
        }
        assert_eq!(Arc::strong_count(&token), 1);
    }

    #[test]
    fn pop_after_producer_drop_yields_remaining_items() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.push(7).unwrap();
        tx.stage(8).unwrap();
        drop(tx);
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), Some(8));
        assert_eq!(rx.pop(), None);
    }
}
