//! Offline stand-in for `bytes`: a cheaply cloneable immutable byte buffer
//! over `Arc<[u8]>` — exactly what immutable published documents need.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
