//! Offline stand-in for `crossbeam` (channel module only), backed by
//! `std::sync::mpsc`. Supplies the `bounded` / `unbounded` / `Sender` /
//! `Receiver` surface the runtime and PDES crates use.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded and unbounded MPMC-ish channels (MPSC underneath, which is
    //! all the workspace needs: each node/shard owns its receiver).

    use std::sync::mpsc;
    use std::time::Duration;

    #[derive(Debug)]
    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// All receivers were dropped.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send`].
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders were dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// All senders were dropped.
        Disconnected,
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(rx))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Tx::Unbounded(tx)), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Attempts to send without blocking. On an unbounded channel this
        /// only fails when the receiver is gone.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.try_send(msg).map_err(|e| match e {
                    mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                    mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
                }),
                Tx::Unbounded(s) => s
                    .send(msg)
                    .map_err(|mpsc::SendError(m)| TrySendError::Disconnected(m)),
            }
        }

        /// Sends, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Tx::Unbounded(s) => s.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Receives, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }
}
