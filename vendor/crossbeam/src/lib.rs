//! Offline stand-in for `crossbeam` (channel module only), backed by
//! `std::sync::mpsc`. Supplies the `bounded` / `Sender` / `Receiver`
//! surface the runtime crate uses.

#![forbid(unsafe_code)]

pub mod channel {
    //! Bounded MPMC-ish channels (MPSC underneath, which is all the
    //! workspace needs: each node owns its receiver).

    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// All receivers were dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message waiting.
        Empty,
        /// All senders were dropped.
        Disconnected,
    }

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Attempts to send without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            self.0.try_send(msg).map_err(|e| match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            })
        }
    }

    impl<T> Receiver<T> {
        /// Attempts to receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }
}
