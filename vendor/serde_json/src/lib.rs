//! Offline stand-in for `serde_json`.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! crate supplies the subset of `serde_json` the workspace actually uses:
//! a self-describing [`Value`] tree, a strict recursive-descent parser
//! ([`from_str`]) with line/column error positions, and deterministic
//! serializers ([`to_string`], [`to_string_pretty`]). Unlike the real
//! crate there is no serde integration — the vendored `serde` derives are
//! no-ops, so typed (de)serialization in this workspace is written by
//! hand against [`Value`] (see `ww-scenario`).
//!
//! Scope decisions, matching the workspace's needs:
//!
//! * objects preserve insertion order ([`Map`] is an association list),
//!   so `parse(render(v)) == v` is exact and byte-stable;
//! * numbers are `f64` (every number in a scenario spec fits);
//! * the parser is strict: trailing garbage, duplicate keys, control
//!   characters in strings, and non-finite numbers are all errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// An order-preserving string-keyed map (JSON object).
///
/// Keys are unique (the parser rejects duplicates; [`Map::insert`]
/// replaces in place), and iteration order is insertion order, which
/// keeps rendering deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts or replaces `key`, preserving the original position on
    /// replacement.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// `true` when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name for the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

impl From<Map> for Value {
    fn from(map: Map) -> Self {
        Value::Object(map)
    }
}

/// A parse failure, with 1-based line/column position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.message, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

/// Maximum container nesting the parser accepts (the same cap real
/// serde_json uses). The parser is recursive-descent, so unbounded
/// nesting would overflow the stack instead of returning an error.
const MAX_DEPTH: usize = 128;

/// Parses a complete JSON document; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns an [`Error`] with line/column for any syntax violation,
/// duplicate object key, non-finite number, or nesting beyond 128
/// levels.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos < parser.bytes.len() {
        return Err(parser.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error {
            message: message.into(),
            line,
            column,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.error("unpaired surrogate"));
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(self.error(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str so the
                    // bytes are valid UTF-8 by construction.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        let x: f64 = text
            .parse()
            .map_err(|_| self.error(format!("unparseable number '{text}'")))?;
        if !x.is_finite() {
            return Err(self.error(format!("number '{text}' overflows f64")));
        }
        Ok(Value::Number(x))
    }

    fn descend(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("nesting exceeds {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.descend()?;
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error("expected string key in object"));
            }
            let key = self.parse_string()?;
            if map.contains_key(&key) {
                return Err(self.error(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')
                .map_err(|_| self.error("expected ':' after object key"))?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(x: f64) -> String {
    // `{}` on f64 is the shortest representation that round-trips, which
    // is exactly what a deterministic serializer wants.
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => out.push_str(&number_to_string(*x)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, v, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Renders a value as compact single-line JSON.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0, false);
    out
}

/// Renders a value as two-space-indented JSON with a trailing newline.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0, true);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::Number(42.0));
        assert_eq!(from_str("-0.5e2").unwrap(), Value::Number(-50.0));
        assert_eq!(from_str("\"hi\\n\"").unwrap(), Value::String("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj.len(), 2);
        let a = obj.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert!(a[1].as_object().unwrap().get("b").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "\"\\q\"",
            "{a: 1}",
            "[1] x",
            "{\"a\":1,\"a\":2}",
            "1e999",
        ] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = from_str("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 8, "column {}", err.column);
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(
            from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::String("é😀".into())
        );
        assert!(from_str("\"\\ud83d\"").is_err());
    }

    #[test]
    fn round_trips_exactly() {
        let text = r#"{"name":"x","values":[1,2.5,-3],"flag":true,"nested":{"a":null}}"#;
        let v = from_str(text).unwrap();
        assert_eq!(to_string(&v), text);
        let pretty = to_string_pretty(&v);
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Number(1.0));
        m.insert("a", Value::Number(2.0));
        m.insert("b", Value::Number(3.0));
        let keys: Vec<&str> = m.keys().collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("b").unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn nesting_beyond_the_cap_is_an_error_not_a_crash() {
        let deep_ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&deep_ok).is_ok());
        let too_deep = "[".repeat(200_000);
        let err = from_str(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let deep_obj = "{\"a\":".repeat(200) + "1" + &"}".repeat(200);
        assert!(from_str(&deep_obj).is_err());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&Value::Number(100000.0)), "100000");
        assert_eq!(to_string(&Value::Number(0.05)), "0.05");
        assert_eq!(to_string(&Value::Number(1e-6)), "0.000001");
    }
}
