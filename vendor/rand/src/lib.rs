//! Offline stand-in for `rand` 0.8.
//!
//! The build environment cannot reach a crate registry, so this vendored
//! crate implements the subset of the `rand` API the workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! generator than upstream's ChaCha12, but deterministic, well distributed,
//! and fully sufficient for the simulations (which only require
//! reproducibility given a seed, not a specific stream).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this stub).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            for &b in chunk.iter() {
                if i >= dest.len() {
                    break;
                }
                dest[i] = b;
                i += 1;
            }
        }
    }
    /// Fallible fill; this stub never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their "standard" distribution
/// (integers: full range; floats: `[0, 1)`; bool: fair coin).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (bias negligible at u64 width).
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((u128::from(rng.next_u64()) * u128::from(span + 1)) >> 64) as u64;
                start.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random value generation, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns a value uniformly distributed in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state.
            let mut z = state;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&z));
        }
    }

    #[test]
    fn mean_of_unit_samples_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.3).abs() < 0.01, "p {p}");
    }
}
