//! A publisher's flash crowd: a hot document suddenly draws Zipf-skewed
//! demand from access networks all over a large routing tree. Compare how
//! the schemes of the paper's related-work section cope, then watch the
//! packet-level WebWave system absorb the crowd.
//!
//! Both halves are declarative: the baseline shoot-out is a `baselines`
//! spec built in place, and the packet-level run is the shipped
//! `scenarios/flash_crowd.json` — the same file
//! `webwave-exp run scenarios/flash_crowd.json` executes.
//!
//! Run with: `cargo run --release --example publisher_flash_crowd`

use webwave::scenario::{EngineSpec, Runner, ScenarioSpec, Termination};

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/flash_crowd.json");
    let spec = ScenarioSpec::from_json(&std::fs::read_to_string(path).expect("spec file"))
        .expect("valid spec");
    println!(
        "flash crowd \"{}\": 9600 req/s Zipf-skewed over a 96-node depth-7 routing tree",
        spec.name
    );

    // How would each scheme handle it? Same topology, same workload, same
    // seed — only the engine differs. That is the point of the spec API.
    let mut shootout = spec.clone();
    shootout.name = "flash-crowd-baselines".to_string();
    shootout.engine = EngineSpec::Baselines {
        schemes: webwave::scenario::BaselineScheme::all(),
        replicas: 0,
        lookup_msgs: 2.0,
        gle_iterations: 2000,
        webwave_rounds: 4000,
        gossip_per_second: 2.0,
    };
    shootout.termination = Termination::Rounds { max: 1 };
    println!("\nscheme comparison (rate level):");
    let baseline_report = Runner::new().run(&shootout).expect("shoot-out runs");
    println!(
        "{:<16} {:>10} {:>14} {:>15} {:>10}",
        "scheme", "max load", "ctrl msgs/req", "data hops/req", "directory?"
    );
    for r in &baseline_report.rows[0].outcome.schemes {
        println!(
            "{:<16} {:>10.1} {:>14.3} {:>15.2} {:>10}",
            r.name,
            r.max_load,
            r.control_msgs_per_request,
            r.data_hops_per_request,
            if r.violates_nss { "needed" } else { "no" }
        );
    }

    // Now the real thing: the packet-level WebWave system, Poisson
    // arrivals over 20 shared-Zipf documents, 30 diffusion epochs.
    println!("\npacket-level WebWave absorbing the crowd...");
    let report = Runner::new().run(&spec).expect("packet run");
    let row = &report.rows[0];
    println!(
        "  served {} requests; mean upward hops {:.2}",
        row.outcome.metric("served_requests").unwrap_or(0.0),
        row.outcome.metric("mean_hops").unwrap_or(0.0),
    );
    println!(
        "  distance to TLB: initial {:.0} -> final {:.0}",
        row.outcome.initial_distance().unwrap_or(0.0),
        row.outcome.metric("final_distance").unwrap_or(0.0),
    );
    println!(
        "  copies pushed: {}; tunnel fetches: {}",
        row.outcome.metric("copy_pushes").unwrap_or(0.0),
        row.outcome.metric("tunnel_fetches").unwrap_or(0.0),
    );
    println!(
        "  control overhead: {:.4} control msgs per served request",
        row.outcome
            .metric("control_msgs_per_request")
            .unwrap_or(0.0),
    );
    let loads = row.outcome.load.as_ref().expect("served rates");
    let root_share = loads.as_slice()[0] / loads.total().max(1e-9);
    println!(
        "  home server now serves only {:.1}% of the demand",
        100.0 * root_share
    );
}
