//! A publisher's flash crowd: a hot document suddenly draws Zipf-skewed
//! demand from access networks all over a large routing tree. Compare how
//! the schemes of the paper's related-work section cope, then watch the
//! packet-level WebWave system absorb the crowd.
//!
//! Run with: `cargo run --release --example publisher_flash_crowd`

use rand::rngs::StdRng;
use rand::SeedableRng;
use webwave::baselines;
use webwave::model::NodeId;
use webwave::packetsim::{PacketSim, PacketSimConfig};
use webwave::topology::random_tree_of_depth;
use webwave::workload::{shared_zipf_mix, zipf_nodes};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    // An ISP-scale routing tree: 96 cache servers, depth 7.
    let tree = random_tree_of_depth(&mut rng, 96, 7);
    // The flash crowd: 9600 req/s total, Zipf-skewed across access nodes.
    let demand = zipf_nodes(&mut rng, &tree, 9600.0, 1.0);
    println!(
        "flash crowd: {:.0} req/s over {} nodes (max node demand {:.0} req/s)",
        demand.total(),
        tree.len(),
        demand.max()
    );

    // How would each scheme handle it? (rate-level comparison)
    println!("\nscheme comparison (rate level):");
    println!(
        "{:<16} {:>10} {:>14} {:>15} {:>10}",
        "scheme", "max load", "ctrl msgs/req", "data hops/req", "directory?"
    );
    for r in baselines::compare_all(&tree, &demand) {
        println!(
            "{:<16} {:>10.1} {:>14.3} {:>15.2} {:>10}",
            r.name,
            r.max_load,
            r.control_msgs_per_request,
            r.data_hops_per_request,
            if r.violates_nss { "needed" } else { "no" }
        );
    }

    // Now the real thing: the packet-level WebWave system, 20 documents
    // shared-Zipf popular, Poisson arrivals.
    let mix = shared_zipf_mix(&tree, &demand, 20, 1.0);
    let mut sim = PacketSim::new(
        &tree,
        &mix,
        PacketSimConfig {
            seed: 7,
            ..PacketSimConfig::default()
        },
    );
    println!("\npacket-level WebWave absorbing the crowd...");
    let report = sim.run(30.0);
    println!(
        "  served {} requests; mean upward hops {:.2}",
        report.served_requests, report.mean_hops
    );
    println!(
        "  distance to TLB: initial {:.0} -> final {:.0}",
        report.trace.initial().unwrap_or(0.0),
        report.final_distance
    );
    println!(
        "  copies pushed: {}; tunnel fetches: {}",
        report.copy_pushes, report.tunnel_fetches
    );
    println!(
        "  control overhead: {:.4} control msgs per served request",
        report.ledger.control_overhead_per_request()
    );
    let root_share = report.served_rates[NodeId::new(tree.root().index())]
        / report.served_rates.total().max(1e-9);
    println!(
        "  home server now serves only {:.1}% of the demand",
        100.0 * root_share
    );
}
