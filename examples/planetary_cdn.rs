//! WebWave as the balancing layer of a planetary document CDN: real
//! threads, real channels, no shared state — each cache server cooperates
//! with its tree neighbors only.
//!
//! Run with: `cargo run --release --example planetary_cdn`

use rand::rngs::StdRng;
use rand::SeedableRng;
use webwave::fold::webfold;
use webwave::runtime::{run_cluster, ClusterConfig};
use webwave::topology::two_level;
use webwave::workload::zipf_nodes;

fn main() {
    // A two-level CDN: one origin, 6 regional hubs, 8 edge sites each.
    let tree = two_level(6, 8);
    let mut rng = StdRng::seed_from_u64(11);
    let demand = zipf_nodes(&mut rng, &tree, 5400.0, 0.9);
    println!(
        "CDN: {} servers ({} regions x 8 edges), {:.0} req/s total demand",
        tree.len(),
        6,
        demand.total()
    );

    // What is achievable? The WebFold oracle.
    let oracle = webfold(&tree, &demand);
    println!(
        "WebFold optimum: max load {:.1} req/s across {} folds (GLE share would be {:.1})",
        oracle.load().max(),
        oracle.fold_count(),
        demand.total() / tree.len() as f64
    );

    // Deploy: one OS thread per server, crossbeam channels as links.
    println!("\nspawning {} cache-server threads...", tree.len());
    let report = run_cluster(&tree, &demand, ClusterConfig::default());
    println!(
        "cluster settled: distance to TLB oracle {:.2} ({:.2}% of demand), {} messages exchanged",
        report.distance,
        100.0 * report.distance / demand.total(),
        report.messages
    );
    println!(
        "max server load: {:.1} req/s (oracle {:.1}); origin now carries {:.1} req/s",
        report.loads.max(),
        report.oracle.max(),
        report.loads[tree.root()]
    );
    assert!(report.distance < 0.05 * demand.total());
    println!("\nThe threads reached the off-line optimum with gossip alone.");
}
