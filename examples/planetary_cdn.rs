//! WebWave as the balancing layer of a planetary document CDN: real
//! threads, real channels, no shared state — each cache server cooperates
//! with its tree neighbors only.
//!
//! The deployment is the shipped `scenarios/planetary_cdn.json` spec:
//! a two-level CDN topology, Zipf-skewed demand, and the threaded
//! `cluster` engine — all driven through the unified `Runner`.
//!
//! Run with: `cargo run --release --example planetary_cdn`

use webwave::scenario::{Runner, ScenarioSpec};

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/planetary_cdn.json");
    let spec = ScenarioSpec::from_json(&std::fs::read_to_string(path).expect("spec file"))
        .expect("valid spec");
    println!(
        "CDN spec \"{}\": two-level tree (6 regions x 8 edges), Zipf demand",
        spec.name
    );

    // Deploy: one OS thread per server, crossbeam channels as links.
    println!("spawning one cache-server thread per node...");
    let report = Runner::new().run(&spec).expect("cluster run");
    let row = &report.rows[0];
    let loads = row.outcome.load.as_ref().expect("loads");
    let oracle = row.outcome.oracle.as_ref().expect("oracle");
    let total = loads.total();
    let distance = row.outcome.metric("distance_to_tlb").expect("distance");
    println!(
        "cluster settled: distance to TLB oracle {:.2} ({:.2}% of demand), {} messages exchanged",
        distance,
        100.0 * distance / total,
        row.outcome.metric("messages").unwrap_or(0.0),
    );
    println!(
        "max server load: {:.1} req/s (oracle {:.1})",
        loads.max(),
        oracle.max()
    );
    assert!(distance < 0.05 * total);
    println!("\nThe threads reached the off-line optimum with gossip alone.");
}
