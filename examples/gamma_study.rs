//! Reproduces the paper's Section 5.1 regression: fit `a * gamma^t` to
//! WebWave's convergence trace on random trees of increasing depth.
//!
//! The paper reports `gamma = 0.830734` with standard error `0.005786`
//! for a random tree of depth 9; this example regenerates the whole
//! depth sweep and prints the fitted rates.
//!
//! Every trial is a `ScenarioSpec` (random-depth topology, uniform
//! random rates, rate-level engine) driven through the unified
//! `Runner` inside `experiments::gamma_study`.
//!
//! Run with: `cargo run --release --example gamma_study`

use webwave::experiments::gamma_study;

fn main() {
    let depths = [3usize, 4, 5, 6, 7, 8, 9];
    println!("fitting a*gamma^t to WebWave convergence on random trees (256 nodes)\n");
    let study = gamma_study(&depths, 256, 600, 1997);
    print!("{}", study.report);
    let depth9 = study
        .rows
        .iter()
        .find(|r| r.depth == 9)
        .expect("depth 9 present");
    println!(
        "\npaper's depth-9 reference: gamma = 0.830734 +/- 0.005786; ours: {:.6} +/- {:.6}",
        depth9.gamma, depth9.stderr
    );
    // The *shape* claims of the paper: convergence is exponential
    // (gamma < 1) and deeper trees converge more slowly (gamma grows).
    assert!(study.rows.iter().all(|r| r.gamma < 1.0));
    let shallow = study.rows.first().expect("rows");
    assert!(
        depth9.gamma > shallow.gamma,
        "deeper trees should mix more slowly"
    );
    println!("shape check passed: exponential convergence, gamma grows with depth.");
}
