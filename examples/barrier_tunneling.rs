//! The Figure 7 story: a *potential barrier* stalls diffusion, and
//! tunneling cures it.
//!
//! Node 1 sits between the home server and two leaves. The left leaf
//! requests only document d3; the right leaf hammers d1 and d2. Node 1
//! ends up caching only d1/d2 — so it has nothing to give its underloaded
//! left child, and (worse) its own balanced load hides the problem from
//! the home server. WebWave's tunneling lets the starved node fetch d3
//! directly from across the barrier.
//!
//! Run with: `cargo run --example barrier_tunneling`

use webwave::docsim::{DocSim, DocSimConfig};
use webwave::model::NodeId;
use webwave::topology::paper;

fn print_loads(label: &str, sim: &DocSim) {
    let l = sim.load();
    println!(
        "{label:<28} n0={:>6.1}  n1={:>6.1}  n2={:>6.1}  n3={:>6.1}   (distance to TLB {:.1})",
        l[NodeId::new(0)],
        l[NodeId::new(1)],
        l[NodeId::new(2)],
        l[NodeId::new(3)],
        sim.distance_to_tlb()
    );
}

fn main() {
    let scenario = paper::fig7();
    println!("Figure 7 scenario: d1,d2 @ 135 req/s each from n3; d3 @ 90 req/s from n2");
    println!("TLB target: every node serves 90 req/s\n");

    // Without tunneling: the system stalls with n2 starved.
    let mut stalled = DocSim::from_barrier_scenario(
        &scenario,
        DocSimConfig {
            tunneling: false,
            ..DocSimConfig::default()
        },
    );
    for rounds in [0usize, 10, 50, 200, 800] {
        while stalled.round() < rounds {
            stalled.step();
        }
        print_loads(&format!("no tunneling, round {rounds}"), &stalled);
    }
    println!(
        "  -> n1 is a potential barrier: it caches {:?} but n2 requests only d3.",
        stalled.copies_at(NodeId::new(1))
    );
    println!(
        "  -> barrier suspicions raised: {}\n",
        stalled.stats().barrier_suspicions
    );

    // With tunneling: n2 fetches d3 across the barrier and the system
    // reaches the uniform-90 TLB.
    let mut tunneled = DocSim::from_barrier_scenario(&scenario, DocSimConfig::default());
    for rounds in [0usize, 10, 50, 200, 800, 1500] {
        while tunneled.round() < rounds {
            tunneled.step();
        }
        print_loads(&format!("with tunneling, round {rounds}"), &tunneled);
    }
    println!(
        "  -> tunnel fetches: {}; n2 now caches {:?}",
        tunneled.stats().tunnel_fetches,
        tunneled.copies_at(NodeId::new(2))
    );
    assert!(tunneled.distance_to_tlb() < 2.0);
    println!("\nTunneling dissolved the barrier; every node serves ~90 req/s.");
}
