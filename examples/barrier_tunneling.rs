//! The Figure 7 story: a *potential barrier* stalls diffusion, and
//! tunneling cures it.
//!
//! Node 1 sits between the home server and two leaves. The left leaf
//! requests only document d3; the right leaf hammers d1 and d2. Node 1
//! ends up caching only d1/d2 — so it has nothing to give its underloaded
//! left child, and (worse) its own balanced load hides the problem from
//! the home server. WebWave's tunneling lets the starved node fetch d3
//! directly from across the barrier.
//!
//! The whole experiment is one declarative spec (the shipped
//! `scenarios/barrier_tunneling.json`): the Figure 7 topology and
//! document demands, the document-level engine, and a sweep over
//! `tunneling` ∈ {off, on}.
//!
//! Run with: `cargo run --example barrier_tunneling`

use webwave::scenario::{Observer, Runner, ScenarioSpec};

/// Prints the distance to TLB at a few checkpoints of each run.
struct Checkpoints;

impl Observer for Checkpoints {
    fn on_round(&mut self, round: usize, convergence: Option<f64>) {
        if matches!(round, 10 | 50 | 200 | 800 | 1500) {
            if let Some(d) = convergence {
                println!("    round {round:>4}: distance to TLB {d:>7.1}");
            }
        }
    }
}

fn main() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/barrier_tunneling.json"
    );
    let spec = ScenarioSpec::from_json(&std::fs::read_to_string(path).expect("spec file"))
        .expect("valid spec");
    println!("Figure 7 scenario: d1,d2 @ 135 req/s each from n3; d3 @ 90 req/s from n2");
    println!("TLB target: every node serves 90 req/s\n");

    println!("sweeping tunneling off -> on:");
    let report = Runner::new()
        .run_with(&spec, &mut Checkpoints)
        .expect("spec resolves");

    for row in &report.rows {
        let load = row.outcome.load.as_ref().expect("loads");
        let distance = row.outcome.final_distance().expect("distance");
        println!(
            "\n  [{}] loads: n0={:>6.1}  n1={:>6.1}  n2={:>6.1}  n3={:>6.1}   (distance {:.1})",
            row.label,
            load.as_slice()[0],
            load.as_slice()[1],
            load.as_slice()[2],
            load.as_slice()[3],
            distance,
        );
        println!(
            "      barrier suspicions {:>4}, tunnel fetches {:>2}, copy pushes {:>3}",
            row.outcome.metric("barrier_suspicions").unwrap_or(0.0),
            row.outcome.metric("tunnel_fetches").unwrap_or(0.0),
            row.outcome.metric("copy_pushes").unwrap_or(0.0),
        );
    }

    let stalled = &report.rows[0];
    let tunneled = &report.rows[1];
    assert!(stalled.outcome.final_distance().unwrap() > 100.0);
    assert!(tunneled.outcome.final_distance().unwrap() < 2.0);
    println!("\nTunneling dissolved the barrier; every node serves ~90 req/s.");
}
