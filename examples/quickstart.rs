//! Quickstart: describe a whole run as data, let the unified `Runner`
//! drive it, and watch the distributed WebWave protocol converge to the
//! WebFold (TLB) optimum.
//!
//! The same JSON works from the command line:
//! `webwave-exp run scenarios/fig2b.json`.
//!
//! Run with: `cargo run --example quickstart`

use webwave::fold::webfold;
use webwave::model::{RateVector, Tree};
use webwave::scenario::{Observer, Runner, ScenarioSpec};

/// Streams the convergence trace at a few checkpoints — the `Observer`
/// API replaces the hand-rolled `while round < n` stepping loops the
/// examples used to carry.
struct Checkpoints;

impl Observer for Checkpoints {
    fn on_round(&mut self, round: usize, convergence: Option<f64>) {
        if matches!(round, 1 | 2 | 5 | 10 | 20 | 50 | 100 | 200 | 500) {
            if let Some(d) = convergence {
                println!("  round {round:>4}: distance {d:.6}");
            }
        }
    }
}

fn main() {
    // A small routing tree: home server 0, two regional caches, three
    // access networks generating the demand.
    //
    //          0  (home server)
    //         / \
    //        1   2
    //       / \   \
    //      3   4   5
    let tree = Tree::from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)])
        .expect("valid tree");
    let demand = RateVector::from(vec![0.0, 0.0, 0.0, 120.0, 60.0, 30.0]);
    println!("tree: 6 nodes, height {}", tree.height());
    println!("spontaneous demand E = {demand}");

    // 1. The off-line optimum: WebFold partitions the tree into folds and
    //    spreads each fold's demand evenly over its members.
    let folded = webfold(&tree, &demand);
    println!("\nWebFold TLB assignment: {}", folded.load());
    println!("folds: {}", folded.fold_count());
    for (root, members) in folded.folds() {
        let ids: Vec<usize> = members.iter().map(|m| m.index()).collect();
        println!(
            "  fold rooted at n{}: members {ids:?}, {:.2} req/s per node",
            root.index(),
            folded.load()[root]
        );
    }

    // 2. The distributed protocol, declaratively: the same tree and
    //    demand as a scenario spec. The Runner owns the termination rule
    //    (run until distance to TLB <= 1e-6) — no stepping loop here.
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "quickstart",
          "topology": {"kind": "explicit", "parents": [null, 0, 0, 1, 1, 2]},
          "workload": {"rates": {"kind": "explicit", "rates": [0, 0, 0, 120, 60, 30]}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "converged", "threshold": 1e-6, "max_rounds": 5000}
        }"#,
    )
    .expect("valid spec");

    println!("\nWebWave converging (distance to TLB per round):");
    let report = Runner::new()
        .run_with(&spec, &mut Checkpoints)
        .expect("spec resolves");
    let row = &report.rows[0];
    println!("\n{}", report.report.trim_end());
    println!("final loads: {}", row.outcome.load.as_ref().unwrap());
    println!("oracle:      {}", row.outcome.oracle.as_ref().unwrap());
    assert!(row.converged, "should have converged");
    assert_eq!(
        row.outcome.oracle.as_ref().unwrap().as_slice(),
        folded.load().as_slice(),
        "the runner's oracle is the same WebFold output"
    );
    println!("\nWebWave reached the WebFold optimum using only local information.");
}
