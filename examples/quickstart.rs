//! Quickstart: compute the optimal TLB assignment with WebFold, then watch
//! the distributed WebWave protocol converge to it.
//!
//! Run with: `cargo run --example quickstart`

use webwave::fold::webfold;
use webwave::model::{RateVector, Tree};
use webwave::wave::{RateWave, WaveConfig};

fn main() {
    // A small routing tree: home server 0, two regional caches, three
    // access networks generating the demand.
    //
    //          0  (home server)
    //         / \
    //        1   2
    //       / \   \
    //      3   4   5
    let tree = Tree::from_parents(&[None, Some(0), Some(0), Some(1), Some(1), Some(2)])
        .expect("valid tree");
    let demand = RateVector::from(vec![0.0, 0.0, 0.0, 120.0, 60.0, 30.0]);
    println!("tree: 6 nodes, height {}", tree.height());
    println!("spontaneous demand E = {demand}");

    // 1. The off-line optimum: WebFold partitions the tree into folds and
    //    spreads each fold's demand evenly over its members.
    let folded = webfold(&tree, &demand);
    println!("\nWebFold TLB assignment: {}", folded.load());
    println!("folds: {}", folded.fold_count());
    for (root, members) in folded.folds() {
        let ids: Vec<usize> = members.iter().map(|m| m.index()).collect();
        println!(
            "  fold rooted at n{}: members {ids:?}, {:.2} req/s per node",
            root.index(),
            folded.load()[root]
        );
    }

    // 2. The distributed protocol: nodes gossip loads to tree neighbors
    //    and shift future request rate under the no-sibling-sharing bound.
    let mut wave = RateWave::new(&tree, &demand, WaveConfig::default());
    println!("\nWebWave converging (distance to TLB per round):");
    for checkpoint in [0usize, 1, 2, 5, 10, 20, 50, 100, 200, 500] {
        while wave.round() < checkpoint {
            wave.step();
        }
        println!(
            "  round {:>4}: distance {:.6}",
            wave.round(),
            wave.distance_to_tlb()
        );
    }
    println!("\nfinal loads: {}", wave.load());
    println!("oracle:      {}", wave.oracle());
    assert!(wave.distance_to_tlb() < 1e-3, "should have converged");
    println!("\nWebWave reached the WebFold optimum using only local information.");
}
