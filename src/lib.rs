//! # webwave — globally load balanced, fully distributed caching of hot published documents
//!
//! A production-quality Rust reproduction of *WebWave* (Heddaya & Mirdad,
//! Boston University TR BU-CS-96-024 / ICDCS 1997): a caching system for
//! immutable published documents that
//!
//! 1. **maximizes global throughput** by driving the per-server load
//!    distribution to the provably optimal *Tree Load Balance* (TLB),
//! 2. **finds cache copies without any directory or discovery protocol** —
//!    requests simply stumble on copies placed along their routing path,
//! 3. **is completely distributed**: every decision uses only a node's own
//!    measurements and its tree neighbors' gossip.
//!
//! This crate re-exports the whole workspace under one roof:
//!
//! * [`model`] — routing trees, rate vectors, flow constraints,
//! * [`topology`] / [`workload`] — tree generators and synthetic demand,
//! * [`diffusion`] — the classic GLE diffusion substrate (Cybenko et al.),
//! * [`fold`] — WebFold, the off-line TLB oracle,
//! * [`wave`], [`docsim`], [`packetsim`] — the WebWave protocol at rate,
//!   document and packet granularity (barriers + tunneling included),
//! * [`pdes`] — the sharded parallel packet engine (`ParPacketSim`),
//!   bit-identical to [`packetsim`] at every worker count,
//! * [`runtime`] — WebWave as real cooperating threads,
//! * [`baselines`] — directory caches, DNS round-robin, no-cache,
//! * [`scenario`] — the unified API: one declarative [`scenario::ScenarioSpec`]
//!   plus an [`scenario::Engine`]/[`scenario::Runner`] pair driving every
//!   simulator, the runtime, and the baselines (`scenarios/*.json`),
//! * [`stats`] — the `a * gamma^t` convergence regression,
//! * [`sim`] / [`net`] / [`cache`] — event kernel, routers + packet
//!   filters, cache stores,
//! * [`experiments`] — one runner per paper figure/table.
//!
//! # Quickstart
//!
//! The high-level path: describe the whole run — topology, workload,
//! engine, termination — as data, and let the [`scenario::Runner`] drive
//! it. The same JSON works from the command line:
//! `webwave-exp run scenarios/fig2b.json`.
//!
//! ```
//! use webwave::scenario::{Runner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json(r#"{
//!     "name": "fig2b",
//!     "topology": {"kind": "paper", "figure": "fig2b"},
//!     "workload": {"rates": {"kind": "paper"}},
//!     "engine": {"kind": "rate_wave"},
//!     "termination": {"kind": "converged", "threshold": 1e-6, "max_rounds": 5000}
//! }"#).unwrap();
//! let report = Runner::new().run(&spec).unwrap();
//! let row = &report.rows[0];
//! assert!(row.converged);
//! // The distributed protocol reached the WebFold (TLB) optimum.
//! assert_eq!(row.outcome.oracle.as_ref().unwrap().as_slice(),
//!            &[30.0, 30.0, 5.0, 30.0, 5.0]);
//! ```
//!
//! The low-level path drives the same engines directly:
//!
//! ```
//! use webwave::topology::paper;
//! use webwave::fold::webfold;
//! use webwave::wave::{RateWave, WaveConfig};
//!
//! // The optimal off-line assignment...
//! let s = paper::fig2b();
//! let tlb = webfold(&s.tree, &s.spontaneous);
//! assert_eq!(tlb.load().as_slice(), &[30.0, 30.0, 5.0, 30.0, 5.0]);
//!
//! // ...and the distributed protocol converging to it.
//! let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
//! wave.run(2000);
//! assert!(wave.distance_to_tlb() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ww_baselines as baselines;
pub use ww_cache as cache;
pub use ww_core::docsim;
pub use ww_core::fold;
pub use ww_core::packet;
pub use ww_core::packetsim;
pub use ww_core::throughput;
pub use ww_core::tlb;
pub use ww_core::tracking;
pub use ww_core::wave;
pub use ww_diffusion as diffusion;
pub use ww_experiments as experiments;
pub use ww_forest as forest;
pub use ww_model as model;
pub use ww_net as net;
pub use ww_pdes as pdes;
pub use ww_runtime as runtime;
pub use ww_scenario as scenario;
pub use ww_sim as sim;
pub use ww_stats as stats;
pub use ww_topology as topology;
pub use ww_workload as workload;
