//! Undirected graphs for the load-diffusion substrate.
//!
//! Section 2 of the paper grounds WebWave in the diffusion literature:
//! Cybenko's hypercubes, Hong et al.'s nearest-neighbor averaging, Xu &
//! Lau's k-ary n-cubes and Lüling & Monien's De Bruijn / ring networks.
//! [`Graph`] plus the generators below let `ww-diffusion` reproduce the
//! classic Global Load Equality results those works establish, which the
//! tree-constrained WebWave is then compared against.

use serde::{Deserialize, Serialize};
use ww_model::{NodeId, Tree};

/// A simple undirected graph over dense node ids.
///
/// # Example
///
/// ```
/// use ww_topology::Graph;
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.degree(ww_model::NodeId::new(1)), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<NodeId>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the undirected edge `{u, v}`. Self-loops and duplicate edges are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.len() && v < self.len(),
            "edge endpoint out of range"
        );
        if u == v {
            return;
        }
        let (a, b) = (NodeId::new(u), NodeId::new(v));
        if self.adj[u].contains(&b) {
            return;
        }
        self.adj[u].push(b);
        self.adj[v].push(a);
        self.edges += 1;
    }

    /// Neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adj[node.index()]
    }

    /// Degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.index()].len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `true` when every node can reach every other — one of Cybenko's two
    /// sufficient conditions for diffusion convergence.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adj[u] {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    stack.push(v.index());
                }
            }
        }
        count == self.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId::new)
    }
}

impl From<&Tree> for Graph {
    /// Views a routing tree as an undirected graph (parent-child edges).
    fn from(tree: &Tree) -> Self {
        let mut g = Graph::new(tree.len());
        for u in tree.nodes() {
            if let Some(p) = tree.parent(u) {
                g.add_edge(u.index(), p.index());
            }
        }
        g
    }
}

/// A ring of `n` nodes (Lüling & Monien's transputer topology).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// The boolean hypercube of dimension `dim` (2^dim nodes), Cybenko's
/// canonical diffusion network.
///
/// # Panics
///
/// Panics if `dim >= usize::BITS as usize`.
pub fn hypercube(dim: usize) -> Graph {
    assert!(dim < usize::BITS as usize, "dimension too large");
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for u in 0..n {
        for b in 0..dim {
            let v = u ^ (1 << b);
            if u < v {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// The k-ary n-cube (n-dimensional torus with k nodes per dimension),
/// the topology whose optimal diffusion parameter Xu & Lau derive.
///
/// `k == 2` degenerates to the hypercube; `n == 1` to a ring (for k >= 3).
///
/// # Panics
///
/// Panics if `k < 2` or `n == 0`, or if `k^n` overflows.
pub fn k_ary_n_cube(k: usize, n: usize) -> Graph {
    assert!(k >= 2, "need at least 2 nodes per dimension");
    assert!(n >= 1, "need at least one dimension");
    let size = k.checked_pow(n as u32).expect("k^n must fit in usize");
    let mut g = Graph::new(size);
    // Node index = sum of digit_i * k^i (base-k representation).
    for u in 0..size {
        let mut digits = Vec::with_capacity(n);
        let mut rest = u;
        for _ in 0..n {
            digits.push(rest % k);
            rest /= k;
        }
        for (dim, &d) in digits.iter().enumerate() {
            let stride = k.pow(dim as u32);
            let up = (d + 1) % k;
            let v = u - d * stride + up * stride;
            g.add_edge(u, v);
        }
    }
    g
}

/// The binary De Bruijn graph of dimension `dim` (2^dim nodes), the other
/// topology of Lüling & Monien's load balancer. Edges connect `u` to
/// `(2u) mod n` and `(2u + 1) mod n`, undirected and deduplicated.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim >= usize::BITS as usize`.
pub fn de_bruijn(dim: usize) -> Graph {
    assert!(dim > 0 && dim < usize::BITS as usize, "bad dimension");
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for u in 0..n {
        g.add_edge(u, (2 * u) % n);
        g.add_edge(u, (2 * u + 1) % n);
    }
    g
}

/// The complete graph on `n` nodes — diffusion converges in one step with
/// `alpha = 1/n`; useful as a best-case baseline.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs nodes");
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_degrees_and_connectivity() {
        let g = ring(5);
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let g = hypercube(3);
        assert_eq!(g.len(), 8);
        assert_eq!(g.edge_count(), 12); // 8 * 3 / 2
        assert!(g.nodes().all(|u| g.degree(u) == 3));
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_dim_zero_is_single_node() {
        let g = hypercube(0);
        assert_eq!(g.len(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn k_ary_n_cube_matches_ring_and_hypercube() {
        // 5-ary 1-cube is the 5-ring.
        let g = k_ary_n_cube(5, 1);
        assert_eq!(g.len(), 5);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        // 2-ary 3-cube is the 3-hypercube (wraparound edge == direct edge).
        let h = k_ary_n_cube(2, 3);
        assert_eq!(h.len(), 8);
        assert!(h.nodes().all(|u| h.degree(u) == 3));
    }

    #[test]
    fn k_ary_n_cube_torus_degree() {
        // 3-ary 2-cube: every node has 2 neighbors per dimension.
        let g = k_ary_n_cube(3, 2);
        assert_eq!(g.len(), 9);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
        assert!(g.is_connected());
    }

    #[test]
    fn de_bruijn_connected() {
        let g = de_bruijn(4);
        assert_eq!(g.len(), 16);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn complete_graph_edges() {
        let g = complete(4);
        assert_eq!(g.edge_count(), 6);
        assert!(g.nodes().all(|u| g.degree(u) == 3));
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(0, 0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId::new(0)), 1);
    }

    #[test]
    fn disconnected_graph_detected() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        assert!(!g.is_connected());
    }

    #[test]
    fn tree_to_graph_preserves_edges() {
        let t = Tree::from_parents(&[None, Some(0), Some(0), Some(1)]).unwrap();
        let g = Graph::from(&t);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(1)), 2);
        assert!(g.is_connected());
    }
}
