//! Random tree generators.
//!
//! Section 5.1 of the paper evaluates WebWave convergence on random trees
//! ("for a random tree with depth 9, gamma = 0.830734"). We provide three
//! families:
//!
//! * [`random_recursive_bounded`] — nodes attach to a uniformly random
//!   existing node whose depth allows the child to respect a depth bound;
//!   the natural reading of "a random tree with depth d",
//! * [`random_pruefer`] — a uniformly random labeled tree via Prüfer
//!   sequences, re-rooted at node 0,
//! * [`random_attachment`] — preferential / uniform attachment with a
//!   fan-out cap, for Internet-like skew.

use rand::Rng;
use ww_model::Tree;

/// Grows a random recursive tree of `n` nodes whose height never exceeds
/// `max_depth`: each new node picks its parent uniformly among nodes of
/// depth `< max_depth`.
///
/// With `max_depth >= n - 1` this is the classic uniform random recursive
/// tree.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rand::rngs::StdRng;
/// use ww_topology::random_recursive_bounded;
/// let mut rng = StdRng::seed_from_u64(9);
/// let t = random_recursive_bounded(&mut rng, 64, 9);
/// assert!(t.height() <= 9);
/// assert_eq!(t.len(), 64);
/// ```
pub fn random_recursive_bounded<R: Rng + ?Sized>(rng: &mut R, n: usize, max_depth: usize) -> Tree {
    assert!(n > 0, "tree must have at least one node");
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut depth = vec![0usize];
    // Candidate parents: nodes with depth < max_depth.
    let mut eligible: Vec<usize> = if max_depth > 0 { vec![0] } else { Vec::new() };
    for i in 1..n {
        let p = if eligible.is_empty() {
            // Depth bound of zero with more than one node: degenerate to a
            // star so we can still return a tree of the requested size.
            0
        } else {
            eligible[rng.gen_range(0..eligible.len())]
        };
        parents.push(Some(p));
        let d = depth[p] + 1;
        depth.push(d);
        if d < max_depth {
            eligible.push(i);
        }
    }
    Tree::from_parents(&parents).expect("generated parents are valid")
}

/// Generates a tree of exactly the requested height when possible: first
/// lays down a spine of `max_depth + 1` nodes, then attaches the remaining
/// nodes as in [`random_recursive_bounded`].
///
/// Guarantees `height == min(max_depth, n - 1)`, which is what the paper
/// means by "a random tree with depth 9".
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree_of_depth<R: Rng + ?Sized>(rng: &mut R, n: usize, max_depth: usize) -> Tree {
    assert!(n > 0, "tree must have at least one node");
    let spine_len = max_depth.min(n - 1) + 1;
    let mut parents: Vec<Option<usize>> = (0..spine_len)
        .map(|i| if i == 0 { None } else { Some(i - 1) })
        .collect();
    let mut depth: Vec<usize> = (0..spine_len).collect();
    let mut eligible: Vec<usize> = (0..spine_len).filter(|&i| depth[i] < max_depth).collect();
    for i in spine_len..n {
        let p = if eligible.is_empty() {
            0
        } else {
            eligible[rng.gen_range(0..eligible.len())]
        };
        parents.push(Some(p));
        let d = depth[p] + 1;
        depth.push(d);
        if d < max_depth {
            eligible.push(i);
        }
    }
    Tree::from_parents(&parents).expect("generated parents are valid")
}

/// Uniformly random labeled tree on `n` nodes via a random Prüfer sequence,
/// rooted at node 0.
///
/// Every labeled tree shape is equally likely, making this the least biased
/// generator for property tests.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_pruefer<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Tree {
    assert!(n > 0, "tree must have at least one node");
    if n == 1 {
        return Tree::from_parents(&[None]).expect("single node tree");
    }
    if n == 2 {
        return Tree::from_parents(&[None, Some(0)]).expect("two node tree");
    }
    let seq: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
    let edges = pruefer_to_edges(&seq, n);
    edges_to_rooted_tree(n, &edges, 0)
}

/// Decodes a Prüfer sequence into the tree's edge list.
fn pruefer_to_edges(seq: &[usize], n: usize) -> Vec<(usize, usize)> {
    let mut degree = vec![1usize; n];
    for &s in seq {
        degree[s] += 1;
    }
    let mut edges = Vec::with_capacity(n - 1);
    // Min-heap of current leaves.
    let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
        .filter(|&i| degree[i] == 1)
        .map(std::cmp::Reverse)
        .collect();
    for &s in seq {
        let std::cmp::Reverse(leaf) = leaves.pop().expect("pruefer invariant: a leaf exists");
        edges.push((leaf, s));
        degree[s] -= 1;
        if degree[s] == 1 {
            leaves.push(std::cmp::Reverse(s));
        }
    }
    let std::cmp::Reverse(u) = leaves.pop().expect("two nodes remain");
    let std::cmp::Reverse(v) = leaves.pop().expect("two nodes remain");
    edges.push((u, v));
    edges
}

/// Orients an undirected edge list into a tree rooted at `root`.
fn edges_to_rooted_tree(n: usize, edges: &[(usize, usize)], root: usize) -> Tree {
    let mut adj = vec![Vec::new(); n];
    for &(u, v) in edges {
        adj[u].push(v);
        adj[v].push(u);
    }
    let mut parents: Vec<Option<usize>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut stack = vec![root];
    visited[root] = true;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                parents[v] = Some(u);
                stack.push(v);
            }
        }
    }
    Tree::from_parents(&parents).expect("edge list was a tree")
}

/// Random attachment tree with a fan-out cap: each new node attaches to a
/// random existing node with fewer than `max_children` children.
///
/// With small `max_children` this produces deep, skinny, Internet-like
/// access trees.
///
/// # Panics
///
/// Panics if `n == 0` or `max_children == 0`.
pub fn random_attachment<R: Rng + ?Sized>(rng: &mut R, n: usize, max_children: usize) -> Tree {
    assert!(n > 0, "tree must have at least one node");
    assert!(max_children > 0, "fan-out cap must be positive");
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut child_count = vec![0usize];
    let mut open: Vec<usize> = vec![0];
    for i in 1..n {
        let slot = rng.gen_range(0..open.len());
        let p = open[slot];
        parents.push(Some(p));
        child_count[p] += 1;
        child_count.push(0);
        if child_count[p] >= max_children {
            open.swap_remove(slot);
        }
        open.push(i);
    }
    Tree::from_parents(&parents).expect("generated parents are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bounded_tree_respects_depth() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let t = random_recursive_bounded(&mut rng, 100, 5);
            assert_eq!(t.len(), 100);
            assert!(t.height() <= 5, "height {} > 5", t.height());
        }
    }

    #[test]
    fn depth_zero_degenerates_to_star() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = random_recursive_bounded(&mut rng, 10, 0);
        assert_eq!(t.height(), 1); // all nodes attach to the root
    }

    #[test]
    fn tree_of_depth_hits_exact_height() {
        let mut rng = StdRng::seed_from_u64(3);
        for d in 1..10 {
            let t = random_tree_of_depth(&mut rng, 200, d);
            assert_eq!(t.height(), d, "requested depth {d}");
        }
    }

    #[test]
    fn tree_of_depth_small_n_clamps() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = random_tree_of_depth(&mut rng, 3, 9);
        assert_eq!(t.height(), 2); // a 3-node path
    }

    #[test]
    fn pruefer_trees_are_valid_and_sized() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [1usize, 2, 3, 10, 57] {
            let t = random_pruefer(&mut rng, n);
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn pruefer_known_sequence() {
        // Sequence [3, 3, 3, 4] on 6 nodes is the classic textbook example:
        // edges (0,3),(1,3),(2,3),(3,4),(4,5).
        let edges = pruefer_to_edges(&[3, 3, 3, 4], 6);
        let mut normalized: Vec<(usize, usize)> =
            edges.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        normalized.sort_unstable();
        assert_eq!(normalized, vec![(0, 3), (1, 3), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn attachment_respects_fanout_cap() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = random_attachment(&mut rng, 200, 2);
        for u in t.nodes() {
            assert!(t.children(u).len() <= 2);
        }
    }

    #[test]
    fn attachment_cap_one_is_a_path() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = random_attachment(&mut rng, 20, 1);
        assert_eq!(t.height(), 19);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let t1 = random_pruefer(&mut StdRng::seed_from_u64(11), 30);
        let t2 = random_pruefer(&mut StdRng::seed_from_u64(11), 30);
        assert_eq!(t1.to_parents(), t2.to_parents());
    }
}
