//! Deterministic tree generators.
//!
//! These shapes exercise distinct load-balancing behaviours: paths maximize
//! depth (slow diffusion), stars maximize fan-out (root bottleneck), k-ary
//! trees model symmetric hierarchies, caterpillars and brooms mix both.

use ww_model::Tree;

/// A path (chain) of `n` nodes: `0 <- 1 <- ... <- n-1`.
///
/// The deepest possible routing tree; diffusion needs `O(n)` hops to move
/// load end to end.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use ww_topology::path;
/// let t = path(4);
/// assert_eq!(t.height(), 3);
/// assert_eq!(t.leaf_count(), 1);
/// ```
pub fn path(n: usize) -> Tree {
    assert!(n > 0, "path requires at least one node");
    let parents: Vec<Option<usize>> = (0..n)
        .map(|i| if i == 0 { None } else { Some(i - 1) })
        .collect();
    Tree::from_parents(&parents).expect("path parents are valid")
}

/// A star: root `0` with `n - 1` leaf children.
///
/// The shallowest non-trivial tree: every client is one hop from the home
/// server, so NSS never binds between siblings and TLB equals GLE whenever
/// the leaf demands allow it.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Tree {
    assert!(n > 0, "star requires at least one node");
    let parents: Vec<Option<usize>> = (0..n)
        .map(|i| if i == 0 { None } else { Some(0) })
        .collect();
    Tree::from_parents(&parents).expect("star parents are valid")
}

/// A complete `k`-ary tree of the given `depth` (depth 0 = single node).
///
/// Node 0 is the root; children are laid out in BFS order, so node `i`'s
/// parent is `(i - 1) / k`.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Example
///
/// ```
/// use ww_topology::k_ary;
/// let t = k_ary(2, 3); // complete binary tree of depth 3
/// assert_eq!(t.len(), 15);
/// assert_eq!(t.height(), 3);
/// ```
pub fn k_ary(k: usize, depth: usize) -> Tree {
    assert!(k > 0, "k-ary tree requires k >= 1");
    // Total nodes = 1 + k + k^2 + ... + k^depth.
    let mut n: usize = 1;
    let mut level = 1usize;
    for _ in 0..depth {
        level = level.saturating_mul(k);
        n = n.saturating_add(level);
    }
    let parents: Vec<Option<usize>> = (0..n)
        .map(|i| if i == 0 { None } else { Some((i - 1) / k) })
        .collect();
    Tree::from_parents(&parents).expect("k-ary parents are valid")
}

/// A binary tree of the given depth; alias for [`k_ary`]`(2, depth)`.
pub fn binary(depth: usize) -> Tree {
    k_ary(2, depth)
}

/// A caterpillar: a spine path of `spine` nodes, each spine node carrying
/// `legs` leaf children.
///
/// Total nodes: `spine * (1 + legs)`.
///
/// # Panics
///
/// Panics if `spine == 0`.
///
/// # Example
///
/// ```
/// use ww_topology::caterpillar;
/// let t = caterpillar(3, 2);
/// assert_eq!(t.len(), 9);
/// assert_eq!(t.leaf_count(), 6); // every leg is a leaf; spine nodes are not
/// ```
pub fn caterpillar(spine: usize, legs: usize) -> Tree {
    assert!(spine > 0, "caterpillar requires a non-empty spine");
    let n = spine * (1 + legs);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    // Spine nodes occupy 0..spine.
    for (s, slot) in parents.iter_mut().enumerate().take(spine).skip(1) {
        *slot = Some(s - 1);
    }
    // Legs: node spine + s*legs + l hangs off spine node s.
    for s in 0..spine {
        for l in 0..legs {
            parents[spine + s * legs + l] = Some(s);
        }
    }
    Tree::from_parents(&parents).expect("caterpillar parents are valid")
}

/// A broom: a handle path of `handle` nodes ending in a star of
/// `bristles` leaves.
///
/// Models a long backbone route fanning out into a local access network —
/// the classic shape on which the root is far from all demand.
///
/// # Panics
///
/// Panics if `handle == 0`.
pub fn broom(handle: usize, bristles: usize) -> Tree {
    assert!(handle > 0, "broom requires a non-empty handle");
    let n = handle + bristles;
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for (h, slot) in parents.iter_mut().enumerate().take(handle).skip(1) {
        *slot = Some(h - 1);
    }
    for b in 0..bristles {
        parents[handle + b] = Some(handle - 1);
    }
    Tree::from_parents(&parents).expect("broom parents are valid")
}

/// A two-level hierarchy: the root has `regions` children, each of which
/// has `leaves_per_region` leaf children.
///
/// Mirrors a national cache hierarchy (root = origin, regions = regional
/// caches, leaves = institutional caches), the setting of Harvest-style
/// systems the paper positions itself against.
pub fn two_level(regions: usize, leaves_per_region: usize) -> Tree {
    let n = 1 + regions * (1 + leaves_per_region);
    let mut parents: Vec<Option<usize>> = vec![None; n];
    for r in 0..regions {
        parents[1 + r] = Some(0);
        for l in 0..leaves_per_region {
            parents[1 + regions + r * leaves_per_region + l] = Some(1 + r);
        }
    }
    Tree::from_parents(&parents).expect("two-level parents are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_model::NodeId;

    #[test]
    fn path_shape() {
        let t = path(5);
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.children(NodeId::new(2)), &[NodeId::new(3)]);
    }

    #[test]
    fn path_single_node() {
        let t = path(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn star_shape() {
        let t = star(6);
        assert_eq!(t.len(), 6);
        assert_eq!(t.height(), 1);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.children(t.root()).len(), 5);
    }

    #[test]
    fn k_ary_sizes() {
        assert_eq!(k_ary(2, 0).len(), 1);
        assert_eq!(k_ary(2, 1).len(), 3);
        assert_eq!(k_ary(2, 3).len(), 15);
        assert_eq!(k_ary(3, 2).len(), 13);
    }

    #[test]
    fn k_ary_depth_matches() {
        for d in 0..5 {
            assert_eq!(k_ary(2, d).height(), d);
        }
    }

    #[test]
    fn k_ary_parent_formula() {
        let t = k_ary(3, 2);
        assert_eq!(t.parent(NodeId::new(5)), Some(NodeId::new(1)));
        assert_eq!(t.parent(NodeId::new(4)), Some(NodeId::new(1)));
        assert_eq!(t.parent(NodeId::new(12)), Some(NodeId::new(3)));
    }

    #[test]
    fn unary_tree_is_path() {
        let t = k_ary(1, 4);
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 4);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(4, 3);
        assert_eq!(t.len(), 16);
        assert_eq!(t.height(), 4); // spine end's legs are at depth 4
                                   // Spine node 2 has spine child 3 plus 3 legs.
        assert_eq!(t.children(NodeId::new(2)).len(), 4);
    }

    #[test]
    fn caterpillar_without_legs_is_path() {
        let t = caterpillar(5, 0);
        assert_eq!(t.to_parents(), path(5).to_parents());
    }

    #[test]
    fn broom_shape() {
        let t = broom(3, 4);
        assert_eq!(t.len(), 7);
        assert_eq!(t.height(), 3);
        assert_eq!(t.children(NodeId::new(2)).len(), 4);
        assert_eq!(t.leaf_count(), 4);
    }

    #[test]
    fn two_level_shape() {
        let t = two_level(3, 2);
        assert_eq!(t.len(), 10);
        assert_eq!(t.height(), 2);
        assert_eq!(t.children(t.root()).len(), 3);
        assert_eq!(t.leaf_count(), 6);
    }
}
