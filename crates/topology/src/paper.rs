//! The paper's hand-crafted example scenarios (Figures 2, 4, 6, 7).
//!
//! The original figures are drawings whose exact node counts are illegible
//! in the scanned copy; each scenario here is reconstructed to satisfy every
//! property the text states about it (see `DESIGN.md`, "Substitutions"):
//!
//! * **Figure 2** — one tree, two spontaneous-rate vectors: (a) admits a
//!   TLB assignment that is also GLE, (b) does not.
//! * **Figure 4** — a tree whose folding sequence cascades through several
//!   intermediate folds and ends in a TLB that is not GLE.
//! * **Figure 6** — a tree whose rates force "many different patterns" of
//!   folds; the convergence experiment of Section 5.1 runs on it.
//! * **Figure 7** — the potential-barrier scenario: home server plus three
//!   intermediate servers; documents d1, d2 requested by one leaf and d3 by
//!   the other; correct TLB serves 90 requests at every node, but the
//!   middle server caches none of d3 and blocks diffusion until tunneling.

use serde::{Deserialize, Serialize};
use ww_model::{DocId, NodeId, RateVector, Tree};

/// A named workload scenario: a routing tree plus spontaneous request rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name ("fig2a", "fig6", ...).
    pub name: String,
    /// The routing tree.
    pub tree: Tree,
    /// Spontaneous request rate `E_i` at each node.
    pub spontaneous: RateVector,
}

impl Scenario {
    /// Creates a scenario, panicking on shape mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against `tree`.
    pub fn new(name: impl Into<String>, tree: Tree, spontaneous: RateVector) -> Self {
        spontaneous
            .validate_for(&tree)
            .expect("scenario rates must match tree");
        Scenario {
            name: name.into(),
            tree,
            spontaneous,
        }
    }

    /// Aggregate demand of the scenario.
    pub fn total_demand(&self) -> f64 {
        self.spontaneous.total()
    }
}

/// The five-node tree shared by both Figure 2 scenarios:
///
/// ```text
///         0
///        / \
///       1   2
///       |   |
///       3   4
/// ```
pub fn fig2_tree() -> Tree {
    Tree::from_parents(&[None, Some(0), Some(0), Some(1), Some(2)]).expect("fig2 tree is valid")
}

/// Figure 2(a): spontaneous rates for which the TLB assignment is also GLE.
///
/// Both leaves generate 50 req/s; every node can serve the GLE share of 20
/// without sibling sharing.
pub fn fig2a() -> Scenario {
    Scenario::new(
        "fig2a",
        fig2_tree(),
        RateVector::from(vec![0.0, 0.0, 0.0, 50.0, 50.0]),
    )
}

/// Figure 2(b): spontaneous rates for which TLB is *not* GLE.
///
/// The right subtree generates only 10 req/s, so its two nodes can never
/// reach the GLE share of 20 each; WebFold assigns them 5 each and balances
/// the remaining 90 across the left spine at 30 each.
pub fn fig2b() -> Scenario {
    Scenario::new(
        "fig2b",
        fig2_tree(),
        RateVector::from(vec![0.0, 0.0, 0.0, 90.0, 10.0]),
    )
}

/// The TLB served-rate vector for [`fig2b`], derivable by hand:
/// folds `{0,1,3}` at 30 req/s per node and `{2,4}` at 5 req/s per node.
pub fn fig2b_tlb() -> RateVector {
    RateVector::from(vec![30.0, 30.0, 5.0, 30.0, 5.0])
}

/// Figure 4: an eight-node tree whose folding sequence cascades.
///
/// ```text
///             0
///           /   \
///          1     2
///         / \   / \
///        3   4 5   7
///            |
///            6
/// ```
///
/// Rates `E = [0,0,0,30,0,8,22,4]` force the fold order
/// `3→1, 6→4, {1,3}→0, {4,6}→{0,1,3}, 5→2`, ending with folds
/// `{0,1,3,4,6}` at 10.4, `{2,5}` at 4 and `{7}` at 4 — a TLB assignment
/// that is not GLE (GLE share would be 8).
pub fn fig4() -> Scenario {
    let tree = Tree::from_parents(&[
        None,
        Some(0),
        Some(0),
        Some(1),
        Some(1),
        Some(2),
        Some(4),
        Some(2),
    ])
    .expect("fig4 tree is valid");
    Scenario::new(
        "fig4",
        tree,
        RateVector::from(vec![0.0, 0.0, 0.0, 30.0, 0.0, 8.0, 22.0, 4.0]),
    )
}

/// Figure 6(a): a fourteen-node tree designed "so as to force the shown
/// variety of folds": cascading multi-level folds, tied sibling folds,
/// singleton folds, and a deep chain fold.
///
/// ```text
///                0
///             /  |  \
///            1   2   3
///           /|   |   |\
///          4 5   6   7 8
///          |    / \    |
///          9   10 11   12
///                      |
///                      13
/// ```
pub fn fig6() -> Scenario {
    let tree = Tree::from_parents(&[
        None,
        Some(0),
        Some(0),
        Some(0),
        Some(1),
        Some(1),
        Some(2),
        Some(3),
        Some(3),
        Some(4),
        Some(6),
        Some(6),
        Some(8),
        Some(12),
    ])
    .expect("fig6 tree is valid");
    Scenario::new(
        "fig6",
        tree,
        RateVector::from(vec![
            0.0, 0.0, 0.0, 0.0, 0.0, 24.0, 0.0, 9.0, 0.0, 36.0, 20.0, 20.0, 0.0, 16.0,
        ]),
    )
}

/// One document's demand in the Figure 7 barrier scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DocDemand {
    /// The document requested.
    pub doc: DocId,
    /// The node whose clients request it.
    pub origin: NodeId,
    /// Spontaneous request rate for this document at `origin`.
    pub rate: f64,
}

/// The Figure 7 potential-barrier scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BarrierScenario {
    /// The four-node tree (0 = home server, 1 = middle, 2 and 3 = leaves).
    pub tree: Tree,
    /// Per-document demand: d1, d2 at node 3; d3 at node 2.
    pub demands: Vec<DocDemand>,
    /// The aggregate spontaneous rates implied by `demands`.
    pub spontaneous: RateVector,
    /// The TLB served-rate target: 90 req/s at every node.
    pub tlb: RateVector,
}

/// Figure 7: home server 0, middle server 1, leaves 2 and 3.
///
/// ```text
///        0   (home of d1, d2, d3)
///        |
///        1   (the potential barrier)
///       / \
///      2   3
/// ```
///
/// Node 3's clients request d1 and d2 at 135 req/s each (270 total); node
/// 2's clients request d3 at 90 req/s. Total demand 360; the unique TLB
/// assignment serves 90 at every node, which requires node 2 to cache d3.
/// Without tunneling, node 1 — which caches only d1/d2 copies pushed up
/// from node 3's demand — cannot diffuse any load to node 2 and the system
/// stalls with node 2 idle (the condition `L_3 >= L_1 >= L_0 > L_2` of
/// Section 5.2, in paper numbering `L_k' >= L_j >= L_i > L_k`).
pub fn fig7() -> BarrierScenario {
    let tree = Tree::from_parents(&[None, Some(0), Some(1), Some(1)]).expect("fig7 tree is valid");
    let demands = vec![
        DocDemand {
            doc: DocId::new(1),
            origin: NodeId::new(3),
            rate: 135.0,
        },
        DocDemand {
            doc: DocId::new(2),
            origin: NodeId::new(3),
            rate: 135.0,
        },
        DocDemand {
            doc: DocId::new(3),
            origin: NodeId::new(2),
            rate: 90.0,
        },
    ];
    let mut spontaneous = RateVector::zeros(4);
    for d in &demands {
        spontaneous[d.origin] += d.rate;
    }
    BarrierScenario {
        tree,
        demands,
        spontaneous,
        tlb: RateVector::uniform(4, 90.0),
    }
}

/// All rate-level paper scenarios in figure order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![fig2a(), fig2b(), fig4(), fig6()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_model::LoadAssignment;

    #[test]
    fn fig2_tree_shape() {
        let t = fig2_tree();
        assert_eq!(t.len(), 5);
        assert_eq!(t.height(), 2);
        assert_eq!(t.leaf_count(), 2);
    }

    #[test]
    fn fig2a_gle_is_feasible() {
        let s = fig2a();
        let gle = RateVector::uniform(5, s.total_demand() / 5.0);
        let a = LoadAssignment::new(&s.tree, &s.spontaneous, gle).unwrap();
        assert!(a.check_feasible(1e-9).is_ok());
    }

    #[test]
    fn fig2b_gle_is_infeasible() {
        let s = fig2b();
        let gle = RateVector::uniform(5, s.total_demand() / 5.0);
        let a = LoadAssignment::new(&s.tree, &s.spontaneous, gle).unwrap();
        assert!(!a.satisfies_nss(1e-9), "GLE must violate NSS in fig2b");
    }

    #[test]
    fn fig2b_tlb_is_feasible_and_sums() {
        let s = fig2b();
        let tlb = fig2b_tlb();
        assert!((tlb.total() - s.total_demand()).abs() < 1e-9);
        let a = LoadAssignment::new(&s.tree, &s.spontaneous, tlb).unwrap();
        assert!(a.check_feasible(1e-9).is_ok());
    }

    #[test]
    fn fig4_totals() {
        let s = fig4();
        assert_eq!(s.tree.len(), 8);
        assert_eq!(s.total_demand(), 64.0);
    }

    #[test]
    fn fig6_has_fourteen_nodes_and_demand() {
        let s = fig6();
        assert_eq!(s.tree.len(), 14);
        assert_eq!(s.total_demand(), 125.0);
        assert_eq!(s.tree.height(), 4);
    }

    #[test]
    fn fig7_matches_text() {
        let b = fig7();
        assert_eq!(b.tree.len(), 4);
        assert_eq!(b.spontaneous.as_slice(), &[0.0, 0.0, 90.0, 270.0]);
        assert_eq!(b.tlb.as_slice(), &[90.0; 4]);
        // TLB is feasible.
        let a = LoadAssignment::new(&b.tree, &b.spontaneous, b.tlb.clone()).unwrap();
        assert!(a.check_feasible(1e-9).is_ok());
        // Total demand 360 as in "each node servicing 90" x 4.
        assert_eq!(b.spontaneous.total(), 360.0);
    }

    #[test]
    fn fig7_demands_are_per_document() {
        let b = fig7();
        assert_eq!(b.demands.len(), 3);
        let d3 = b.demands.iter().find(|d| d.doc == DocId::new(3)).unwrap();
        assert_eq!(d3.origin, NodeId::new(2));
        assert_eq!(d3.rate, 90.0);
    }

    #[test]
    fn all_scenarios_have_valid_rates() {
        for s in all_scenarios() {
            s.spontaneous.validate_for(&s.tree).unwrap();
            assert!(s.total_demand() > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "scenario rates must match tree")]
    fn scenario_rejects_shape_mismatch() {
        Scenario::new("bad", fig2_tree(), RateVector::zeros(3));
    }
}
