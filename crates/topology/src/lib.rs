//! # ww-topology — routing-tree and graph topologies for WebWave
//!
//! WebWave places cache copies on the routing tree that connects a home
//! server to its clients. This crate generates those trees — deterministic
//! shapes ([`path`], [`star`], [`k_ary`], [`caterpillar`], [`broom`],
//! [`two_level`]), random families ([`random_tree_of_depth`],
//! [`random_pruefer`], [`random_attachment`]) and the paper's hand-crafted
//! example scenarios ([`paper::fig2a`] .. [`paper::fig7`]) — plus the
//! classic diffusion [`Graph`] topologies ([`ring`], [`hypercube`],
//! [`k_ary_n_cube`], [`de_bruijn`]) used by the GLE baselines of Section 2.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use ww_topology::{random_tree_of_depth, paper};
//!
//! // The paper's Section 5.1 regression uses "a random tree with depth 9".
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1997);
//! let tree = random_tree_of_depth(&mut rng, 256, 9);
//! assert_eq!(tree.height(), 9);
//!
//! // The barrier scenario of Figure 7.
//! let barrier = paper::fig7();
//! assert_eq!(barrier.tlb.as_slice(), &[90.0; 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod paper;
pub mod random;
pub mod trees;

pub use graph::{complete, de_bruijn, hypercube, k_ary_n_cube, ring, Graph};
pub use random::{
    random_attachment, random_pruefer, random_recursive_bounded, random_tree_of_depth,
};
pub use trees::{binary, broom, caterpillar, k_ary, path, star, two_level};
