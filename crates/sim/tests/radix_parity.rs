//! Property harness pinning [`RadixQueue`] behaviorally identical to
//! the `BinaryHeap`-backed [`EventQueue`] — the correctness argument
//! for swapping the radix queue into the packet engines: if every
//! observable (pop order, clock, length, processed count, peeks) is
//! equal under arbitrary operation scripts, the swap cannot change a
//! simulation by a single bit.

use proptest::prelude::*;
use ww_sim::{EventQueue, RadixQueue, SimQueue, SimTime};

/// One scripted queue operation. Times are offsets quantized to 0.25 s
/// so distinct ops frequently collide on the exact same `f64`
/// timestamp, exercising the tie-break path.
#[derive(Debug, Clone, Copy)]
enum Op {
    Schedule { slot: u8 },
    ScheduleKeyed { slot: u8, high_key: bool },
    AllocSeq,
    Pop,
    AdvanceTo { slot: u8 },
    FastForward { slot: u8 },
    FilterMap { modulus: u8 },
}

/// Decodes a raw `(selector, slot)` pair into an operation, weighting
/// schedules and pops heavily.
fn decode(selector: u8, slot: u8) -> Op {
    match selector % 16 {
        0..=5 => Op::Schedule { slot },
        6..=7 => Op::ScheduleKeyed {
            slot,
            high_key: selector & 1 == 0,
        },
        8 => Op::AllocSeq,
        9..=12 => Op::Pop,
        13 => Op::AdvanceTo { slot },
        14 => Op::FastForward { slot },
        _ => Op::FilterMap {
            modulus: 2 + slot % 3,
        },
    }
}

/// Runs one op against a queue. `i` (the op index) makes keyed
/// sequence numbers unique: duplicate `(time, seq)` keys would leave
/// even two `BinaryHeap` runs order-ambiguous, and the engines never
/// produce them. The high bit mimics the PDES inbound-message keyspace;
/// `high_key: false` exercises keys *below* previously popped ones (the
/// relaxed-monotonicity corner).
fn apply<Q: SimQueue<u32>>(q: &mut Q, op: Op, i: u64) -> (Option<(u64, u32)>, Option<u64>) {
    let offset = |slot: u8| SimTime::from_secs(slot as f64 * 0.25);
    match op {
        Op::Schedule { slot } => {
            q.schedule(q.now() + offset(slot), i as u32);
            (None, None)
        }
        Op::ScheduleKeyed { slot, high_key } => {
            let seq = if high_key {
                (1 << 63) | i
            } else {
                (1 << 40) | i
            };
            q.schedule_keyed(q.now() + offset(slot), seq, i as u32);
            (None, None)
        }
        Op::AllocSeq => (None, Some(q.alloc_seq())),
        Op::Pop => (q.pop().map(|(t, e)| (t.as_secs().to_bits(), e)), None),
        Op::AdvanceTo { slot } => {
            // Only valid up to the next pending event (the drivers
            // advance to merged timer fires, never past the queue head).
            let t = q.now() + offset(slot);
            let bound = q.peek_time().unwrap_or(t);
            // max(now): a FastForward may have coasted past the head.
            q.advance_to(t.min(bound).max(q.now()));
            (None, None)
        }
        Op::FastForward { slot } => {
            q.fast_forward(q.now() + offset(slot));
            (None, None)
        }
        Op::FilterMap { modulus } => {
            // Drop one residue class and rewrite the rest, like the
            // barrier-time arrival surgery.
            q.filter_map_events(|e| (e % modulus as u32 != 0).then_some(e.wrapping_add(1000)));
            (None, None)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary op scripts: every observable of the two queues stays
    /// equal after every step, and a final full drain pops identical
    /// `(time, event)` streams.
    #[test]
    fn radix_matches_heap_queue(
        raw in proptest::collection::vec((0u8..=255, 0u8..=31), 1..120),
    ) {
        let mut heap: EventQueue<u32> = EventQueue::new();
        let mut radix: RadixQueue<u32> = RadixQueue::new();
        for (i, &(selector, slot)) in raw.iter().enumerate() {
            let op = decode(selector, slot);
            let a = apply(&mut heap, op, i as u64);
            let b = apply(&mut radix, op, i as u64);
            prop_assert_eq!(a, b, "op {:?} diverged", op);
            prop_assert_eq!(heap.now(), SimQueue::<u32>::now(&radix));
            prop_assert_eq!(heap.len(), SimQueue::<u32>::len(&radix));
            prop_assert_eq!(heap.processed(), SimQueue::<u32>::processed(&radix));
            prop_assert_eq!(heap.peek_entry(), SimQueue::<u32>::peek_entry(&radix));
        }
        loop {
            let a = heap.pop();
            let b = SimQueue::<u32>::pop(&mut radix);
            prop_assert_eq!(a.map(|(t, e)| (t.as_secs().to_bits(), e)),
                            b.map(|(t, e)| (t.as_secs().to_bits(), e)));
            if a.is_none() { break; }
        }
    }

    /// Dense tie storm: many events on a tiny quantized time grid, so
    /// almost every pop decides by sequence number alone.
    #[test]
    fn radix_matches_heap_under_tie_storms(
        slots in proptest::collection::vec(0u8..4, 1..200),
    ) {
        let mut heap: EventQueue<u16> = EventQueue::new();
        let mut radix: RadixQueue<u16> = RadixQueue::new();
        for (i, &slot) in slots.iter().enumerate() {
            let t = SimTime::from_secs(slot as f64 * 0.5);
            heap.schedule(t, i as u16);
            radix.schedule(t, i as u16);
        }
        for _ in 0..slots.len() {
            prop_assert_eq!(heap.pop(), SimQueue::<u16>::pop(&mut radix));
        }
    }
}
