//! A radix-bucketed event queue for near-monotone schedules.
//!
//! [`RadixQueue`] is a drop-in alternative to the comparison-based
//! [`EventQueue`](crate::EventQueue) (both implement
//! [`SimQueue`]) built as a **monotone radix heap**: an
//! event's `(time, seq)` key is packed into one 128-bit integer — the
//! time's IEEE-754 bits above the sequence number, an order-preserving
//! encoding for the non-negative finite times
//! [`SimTime`] guarantees — and pending events live in
//! buckets indexed by the position of the highest bit in which their
//! key differs from the last key the queue normalized at (`last`).
//!
//! A discrete-event simulation pops in non-decreasing key order, which
//! is exactly the monotone access pattern radix heaps exploit:
//!
//! * **push** is O(1) — one comparison-free bucket index (a `xor` and a
//!   `leading_zeros`) and a `Vec::push`;
//! * **pop** takes from bucket 0 (which holds the minimum by
//!   invariant); when bucket 0 empties, the smallest non-empty bucket
//!   is redistributed against its own minimum, moving every entry to a
//!   strictly lower bucket — each entry can move at most 128 times over
//!   its lifetime, so pops are O(1) amortized for the near-monotone
//!   PDES pattern instead of the `BinaryHeap`'s O(log n) comparisons
//!   with cache-hostile sift paths.
//!
//! The classic radix-heap precondition (never insert below the last
//! extracted key) is *relaxed* here: a key at or below `last` simply
//! joins bucket 0, which is scanned linearly at pop. A conservative
//! PDES needs that corner — an inbound cross-shard event may carry a
//! content-derived tie-break key smaller than a same-timestamp key the
//! shard already popped — and such stragglers are rare and time-equal,
//! so the bucket-0 scan stays O(1) in practice. To keep that guarantee
//! against hostile fill orders (the pivot seeds from the *first*
//! insert, so a burst of earlier keys would otherwise pile up in
//! bucket 0 and degrade pops to a linear scan), an insert that grows
//! bucket 0 past a small constant triggers a full **rebase**: the
//! pivot drops to the global minimum and every entry is re-indexed.
//! A rebase is O(n), but each one must be preceded by a threshold's
//! worth of below-pivot inserts and leaves the pivot at the true
//! minimum, so a random fill pays a geometric handful of them and
//! steady-state churn pays none.
//!
//! # Example
//!
//! ```
//! use ww_sim::{RadixQueue, SimQueue, SimTime};
//!
//! let mut q = RadixQueue::new();
//! q.schedule(SimTime::from_secs(2.0), "late");
//! q.schedule(SimTime::from_secs(1.0), "early");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!((t.as_secs(), e), (1.0, "early"));
//! ```

use crate::{SimQueue, SimTime};

/// Bucket count: index 0 for keys at or below the pivot, plus one
/// bucket per possible highest-differing-bit position of a 128-bit key.
const BUCKETS: usize = 129;

/// Bucket-0 stragglers tolerated before a full rebase. Small enough to
/// keep the per-pop bucket-0 scan O(1), large enough that the O(n)
/// rebase stays rare (each one needs this many below-pivot inserts).
const BUCKET0_REBASE: usize = 64;

/// Packs `(time, seq)` into one radix key. For non-negative finite
/// `f64`, `to_bits` is strictly monotone, so integer comparison of the
/// packed key equals lexicographic `(time, seq)` comparison.
fn key_of(at: SimTime, seq: u64) -> u128 {
    ((at.as_secs().to_bits() as u128) << 64) | seq as u128
}

/// Unpacks the time half of a radix key.
fn time_of(key: u128) -> SimTime {
    SimTime::from_secs(f64::from_bits((key >> 64) as u64))
}

/// A monotone radix heap over `(time, seq)` keys — see the module docs.
///
/// Implements the same contract as [`EventQueue`](crate::EventQueue)
/// (the property tests in `tests/radix_parity.rs` pin the two
/// pop-for-pop identical), trading the heap's comparison sorting for
/// radix bucketing that is O(1) amortized on near-monotone schedules.
#[derive(Debug)]
pub struct RadixQueue<E> {
    /// `buckets[0]`: keys `<= last` (holds the minimum; scanned at
    /// pop). `buckets[b]` for `b >= 1`: keys whose highest bit
    /// differing from `last` is bit `b - 1`.
    buckets: Vec<Vec<(u128, E)>>,
    /// The pivot: the key the queue last normalized at. Non-decreasing
    /// while the queue is non-empty; rebased on insert-into-empty.
    last: u128,
    len: usize,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for RadixQueue<E> {
    fn default() -> Self {
        RadixQueue {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            last: 0,
            len: 0,
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }
}

impl<E> RadixQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        RadixQueue::default()
    }

    fn bucket_of(&self, key: u128) -> usize {
        if key <= self.last {
            0
        } else {
            // key != last, so the xor is non-zero: index in 1..=128.
            128 - (key ^ self.last).leading_zeros() as usize
        }
    }

    fn insert(&mut self, key: u128, event: E) {
        if self.len == 0 {
            // Rebase the pivot so the newcomer lands in bucket 0 and
            // the min-in-bucket-0 invariant holds trivially.
            self.last = key;
        }
        let b = self.bucket_of(key);
        self.buckets[b].push((key, event));
        self.len += 1;
        if b == 0 && self.buckets[0].len() > BUCKET0_REBASE {
            self.rebase();
        }
    }

    /// Drops the pivot to the global minimum and re-indexes every
    /// entry. O(n), triggered only when below-pivot inserts have grown
    /// bucket 0 past [`BUCKET0_REBASE`] — afterwards the pivot *is* the
    /// minimum, so bucket 0 shrinks back to the min entry alone and
    /// pops return to the O(1) scan.
    fn rebase(&mut self) {
        // Every bucket above 0 holds keys strictly above the pivot, so
        // the global minimum lives in bucket 0.
        let min = self.buckets[0]
            .iter()
            .map(|&(k, _)| k)
            .min()
            .expect("rebase runs only when bucket 0 overflows");
        if min == self.last {
            // Nothing would move (duplicate-key pile-up at the pivot);
            // re-indexing would loop the overflow check forever.
            return;
        }
        self.last = min;
        let mut drained: Vec<(u128, E)> = Vec::with_capacity(self.len);
        for b in 0..BUCKETS {
            drained.append(&mut self.buckets[b]);
        }
        for (key, event) in drained {
            let nb = self.bucket_of(key);
            self.buckets[nb].push((key, event));
        }
    }

    /// Restores the invariant "bucket 0 is non-empty whenever the queue
    /// is": finds the smallest non-empty bucket, rebases the pivot to
    /// its minimum key, and redistributes — every entry moves to a
    /// strictly lower bucket (the minimum itself to bucket 0), which is
    /// what makes pops O(1) amortized.
    fn normalize(&mut self) {
        if self.len == 0 || !self.buckets[0].is_empty() {
            return;
        }
        let b = (1..BUCKETS)
            .find(|&b| !self.buckets[b].is_empty())
            .expect("len > 0 with bucket 0 empty implies a higher bucket");
        let min = self.buckets[b]
            .iter()
            .map(|&(k, _)| k)
            .min()
            .expect("bucket is non-empty");
        // Every key in the bucket exceeds the old pivot, so the new
        // pivot only grows.
        self.last = min;
        let drained = std::mem::take(&mut self.buckets[b]);
        for (key, event) in drained {
            let nb = self.bucket_of(key);
            debug_assert!(nb < b, "redistribution must strictly descend");
            self.buckets[nb].push((key, event));
        }
    }

    /// Index of the minimum-key entry in bucket 0.
    fn min_in_bucket0(&self) -> Option<usize> {
        self.buckets[0]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(k, _))| k)
            .map(|(i, _)| i)
    }

    fn assert_not_past(&self, at: SimTime) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before current time {}",
            self.now
        );
    }
}

impl<E> SimQueue<E> for RadixQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        self.assert_not_past(at);
        let seq = SimQueue::<E>::alloc_seq(self);
        self.insert(key_of(at, seq), event);
    }

    fn schedule_after(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        self.assert_not_past(at);
        self.insert(key_of(at, seq), event);
    }

    fn alloc_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    fn peek_entry(&self) -> Option<(SimTime, u64)> {
        let i = self.min_in_bucket0()?;
        let (key, _) = self.buckets[0][i];
        Some((time_of(key), key as u64))
    }

    fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot advance to {t} before current time {}",
            self.now
        );
        self.now = t;
        self.processed += 1;
    }

    fn fast_forward(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let i = self.min_in_bucket0()?;
        let (key, event) = self.buckets[0].swap_remove(i);
        self.len -= 1;
        self.normalize();
        let at = time_of(key);
        self.now = at;
        self.processed += 1;
        Some((at, event))
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn len(&self) -> usize {
        self.len
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn filter_map_events(&mut self, mut f: impl FnMut(E) -> Option<E>) {
        // Drain in bucket order (0 first, which holds the minimum), so
        // the reinsertion's pivot rebase lands near the true minimum
        // and bucket 0 stays small.
        let mut drained: Vec<(u128, E)> = Vec::with_capacity(self.len);
        for b in 0..BUCKETS {
            drained.append(&mut self.buckets[b]);
        }
        self.len = 0;
        for (key, event) in drained {
            if let Some(event) = f(event) {
                self.insert(key, event);
            }
        }
        self.normalize();
    }

    fn extract_events(&mut self, mut f: impl FnMut(&E) -> bool) -> Vec<(SimTime, u64, E)> {
        // Same drain-and-reinsert shape as `filter_map_events`, but
        // matching entries leave the queue entirely, carrying their
        // packed keys out so the caller can replay them in delivery
        // order. The low 64 key bits are the seq, matching `peek_entry`.
        let mut drained: Vec<(u128, E)> = Vec::with_capacity(self.len);
        for b in 0..BUCKETS {
            drained.append(&mut self.buckets[b]);
        }
        self.len = 0;
        let mut extracted: Vec<(u128, E)> = Vec::new();
        for (key, event) in drained {
            if f(&event) {
                extracted.push((key, event));
            } else {
                self.insert(key, event);
            }
        }
        self.normalize();
        // Radix keys order exactly as (time, seq) for the non-negative
        // monotone times this queue accepts.
        extracted.sort_unstable_by_key(|&(key, _)| key);
        extracted
            .into_iter()
            .map(|(key, event)| (time_of(key), key as u64, event))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = RadixQueue::new();
        q.schedule(SimTime::from_secs(3.0), 'c');
        q.schedule(SimTime::from_secs(1.0), 'a');
        q.schedule(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = RadixQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = RadixQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = RadixQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn keyed_straggler_below_the_pivot_still_pops_first() {
        // The relaxed-monotonicity corner: after popping a high
        // tie-break key, an insert at the same time with a *lower* key
        // (a cross-shard message with a smaller content-derived key)
        // must still come out before later times.
        let mut q = RadixQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule_keyed(t, 1 << 60, "high");
        q.schedule(SimTime::from_secs(2.0), "later");
        assert_eq!(q.pop().unwrap().1, "high");
        q.schedule_keyed(t, 7, "straggler");
        assert_eq!(q.pop().unwrap().1, "straggler");
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn filter_map_keeps_time_seq_order_of_survivors() {
        let mut q = RadixQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..6 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_secs(0.5), 100);
        q.filter_map_events(|e| (e % 2 == 0).then_some(e * 10));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1000, 0, 20, 40]);
    }

    #[test]
    fn filter_map_does_not_rewind_the_seq_counter() {
        let mut q = RadixQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, 'a');
        q.schedule(t, 'b');
        q.filter_map_events(|e| (e == 'b').then_some(e));
        q.schedule(t, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['b', 'c']);
    }

    #[test]
    fn processed_counter_and_advance() {
        let mut q = RadixQueue::new();
        q.schedule(SimTime::from_secs(1.0), ());
        q.pop();
        q.advance_to(SimTime::from_secs(2.0));
        assert_eq!(q.processed(), 2);
        q.fast_forward(SimTime::from_secs(3.0));
        assert_eq!(q.processed(), 2);
        assert_eq!(q.now(), SimTime::from_secs(3.0));
    }

    #[test]
    fn random_fill_below_first_key_stays_ordered() {
        // The rebase regression: the pivot seeds from the FIRST insert,
        // so a fill whose later keys mostly fall below it used to pile
        // everything into bucket 0 (degrading pops to an O(n) scan).
        // The fill must still pop in exact (time, seq) order, and the
        // rebases it triggers must not disturb that order.
        let mut q = RadixQueue::new();
        let mut lcg = 0x9E3779B97F4A7C15u64;
        let mut step = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as f64 / (1u64 << 31) as f64
        };
        // First key near the top of the range, then 2000 random keys —
        // about half land below the pivot, forcing many rebases.
        q.schedule(SimTime::from_secs(0.9), 0u32);
        let mut expect: Vec<(SimTime, u64)> = vec![(SimTime::from_secs(0.9), 0)];
        for i in 1..=2000u32 {
            let t = SimTime::from_secs(step());
            q.schedule(t, i);
            expect.push((t, i as u64));
        }
        expect.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        for (t, seq) in expect {
            let (got_t, got_e) = q.pop().expect("queue holds every fill");
            assert_eq!((got_t, got_e as u64), (t, seq));
        }
        assert!(q.pop().is_none());
    }

    #[test]
    fn long_monotone_churn_stays_ordered() {
        // Hold-and-churn: keep ~256 pending, pop one / push one at
        // now + pseudo-random delay; output times must be sorted.
        let mut q = RadixQueue::new();
        let mut lcg = 1u64;
        let mut step = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..256 {
            let d = step();
            q.schedule(SimTime::from_secs(d), ());
        }
        let mut prev = SimTime::ZERO;
        for _ in 0..10_000 {
            let (t, ()) = q.pop().unwrap();
            assert!(t >= prev);
            prev = t;
            q.schedule(t + SimTime::from_secs(step() + 1e-9), ());
        }
    }
}
