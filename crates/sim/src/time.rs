//! Simulation time.
//!
//! [`SimTime`] is a totally ordered wrapper over non-negative `f64`
//! seconds. Event queues need `Ord`; raw `f64` only offers `PartialOrd`,
//! so construction rejects NaN once and ordering is then total.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in seconds from simulation start.
///
/// # Example
///
/// ```
/// use ww_sim::SimTime;
/// let a = SimTime::from_secs(1.5);
/// let b = a + SimTime::from_secs(0.5);
/// assert_eq!(b.as_secs(), 2.0);
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, infinite, or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "sim time must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Creates a time from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimTime::from_secs`].
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_secs(ms / 1000.0)
    }

    /// Creates a time from microseconds.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SimTime::from_secs`].
    pub fn from_micros(us: f64) -> Self {
        SimTime::from_secs(us / 1_000_000.0)
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Saturating subtraction: `max(self - other, 0)`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime((self.0 - other.0).max(0.0))
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so this cannot fail.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`SimTime::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_millis(1500.0).as_secs(), 1.5);
        assert_eq!(SimTime::from_micros(2_000_000.0).as_secs(), 2.0);
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn total_order() {
        let mut v = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2.0);
        let b = SimTime::from_secs(0.5);
        assert_eq!((a + b).as_secs(), 2.5);
        assert_eq!((a - b).as_secs(), 1.5);
        assert_eq!(b.saturating_sub(a).as_secs(), 0.0);
    }

    #[test]
    #[should_panic]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1.0) - SimTime::from_secs(2.0);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_secs(0.25).to_string(), "0.250000s");
    }
}
