//! The queue contract shared by the kernel's event queues.
//!
//! [`SimQueue`] abstracts the full [`EventQueue`](crate::EventQueue)
//! surface the simulation drivers use, so a driver can be generic over
//! its pending-event structure: the comparison-based `BinaryHeap`
//! queue, or the radix-bucketed [`RadixQueue`](crate::RadixQueue) tuned
//! for the near-monotone access pattern of a conservative PDES. Every
//! implementation must deliver events in exactly `(time, seq)` order —
//! the parity property tests in `tests/radix_parity.rs` pin the two
//! implementations pop-for-pop identical, so swapping one for the other
//! cannot change a single bit of a simulation.

use crate::SimTime;

/// A deterministic discrete-event queue: events fire in `(time, seq)`
/// order, `seq` ties broken by a queue-owned counter unless the caller
/// supplies an explicit key.
///
/// The semantics of each method are specified on
/// [`EventQueue`](crate::EventQueue), the reference implementation;
/// panics (scheduling or advancing into the past) are part of the
/// contract.
pub trait SimQueue<E> {
    /// Schedules `event` at `at` under the next counter-allocated `seq`.
    fn schedule(&mut self, at: SimTime, event: E);

    /// Schedules `event` to fire `delay` after the current time.
    fn schedule_after(&mut self, delay: SimTime, event: E);

    /// Schedules `event` at `at` under the explicit tie-break key `seq`.
    fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E);

    /// Allocates the next tie-breaking sequence number.
    fn alloc_seq(&mut self) -> u64;

    /// The `(time, seq)` pair of the earliest pending event.
    fn peek_entry(&self) -> Option<(SimTime, u64)>;

    /// The timestamp of the earliest pending event.
    fn peek_time(&self) -> Option<SimTime> {
        self.peek_entry().map(|(t, _)| t)
    }

    /// Advances the clock to `t`, counting one processed event on
    /// behalf of an external schedule.
    fn advance_to(&mut self, t: SimTime);

    /// Coasts the clock to `t` without counting a processed event.
    fn fast_forward(&mut self, t: SimTime);

    /// Pops the earliest event, advancing the clock to its timestamp.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Current simulation time.
    fn now(&self) -> SimTime;

    /// Number of events waiting.
    fn len(&self) -> usize;

    /// `true` when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events processed so far.
    fn processed(&self) -> u64;

    /// Rewrites pending events in place, keeping survivors' `(time,
    /// seq)` keys and never rewinding the sequence counter.
    fn filter_map_events(&mut self, f: impl FnMut(E) -> Option<E>);

    /// Removes every pending event matching `f` and returns them as
    /// `(time, key, event)` sorted by `(time, key)` — the exact order
    /// in which the queue would have delivered them. Non-matching
    /// events keep their `(time, seq)` keys; the sequence counter and
    /// the processed count are untouched. This is the surgical sibling
    /// of [`filter_map_events`](SimQueue::filter_map_events), used when
    /// pending events must *move* to another queue (shard migration)
    /// rather than be rewritten in place.
    fn extract_events(&mut self, f: impl FnMut(&E) -> bool) -> Vec<(SimTime, u64, E)>;
}

impl<E> SimQueue<E> for crate::EventQueue<E> {
    fn schedule(&mut self, at: SimTime, event: E) {
        crate::EventQueue::schedule(self, at, event);
    }

    fn schedule_after(&mut self, delay: SimTime, event: E) {
        crate::EventQueue::schedule_after(self, delay, event);
    }

    fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        crate::EventQueue::schedule_keyed(self, at, seq, event);
    }

    fn alloc_seq(&mut self) -> u64 {
        crate::EventQueue::alloc_seq(self)
    }

    fn peek_entry(&self) -> Option<(SimTime, u64)> {
        crate::EventQueue::peek_entry(self)
    }

    fn peek_time(&self) -> Option<SimTime> {
        crate::EventQueue::peek_time(self)
    }

    fn advance_to(&mut self, t: SimTime) {
        crate::EventQueue::advance_to(self, t);
    }

    fn fast_forward(&mut self, t: SimTime) {
        crate::EventQueue::fast_forward(self, t);
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        crate::EventQueue::pop(self)
    }

    fn now(&self) -> SimTime {
        crate::EventQueue::now(self)
    }

    fn len(&self) -> usize {
        crate::EventQueue::len(self)
    }

    fn is_empty(&self) -> bool {
        crate::EventQueue::is_empty(self)
    }

    fn processed(&self) -> u64 {
        crate::EventQueue::processed(self)
    }

    fn filter_map_events(&mut self, f: impl FnMut(E) -> Option<E>) {
        crate::EventQueue::filter_map_events(self, f);
    }

    fn extract_events(&mut self, f: impl FnMut(&E) -> bool) -> Vec<(SimTime, u64, E)> {
        crate::EventQueue::extract_events(self, f)
    }
}
