//! Wheel-style scheduling for strictly periodic event streams.
//!
//! A discrete-event simulation of WebWave carries two kinds of events:
//! *irregular* ones (Poisson arrivals, packet hops, message deliveries)
//! and *strictly periodic* ones (each node's gossip timer and diffusion
//! timer). Keeping the periodic streams in the binary heap makes every
//! heap operation pay `O(log total)` for events whose firing order is
//! actually **fixed and cyclic**: all members of a stream share one
//! period, so once sorted by phase they fire forever in the same rotation.
//!
//! [`TimerRing`] exploits that: it stores one `next_fire` per member and a
//! rotation deque. `peek`/`pop`/`rearm` are all `O(1)` (insert is
//! `O(members)` once at setup), and the main heap stays smaller — so the
//! *irregular* events get cheaper too.
//!
//! To merge ring events with heap events deterministically, every fire
//! carries a sequence number allocated from the owning
//! [`EventQueue`](crate::EventQueue) (see
//! [`EventQueue::alloc_seq`](crate::EventQueue::alloc_seq)); comparing
//! `(time, seq)` across sources reproduces exactly the total order a
//! single all-in-one heap would have produced — which is what keeps
//! simulation traces identical to the pre-ring implementation.

use crate::SimTime;
use std::collections::VecDeque;

/// A ring of recurring timers sharing one period.
///
/// # Example
///
/// ```
/// use ww_sim::{SimTime, TimerRing};
///
/// let mut ring = TimerRing::new(SimTime::from_secs(1.0), 2);
/// ring.insert(0, SimTime::from_secs(0.25), 0);
/// ring.insert(1, SimTime::from_secs(0.75), 1);
/// let (t, _seq, member) = ring.peek().unwrap();
/// assert_eq!((t.as_secs(), member), (0.25, 0));
/// let (t, member) = ring.pop().unwrap();
/// ring.rearm(member, 2); // next fire at t + period = 1.25
/// assert_eq!(ring.peek().unwrap().0.as_secs(), 0.75);
/// let _ = t;
/// ```
#[derive(Debug, Clone)]
pub struct TimerRing {
    period: SimTime,
    /// Next fire time per member.
    next: Vec<SimTime>,
    /// Sequence number of the pending fire per member (merge tie-break).
    seq: Vec<u64>,
    /// Members in firing order. Because all members share `period`, a
    /// rearmed member always belongs at the back, keeping this sorted by
    /// `(next, seq)` without any per-event sorting.
    order: VecDeque<usize>,
}

impl TimerRing {
    /// Creates a ring with the given `period` for up to `members` members
    /// (ids `0..members`).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: SimTime, members: usize) -> Self {
        assert!(period > SimTime::ZERO, "period must be positive");
        TimerRing {
            period,
            next: vec![SimTime::ZERO; members],
            seq: vec![0; members],
            order: VecDeque::with_capacity(members),
        }
    }

    /// The shared period of all members.
    pub fn period(&self) -> SimTime {
        self.period
    }

    /// Arms `member` for its first fire at `first_fire` with merge
    /// sequence `seq`. Members may be inserted in any order.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range or already armed.
    pub fn insert(&mut self, member: usize, first_fire: SimTime, seq: u64) {
        assert!(member < self.next.len(), "member out of range");
        assert!(
            !self.order.contains(&member),
            "member {member} is already armed"
        );
        self.next[member] = first_fire;
        self.seq[member] = seq;
        // Keep `order` sorted by (next, seq). Scanning from the back makes
        // the common setup pattern — members inserted in ascending phase
        // order — O(1) per insert instead of a full front scan.
        let pos = self
            .order
            .iter()
            .rposition(|&m| (self.next[m], self.seq[m]) < (first_fire, seq))
            .map_or(0, |p| p + 1);
        self.order.insert(pos, member);
    }

    /// The next fire as `(time, seq, member)`, if any member is armed.
    pub fn peek(&self) -> Option<(SimTime, u64, usize)> {
        self.order.front().map(|&m| (self.next[m], self.seq[m], m))
    }

    /// Takes the front fire, leaving its member *disarmed*; the caller
    /// must [`rearm`](TimerRing::rearm) it (typically at the point in the
    /// event handler where the old code rescheduled the timer, so merge
    /// sequence numbers match the historical all-heap order).
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let m = self.order.pop_front()?;
        Some((self.next[m], m))
    }

    /// Re-arms `member` one period after its previous fire, with merge
    /// sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range or still armed.
    pub fn rearm(&mut self, member: usize, seq: u64) {
        assert!(member < self.next.len(), "member out of range");
        debug_assert!(
            !self.order.contains(&member),
            "member {member} is already armed"
        );
        self.next[member] = self.next[member] + self.period;
        self.seq[member] = seq;
        self.order.push_back(member);
        debug_assert!(
            self.order.len() < 2
                || (0..self.order.len() - 1).all(|i| {
                    let (a, b) = (self.order[i], self.order[i + 1]);
                    (self.next[a], self.seq[a]) <= (self.next[b], self.seq[b])
                }),
            "ring rotation out of order"
        );
    }

    /// Grows the ring by one (disarmed) member, returning its id. Arm it
    /// with [`TimerRing::insert`] — a joining node's first fire is set by
    /// the driver at the barrier it joins at.
    pub fn add_member(&mut self) -> usize {
        self.next.push(SimTime::ZERO);
        self.seq.push(0);
        self.next.len() - 1
    }

    /// Removes `member` — armed or not — compacting member ids by
    /// swap-remove: the highest id is renumbered into the vacated slot,
    /// keeping its pending fire time, sequence number, and place in the
    /// rotation. This mirrors exactly the id compaction dense per-node
    /// tables apply when a node leaves the simulated world.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn swap_remove_member(&mut self, member: usize) {
        assert!(member < self.next.len(), "member out of range");
        let last = self.next.len() - 1;
        if let Some(pos) = self.order.iter().position(|&m| m == member) {
            self.order.remove(pos);
        }
        self.next.swap_remove(member);
        self.seq.swap_remove(member);
        if member != last {
            for m in self.order.iter_mut() {
                if *m == last {
                    *m = member;
                }
            }
        }
    }

    /// The pending `(fire time, merge seq)` of `member`, or `None` if
    /// the member is currently disarmed (popped but not yet rearmed).
    /// Used by shard migration, which must carry a node's pending timer
    /// fire — phase included — into its new shard's ring.
    ///
    /// # Panics
    ///
    /// Panics if `member` is out of range.
    pub fn fire_entry(&self, member: usize) -> Option<(SimTime, u64)> {
        assert!(member < self.next.len(), "member out of range");
        self.order
            .contains(&member)
            .then(|| (self.next[member], self.seq[member]))
    }

    /// Total member count (armed or not).
    pub fn members(&self) -> usize {
        self.next.len()
    }

    /// Number of armed members.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` when no member is armed.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_phase_order_and_rotates() {
        let mut ring = TimerRing::new(SimTime::from_secs(1.0), 3);
        // Insert out of phase order; ring sorts at setup.
        ring.insert(2, SimTime::from_secs(0.9), 2);
        ring.insert(0, SimTime::from_secs(0.1), 0);
        ring.insert(1, SimTime::from_secs(0.5), 1);
        let mut fired = Vec::new();
        for seq in 3..12 {
            let (t, m) = ring.pop().unwrap();
            fired.push((t.as_secs(), m));
            ring.rearm(m, seq);
        }
        assert_eq!(
            fired,
            vec![
                (0.1, 0),
                (0.5, 1),
                (0.9, 2),
                (1.1, 0),
                (1.5, 1),
                (1.9, 2),
                (2.1, 0),
                (2.5, 1),
                (2.9, 2),
            ]
        );
    }

    #[test]
    fn equal_phases_keep_insertion_seq_order() {
        let mut ring = TimerRing::new(SimTime::from_secs(1.0), 2);
        let t0 = SimTime::from_secs(0.5);
        ring.insert(1, t0, 7);
        ring.insert(0, t0, 9);
        // Lower seq fires first on ties.
        assert_eq!(ring.pop().unwrap().1, 1);
        ring.rearm(1, 10);
        assert_eq!(ring.pop().unwrap().1, 0);
        ring.rearm(0, 11);
        // Rotation preserved.
        assert_eq!(ring.pop().unwrap().1, 1);
    }

    #[test]
    fn peek_matches_pop() {
        let mut ring = TimerRing::new(SimTime::from_millis(250.0), 1);
        ring.insert(0, SimTime::from_millis(100.0), 4);
        let (pt, pseq, pm) = ring.peek().unwrap();
        let (t, m) = ring.pop().unwrap();
        assert_eq!((pt, pm), (t, m));
        assert_eq!(pseq, 4);
        assert!(ring.is_empty());
        ring.rearm(0, 5);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.peek().unwrap().0, SimTime::from_millis(350.0));
    }

    #[test]
    fn members_join_mid_rotation() {
        let mut ring = TimerRing::new(SimTime::from_secs(1.0), 2);
        ring.insert(0, SimTime::from_secs(0.2), 0);
        ring.insert(1, SimTime::from_secs(0.7), 1);
        let (_, m) = ring.pop().unwrap();
        ring.rearm(m, 2); // member 0 next fires at 1.2
        let newcomer = ring.add_member();
        assert_eq!(newcomer, 2);
        assert_eq!(ring.members(), 3);
        // First fire between the existing members' next fires.
        ring.insert(newcomer, SimTime::from_secs(0.9), 3);
        let fired: Vec<usize> = (4..8)
            .map(|seq| {
                let (_, m) = ring.pop().unwrap();
                ring.rearm(m, seq);
                m
            })
            .collect();
        assert_eq!(fired, vec![1, 2, 0, 1]);
    }

    #[test]
    fn swap_remove_member_renumbers_last() {
        let mut ring = TimerRing::new(SimTime::from_secs(1.0), 3);
        ring.insert(0, SimTime::from_secs(0.1), 0);
        ring.insert(1, SimTime::from_secs(0.5), 1);
        ring.insert(2, SimTime::from_secs(0.9), 2);
        // Member 1 leaves; member 2 takes id 1, keeping its 0.9 fire.
        ring.swap_remove_member(1);
        assert_eq!(ring.members(), 2);
        let (t, m) = ring.pop().unwrap();
        assert_eq!((t.as_secs(), m), (0.1, 0));
        ring.rearm(0, 3);
        let (t, m) = ring.pop().unwrap();
        assert_eq!((t.as_secs(), m), (0.9, 1));
        ring.rearm(1, 4);
        // Rotation continues with the renumbered member.
        let (t, m) = ring.pop().unwrap();
        assert_eq!((t.as_secs(), m), (1.1, 0));
    }

    #[test]
    fn swap_remove_last_member_truncates() {
        let mut ring = TimerRing::new(SimTime::from_secs(1.0), 2);
        ring.insert(0, SimTime::from_secs(0.1), 0);
        ring.insert(1, SimTime::from_secs(0.5), 1);
        ring.swap_remove_member(1);
        assert_eq!(ring.members(), 1);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.pop().unwrap().1, 0);
    }

    #[test]
    #[should_panic(expected = "already armed")]
    fn double_insert_panics() {
        let mut ring = TimerRing::new(SimTime::from_secs(1.0), 1);
        ring.insert(0, SimTime::ZERO, 0);
        ring.insert(0, SimTime::ZERO, 1);
    }
}
