//! Deterministic random-number streams.
//!
//! Every stochastic component of a simulation (per-node arrival processes,
//! link jitter, workload shuffles) gets its own independent stream forked
//! from one master seed, so runs are reproducible regardless of the order
//! in which components consume randomness.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A forkable deterministic RNG.
///
/// # Example
///
/// ```
/// use ww_sim::SimRng;
/// use rand::Rng;
///
/// let master = SimRng::seed(42);
/// let mut a1 = master.fork(1);
/// let mut a2 = master.fork(1);
/// let mut b = master.fork(2);
/// let (x1, x2): (u64, u64) = (a1.gen(), a2.gen());
/// assert_eq!(x1, x2);          // same stream id => same stream
/// assert_ne!(x1, b.gen::<u64>()); // different stream id => independent
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

impl SimRng {
    /// Creates the master RNG from a seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Forks an independent stream identified by `stream`.
    ///
    /// Forking is a pure function of `(master seed, stream)` — it does not
    /// consume state from the parent, so fork order never matters.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mixing of seed and stream id.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng {
            seed: z,
            inner: StdRng::seed_from_u64(z),
        }
    }

    /// The seed this stream was created from.
    pub fn stream_seed(&self) -> u64 {
        self.seed
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// Samples an exponentially distributed delay with the given mean, never
/// returning exactly zero.
///
/// # Panics
///
/// Panics if `mean` is not positive and finite.
pub fn exp_delay<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let master = SimRng::seed(1);
        let mut m2 = SimRng::seed(1);
        let _ = m2.next_u64(); // consume parent state
        let mut f1 = master.fork(5);
        let mut f2 = m2.fork(5);
        assert_eq!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn distinct_streams_differ() {
        let master = SimRng::seed(3);
        let x: u64 = master.fork(1).next_u64();
        let y: u64 = master.fork(2).next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn exp_delay_positive_and_mean_correct() {
        let mut rng = SimRng::seed(9);
        let n = 100_000;
        let mean = 0.02;
        let sum: f64 = (0..n).map(|_| exp_delay(&mut rng, mean)).sum();
        let observed = sum / n as f64;
        assert!((observed - mean).abs() < 0.001, "observed {observed}");
    }

    #[test]
    #[should_panic(expected = "mean must be positive")]
    fn exp_delay_rejects_bad_mean() {
        let mut rng = SimRng::seed(1);
        let _ = exp_delay(&mut rng, 0.0);
    }
}
