//! The discrete-event scheduler.
//!
//! [`EventQueue`] is a deterministic priority queue of `(SimTime, E)`
//! pairs: events fire in time order, with FIFO tie-breaking for equal
//! timestamps (insertion order), so a simulation is a pure function of its
//! inputs and seed.

use crate::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An entry in the queue; ordering is (time, sequence).
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// # Example
///
/// ```
/// use ww_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), "late");
/// q.schedule(SimTime::from_secs(1.0), "early");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (1.0, "early"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (events cannot fire
    /// in the past).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before current time {}",
            self.now
        );
        let seq = self.alloc_seq();
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Allocates the next tie-breaking sequence number from the queue's
    /// global counter.
    ///
    /// External recurring schedules (see [`crate::TimerRing`]) draw their
    /// sequence numbers here, so their fires merge with heap events in
    /// exactly the `(time, seq)` order one combined heap would produce.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// The `(time, seq)` pair of the next heap event, for merging against
    /// external schedules.
    pub fn peek_entry(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|Reverse(e)| (e.at, e.seq))
    }

    /// Advances the clock to `t` and counts one processed event, on
    /// behalf of an event consumed from an external schedule (a
    /// [`crate::TimerRing`]). Keeps [`EventQueue::now`] and
    /// [`EventQueue::processed`] identical to what an all-heap simulation
    /// would report.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot advance to {t} before current time {}",
            self.now
        );
        self.now = t;
        self.processed += 1;
    }

    /// Schedules `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Schedules `event` at `at` with an explicit tie-breaking sequence
    /// number instead of drawing one from the queue's counter.
    ///
    /// A sharded simulation uses this for messages arriving from other
    /// shards: the sender's `(shard, counter)` pair is folded into a key
    /// above every locally allocated number, so the merged order at equal
    /// timestamps is a pure function of message content — never of the
    /// wall-clock order in which channels were drained.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_keyed(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at} before current time {}",
            self.now
        );
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Rewrites the pending events in place: every event is passed to
    /// `f`, which returns the (possibly modified) event to keep or
    /// `None` to drop it. Kept events retain their original
    /// `(time, seq)` keys, so the relative firing order of survivors is
    /// untouched; the sequence counter is not rewound, so later
    /// schedules still tie-break after everything that ever existed.
    ///
    /// This is the heap surgery behind barrier-time world mutations: a
    /// churn or workload-shift rebuild drops stale arrival events (their
    /// streams are re-resolved) and renumbers node references in
    /// surviving in-flight messages.
    pub fn filter_map_events(&mut self, mut f: impl FnMut(E) -> Option<E>) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter_map(|Reverse(e)| {
                f(e.event).map(|event| {
                    Reverse(Entry {
                        at: e.at,
                        seq: e.seq,
                        event,
                    })
                })
            })
            .collect();
    }

    /// Removes every pending event matching `f`, returning the matches
    /// as `(time, seq, event)` sorted by `(time, seq)` — the order this
    /// queue would have delivered them in. Survivors keep their keys;
    /// neither the sequence counter nor the processed count moves. See
    /// [`SimQueue::extract_events`](crate::SimQueue::extract_events).
    pub fn extract_events(&mut self, mut f: impl FnMut(&E) -> bool) -> Vec<(SimTime, u64, E)> {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut extracted = Vec::new();
        self.heap = entries
            .into_iter()
            .filter_map(|Reverse(e)| {
                if f(&e.event) {
                    extracted.push((e.at, e.seq, e.event));
                    None
                } else {
                    Some(Reverse(e))
                }
            })
            .collect();
        extracted.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        extracted
    }

    /// Coasts the clock forward to `t` without consuming an event: the
    /// simulation observed the interval `(now, t]` and nothing happened.
    /// Unlike [`EventQueue::advance_to`] this does not count a processed
    /// event. No-op when `t` is not ahead of the clock.
    pub fn fast_forward(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Drains and processes events through `handler` until the queue is
    /// empty or `deadline` passes; events after the deadline stay queued.
    /// The handler may schedule further events.
    ///
    /// Returns the number of events processed by this call.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E),
    {
        let start = self.processed;
        while let Some(at) = self.peek_time() {
            if at > deadline {
                break;
            }
            let (t, e) = self.pop().expect("peeked event exists");
            handler(self, t, e);
        }
        self.processed - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 'c');
        q.schedule(SimTime::from_secs(1.0), 'a');
        q.schedule(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn equal_times_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), "first");
        q.pop();
        q.schedule_after(SimTime::from_secs(0.5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.as_secs(), 1.5);
    }

    #[test]
    fn run_until_respects_deadline_and_cascades() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1u32);
        q.schedule(SimTime::from_secs(10.0), 99u32);
        let mut seen = Vec::new();
        let n = q.run_until(SimTime::from_secs(5.0), |q, t, e| {
            seen.push(e);
            // Cascade: each handled event < 4 schedules a successor 1s later.
            if e < 4 {
                q.schedule(t + SimTime::from_secs(1.0), e + 1);
            }
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(n, 4);
        assert_eq!(q.len(), 1); // the t=10 event remains
    }

    #[test]
    fn filter_map_keeps_time_seq_order_of_survivors() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..6 {
            q.schedule(t, i);
        }
        q.schedule(SimTime::from_secs(0.5), 100);
        // Drop odd events, rewrite the rest.
        q.filter_map_events(|e| (e % 2 == 0).then_some(e * 10));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1000, 0, 20, 40]);
    }

    #[test]
    fn filter_map_does_not_rewind_the_seq_counter() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        q.schedule(t, 'a');
        q.schedule(t, 'b');
        q.filter_map_events(|e| (e == 'b').then_some(e));
        // A later schedule at the same time still fires after survivors.
        q.schedule(t, 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['b', 'c']);
    }

    #[test]
    fn processed_counter() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        q.pop();
        q.pop();
        assert_eq!(q.processed(), 2);
    }
}
