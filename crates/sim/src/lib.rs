//! # ww-sim — deterministic discrete-event simulation kernel
//!
//! The packet-level WebWave protocol (crate `ww-core`, module
//! `distributed`) runs on this kernel: a total-order event queue
//! ([`EventQueue`]), a validated simulation clock ([`SimTime`]) and
//! forkable deterministic randomness ([`SimRng`]). Simulations are pure
//! functions of their inputs and master seed — equal seeds replay equal
//! histories, which the failure-injection tests rely on.
//!
//! # Example
//!
//! ```
//! use ww_sim::{EventQueue, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(10.0), Ev::Ping(0));
//! let mut count = 0;
//! q.run_until(SimTime::from_secs(1.0), |q, t, Ev::Ping(i)| {
//!     count += 1;
//!     if i < 4 {
//!         q.schedule(t + SimTime::from_millis(10.0), Ev::Ping(i + 1));
//!     }
//! });
//! assert_eq!(count, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod queue;
pub mod radix;
pub mod rng;
pub mod time;
pub mod wheel;

pub use engine::EventQueue;
pub use queue::SimQueue;
pub use radix::RadixQueue;
pub use rng::{exp_delay, SimRng};
pub use time::SimTime;
pub use wheel::TimerRing;
