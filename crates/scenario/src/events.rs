//! The event-driven dynamics layer: churn, failures, and document
//! lifecycle events scheduled against a running scenario.
//!
//! A [`ScenarioSpec`](crate::ScenarioSpec) may carry an [`EventsSpec`] —
//! a round-stamped schedule of world changes the [`Runner`](crate::Runner)
//! interleaves with engine rounds:
//!
//! * **Churn** — [`NodeJoin`](EventKindSpec::NodeJoin) /
//!   [`NodeLeave`](EventKindSpec::NodeLeave): cache servers enter and
//!   leave the routing tree (ids compact by swap-remove, exactly as
//!   [`ww_model::Tree::remove_leaf`] documents);
//! * **Failures** — [`LinkFail`](EventKindSpec::LinkFail) /
//!   [`LinkHeal`](EventKindSpec::LinkHeal): the *control* link between a
//!   node and its parent dies (no gossip, diffusion, copy pushes, or
//!   tunneling across it) while the data path — requests flowing up the
//!   tree — stays alive;
//! * **Document lifecycle** — [`DocPublish`](EventKindSpec::DocPublish)
//!   adds demand for a (possibly brand-new) document at an origin node;
//!   [`DocUpdate`](EventKindSpec::DocUpdate) re-publishes one, revoking
//!   every cached copy outside the home server so the new version must
//!   re-diffuse;
//! * **Workload shifts** —
//!   [`WorkloadShift`](EventKindSpec::WorkloadShift): hot-set rotation /
//!   Zipf re-skew via a fresh rates and/or doc-mix generator resolved
//!   against the *current* (possibly churned) topology.
//!
//! Spec-level events carry raw indices and generator specs; the runner
//! resolves them at fire time into a concrete [`Event`] and hands it to
//! [`Engine::apply`](crate::Engine::apply). Engines that cannot honor an
//! event reject it with a typed [`EventError`] — never a panic — and the
//! runner records the rejection in the run's [`EventMarker`]s.

use crate::spec::{DocMixSpec, RatesSpec};
use std::fmt;
use ww_model::{DocId, NodeId, RateVector};
use ww_workload::DocMix;

/// Default [`EventsSpec::recovery_threshold`] when the spec omits it.
pub const DEFAULT_RECOVERY_THRESHOLD: f64 = 1e-3;

/// The dynamics block of a scenario: a schedule plus reporting knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct EventsSpec {
    /// The events, in non-decreasing `round` order (the JSON parser
    /// rejects unsorted schedules).
    pub schedule: Vec<EventSpec>,
    /// Convergence-metric value at or below which a post-event system
    /// counts as re-converged; drives each marker's
    /// [`recovery_rounds`](EventMarker::recovery_rounds).
    pub recovery_threshold: f64,
    /// When `true`, the runner wraps every same-round event group in
    /// [`Engine::barrier_begin`](crate::Engine::barrier_begin) /
    /// [`Engine::barrier_commit`](crate::Engine::barrier_commit), so
    /// engines with batch support pay one oracle/queue refresh per
    /// barrier instead of one per event. Default `false`: existing
    /// scenarios replay the per-event path, bit-identical to earlier
    /// builds.
    pub batched_barriers: bool,
}

/// One scheduled event: fires after the engine has executed `round`
/// rounds (`round: 0` fires before any stepping).
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// The engine-round count at which the event fires.
    pub round: usize,
    /// What happens.
    pub kind: EventKindSpec,
}

/// Spec-level event payloads. Node and document references are plain
/// indices validated at fire time against the *current* (churned)
/// topology — authors must account for the swap-remove renumbering
/// earlier `node_leave` events apply (see `docs/dynamics.md`).
#[derive(Debug, Clone, PartialEq)]
pub enum EventKindSpec {
    /// A cache server joins as a new leaf under `parent` with `rate`
    /// req/s of spontaneous demand. The newcomer takes the next id.
    NodeJoin {
        /// Parent node of the new leaf.
        parent: usize,
        /// Spontaneous demand the newcomer brings.
        rate: f64,
    },
    /// A leaf departs; its demand re-homes to its parent and the highest
    /// id is renumbered into the vacated slot (swap-remove compaction).
    NodeLeave {
        /// The departing leaf.
        node: usize,
    },
    /// The control link between `node` and its parent fails.
    LinkFail {
        /// Child endpoint of the failed uplink.
        node: usize,
    },
    /// The control link between `node` and its parent heals.
    LinkHeal {
        /// Child endpoint of the healed uplink.
        node: usize,
    },
    /// Demand of `rate` req/s for document `doc` appears at `origin`
    /// (publishing a new document, or a flash of new demand for an old
    /// one). The home server holds the only copy initially.
    DocPublish {
        /// Raw document id.
        doc: u64,
        /// Node whose clients request it.
        origin: usize,
        /// Added request rate.
        rate: f64,
    },
    /// Document `doc` is re-published: every cached copy outside the
    /// home server is invalidated and the new version re-diffuses.
    DocUpdate {
        /// Raw document id.
        doc: u64,
    },
    /// The workload shifts: new per-node rates and/or a new document
    /// mix, resolved against the current topology. Omitted parts keep
    /// their current values.
    WorkloadShift {
        /// Replacement rates generator, if any.
        rates: Option<RatesSpec>,
        /// Replacement doc-mix generator, if any.
        doc_mix: Option<DocMixSpec>,
        /// Seed for the generators' randomness; defaults to
        /// `spec.seed + event index + 1` so every shift draws a distinct,
        /// reproducible stream.
        seed: Option<u64>,
    },
}

impl EventKindSpec {
    /// The spec spelling of this event kind (`"node_join"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            EventKindSpec::NodeJoin { .. } => "node_join",
            EventKindSpec::NodeLeave { .. } => "node_leave",
            EventKindSpec::LinkFail { .. } => "link_fail",
            EventKindSpec::LinkHeal { .. } => "link_heal",
            EventKindSpec::DocPublish { .. } => "doc_publish",
            EventKindSpec::DocUpdate { .. } => "doc_update",
            EventKindSpec::WorkloadShift { .. } => "workload_shift",
        }
    }
}

/// A resolved, concrete event — what [`Engine::apply`](crate::Engine::apply)
/// consumes. Produced by the runner from an [`EventKindSpec`] at fire
/// time, with node/doc references validated and workload generators
/// already expanded.
#[derive(Debug, Clone)]
pub enum Event {
    /// A new leaf joins under `parent` with `rate` req/s of demand.
    NodeJoin {
        /// Parent of the new leaf.
        parent: NodeId,
        /// Spontaneous demand the newcomer brings.
        rate: f64,
    },
    /// The leaf `node` departs (swap-remove id compaction).
    NodeLeave {
        /// The departing leaf.
        node: NodeId,
    },
    /// The control link from `node` to its parent fails.
    LinkFail {
        /// Child endpoint of the failed uplink.
        node: NodeId,
    },
    /// The control link from `node` to its parent heals.
    LinkHeal {
        /// Child endpoint of the healed uplink.
        node: NodeId,
    },
    /// Demand for `doc` appears at `origin`.
    DocPublish {
        /// The document.
        doc: DocId,
        /// Node whose clients request it.
        origin: NodeId,
        /// Added request rate.
        rate: f64,
    },
    /// `doc` is re-published; all non-home copies are invalidated.
    DocUpdate {
        /// The document.
        doc: DocId,
    },
    /// The workload becomes `rates` and/or `doc_mix` (resolved values).
    WorkloadShift {
        /// New per-node rates, when the shift changes them.
        rates: Option<RateVector>,
        /// New document mix, when the shift changes it.
        doc_mix: Option<DocMix>,
    },
}

impl Event {
    /// The spec spelling of this event kind (`"node_join"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::NodeJoin { .. } => "node_join",
            Event::NodeLeave { .. } => "node_leave",
            Event::LinkFail { .. } => "link_fail",
            Event::LinkHeal { .. } => "link_heal",
            Event::DocPublish { .. } => "doc_publish",
            Event::DocUpdate { .. } => "doc_update",
            Event::WorkloadShift { .. } => "workload_shift",
        }
    }
}

/// Typed rejection of an [`Event`] by an engine. Rejection is part of the
/// contract — the baselines cannot re-balance mid-run, the packet engine
/// cannot re-thread its arrival streams — so unsupported events surface
/// here (and in the run's [`EventMarker`]s), never as panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventError {
    /// This engine has no meaningful semantics for the event kind.
    Unsupported {
        /// The rejecting engine (`"baselines"`, ...).
        engine: &'static str,
        /// The rejected event kind (`"doc_update"`, ...).
        event: &'static str,
        /// The event kinds this engine *does* honor, so a rejection
        /// teaches the spec author what would have worked.
        supported: &'static [&'static str],
    },
    /// The event kind is supported but this particular event is not
    /// applicable (unknown document, one-shot engine already ran, ...).
    Invalid {
        /// The event kind.
        event: &'static str,
        /// Why it cannot apply.
        reason: String,
    },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::Unsupported {
                engine,
                event,
                supported,
            } => {
                write!(f, "the {engine} engine does not support {event} events")?;
                if supported.is_empty() {
                    write!(f, " (it supports no dynamics events)")
                } else {
                    write!(f, " (it supports: {})", supported.join(", "))
                }
            }
            EventError::Invalid { event, reason } => {
                write!(f, "{event} event cannot apply: {reason}")
            }
        }
    }
}

impl std::error::Error for EventError {}

/// What happened around one fired event: recorded by the runner, folded
/// into the run's metric stream, and rendered in the text report.
#[derive(Debug, Clone, PartialEq)]
pub struct EventMarker {
    /// Index of the event in the spec's schedule.
    pub index: usize,
    /// Event kind (`"node_leave"`, ...).
    pub kind: String,
    /// Engine-round count when the event fired.
    pub round: usize,
    /// The engine's typed rejection, when it refused the event.
    pub rejected: Option<String>,
    /// Rounds from the event until the convergence metric first dropped
    /// to the schedule's recovery threshold; `None` while rejected, or
    /// when the run ended first.
    pub recovery_rounds: Option<usize>,
    /// Worst convergence-metric value observed after the event.
    pub peak_distance: Option<f64>,
    /// Worst per-node load observed after the event.
    pub peak_load: Option<f64>,
}

impl EventMarker {
    /// `true` when the engine accepted (applied) the event.
    pub fn accepted(&self) -> bool {
        self.rejected.is_none()
    }
}
