//! Spec-level errors with JSON-path context.

use std::fmt;

/// A scenario-spec failure: parsing, validation, or resolution.
///
/// `path` names the offending field in dotted JSON-path form
/// (`"engine.alpha"`, `"sweep.values[2]"`), so a bad spec file points
/// straight at the line to fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted JSON path of the offending field (empty for document-level
    /// errors).
    pub path: String,
    /// What went wrong there.
    pub message: String,
}

impl SpecError {
    /// Creates an error at `path`.
    pub fn at(path: impl Into<String>, message: impl Into<String>) -> Self {
        SpecError {
            path: path.into(),
            message: message.into(),
        }
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "{}: {}", self.path, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

impl From<serde_json::Error> for SpecError {
    fn from(err: serde_json::Error) -> Self {
        SpecError {
            path: String::new(),
            message: format!("invalid JSON: {err}"),
        }
    }
}
