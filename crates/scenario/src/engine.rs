//! The unified engine abstraction: every simulator, the threaded
//! runtime, and the baseline schemes drive through one trait.
//!
//! An [`Engine`] advances in discrete rounds ([`Engine::step`]) and
//! streams its summary numbers into a [`MetricSink`] instead of
//! returning a bespoke report struct; [`Engine::report`] assembles the
//! uniform [`EngineReport`] every consumer (the runner, `webwave-exp`,
//! the examples, the golden tests) reads. An [`Observer`] watches a run
//! round by round — the streaming replacement for the per-engine trace
//! plumbing the constructors used to expose.

use crate::events::{Event, EventError};
use ww_baselines::SchemeReport;
use ww_model::RateVector;
use ww_telemetry::{Level, Snapshot};

/// What a single [`Engine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The engine can keep stepping.
    Running,
    /// The engine finished its work; further steps are no-ops.
    Done,
}

/// A consumer of named scalar metrics.
///
/// Engines push every summary number they know into the sink; sinks
/// decide what to keep. `Vec<(String, f64)>` collects everything.
pub trait MetricSink {
    /// Receives one named metric.
    fn metric(&mut self, name: &str, value: f64);
}

impl MetricSink for Vec<(String, f64)> {
    fn metric(&mut self, name: &str, value: f64) {
        self.push((name.to_string(), value));
    }
}

/// A streaming observer of a driven run.
///
/// The runner calls [`Observer::on_round`] after every engine step with
/// the engine's current convergence metric, and [`Observer::on_done`]
/// once with the final report. All methods default to no-ops.
pub trait Observer {
    /// Whether this observer wants the convergence metric on every
    /// round. Computing it can cost an extra O(n) pass per round, so
    /// the runner skips it (passing `None`) when nothing listens and
    /// the termination rule does not need it.
    fn wants_convergence(&self) -> bool {
        true
    }

    /// Called after each step.
    fn on_round(&mut self, round: usize, convergence: Option<f64>) {
        let _ = (round, convergence);
    }

    /// Called when the runner fires a scheduled dynamics event (after the
    /// engine accepted or rejected it — `error` carries a rejection).
    fn on_event(&mut self, index: usize, round: usize, event: &Event, error: Option<&EventError>) {
        let _ = (index, round, event, error);
    }

    /// Called once when the run terminates.
    fn on_done(&mut self, report: &EngineReport) {
        let _ = report;
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn wants_convergence(&self) -> bool {
        false
    }
}

/// The uniform outcome of one engine run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Engine kind (`"rate_wave"`, `"doc_sim"`, ...).
    pub engine: String,
    /// Rounds executed.
    pub rounds: usize,
    /// Final per-node served rates, when the engine has them.
    pub load: Option<RateVector>,
    /// The TLB oracle, when the engine computes one.
    pub oracle: Option<RateVector>,
    /// Per-round convergence trace, when recorded.
    pub trace: Option<Vec<f64>>,
    /// Every named metric the engine reported, in emission order.
    pub metrics: Vec<(String, f64)>,
    /// Per-scheme reports (baselines engine only; empty otherwise).
    pub schemes: Vec<SchemeReport>,
    /// Observation-only telemetry snapshot, when the engine was run with
    /// telemetry enabled. Deliberately separate from `metrics`: nothing
    /// here may feed back into canonical output or golden comparisons.
    pub telemetry: Option<Snapshot>,
}

impl EngineReport {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find_map(|(n, v)| (n == name).then_some(*v))
    }

    /// The first recorded convergence value (usually the cold-start
    /// distance to the oracle).
    pub fn initial_distance(&self) -> Option<f64> {
        self.trace.as_ref().and_then(|t| t.first().copied())
    }

    /// The last recorded convergence value.
    pub fn final_distance(&self) -> Option<f64> {
        self.trace.as_ref().and_then(|t| t.last().copied())
    }
}

/// One engine behind the unified API.
///
/// Implemented by [`ww_core::wave::RateWave`],
/// [`ww_core::docsim::DocSim`], the packet/cluster/baseline adapters in
/// [`crate::adapters`], and [`ww_forest::ForestWave`].
pub trait Engine {
    /// The engine kind, matching the spec spelling.
    fn kind(&self) -> &'static str;

    /// Advances one round (protocol round, diffusion epoch, or — for
    /// one-shot engines like the cluster and the baselines — the whole
    /// run).
    fn step(&mut self) -> StepOutcome;

    /// Rounds executed so far.
    fn round(&self) -> usize;

    /// The engine's convergence metric: Euclidean distance to the TLB
    /// oracle where one exists, otherwise a load-stability measure
    /// (`None` until the engine has anything to report).
    fn convergence(&self) -> Option<f64>;

    /// Current per-node served rates, when meaningful.
    fn load(&self) -> Option<RateVector>;

    /// Current maximum per-node load, when meaningful. The dynamic drive
    /// loop samples this every round for the per-event peak-load metric;
    /// the default goes through [`Engine::load`] (cloning the vector),
    /// so engines with cheap access override it.
    fn max_load(&self) -> Option<f64> {
        self.load().map(|l| l.max())
    }

    /// The TLB oracle, when the engine computes one.
    fn oracle(&self) -> Option<RateVector>;

    /// The per-round convergence trace recorded so far.
    fn trace(&self) -> Option<Vec<f64>>;

    /// Streams every summary metric into `sink`.
    fn metrics(&self, sink: &mut dyn MetricSink);

    /// Applies a dynamics event — churn, link failure, document
    /// lifecycle, or workload shift — between rounds. The default
    /// implementation rejects everything with a typed
    /// [`EventError::Unsupported`]; engines override it for the event
    /// kinds they can honor (see the support matrix in
    /// `docs/dynamics.md`). Implementations must reject, not panic, on
    /// events they cannot apply.
    ///
    /// # Errors
    ///
    /// [`EventError::Unsupported`] for event kinds outside the engine's
    /// semantics, [`EventError::Invalid`] for supported kinds that cannot
    /// apply to the current state.
    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        Err(EventError::Unsupported {
            engine: self.kind(),
            event: event.kind(),
            supported: &[],
        })
    }

    /// Opens a batched barrier window: events applied until
    /// [`Engine::barrier_commit`] belong to one barrier, and the engine
    /// may defer shared refresh work (oracle refold, flow recomputation,
    /// event-queue surgery) to the commit. The default is a no-op, so
    /// engines without batch support simply apply every event eagerly —
    /// the hooks never change which events succeed.
    fn barrier_begin(&mut self) {}

    /// Closes a batched barrier window, paying any deferred refresh work
    /// exactly once. No-op by default.
    fn barrier_commit(&mut self) {}

    /// Per-scheme baseline reports (baselines engine only).
    fn scheme_reports(&self) -> Vec<SchemeReport> {
        Vec::new()
    }

    /// Sets the run's telemetry level. Telemetry is observation-only —
    /// enabling it must not change a single simulated bit. The default
    /// ignores the level; the packet-engine adapters forward it into
    /// their per-shard counter slabs and phase timers.
    fn set_telemetry(&mut self, level: Level) {
        let _ = level;
    }

    /// The merged telemetry snapshot for the run so far, when telemetry
    /// is enabled (`None` otherwise, and for engines without
    /// instrumentation).
    fn telemetry(&self) -> Option<Snapshot> {
        None
    }

    /// Assembles the uniform report from the accessors above.
    fn report(&self) -> EngineReport {
        let mut metrics = Vec::new();
        self.metrics(&mut metrics);
        EngineReport {
            engine: self.kind().to_string(),
            rounds: self.round(),
            load: self.load(),
            oracle: self.oracle(),
            trace: self.trace(),
            metrics,
            schemes: self.scheme_reports(),
            telemetry: self.telemetry(),
        }
    }
}
