//! Resolving a [`ScenarioSpec`] into a boxed [`Engine`] and driving it
//! to termination.
//!
//! The [`Runner`] owns the only termination loop in the workspace:
//! round budgets, convergence thresholds (distance-to-TLB, or load
//! stability for engines without an oracle), and wall-clock budgets all
//! live here, for every engine — the per-example `while round < n`
//! loops this replaces are gone.

use crate::adapters::{BaselineEngine, BaselineParams, ClusterEngine, PacketEngine};
use crate::engine::{Engine, EngineReport, NullObserver, Observer, StepOutcome};
use crate::error::SpecError;
use crate::spec::{
    DocMixSpec, EngineSpec, PaperFigure, RatesSpec, ScenarioSpec, Termination, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;
use ww_core::docsim::{DocSim, DocSimConfig};
use ww_core::packetsim::PacketSimConfig;
use ww_core::wave::{RateWave, WaveConfig};
use ww_forest::{Coupling, Forest, ForestWave, ForestWaveConfig};
use ww_model::{NodeId, RateVector, Tree};
use ww_runtime::ClusterConfig;
use ww_topology::{paper, Graph};
use ww_workload::DocMix;

/// Outcome of driving one engine to termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveResult {
    /// Rounds executed by the drive loop.
    pub rounds: usize,
    /// Whether the termination rule was *satisfied* (for `converged`,
    /// the threshold was reached before the round cap; budget rules are
    /// always satisfied).
    pub converged: bool,
}

/// One run of a (possibly swept) scenario.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Sweep label (`"staleness=3"`), empty for unswept runs.
    pub label: String,
    /// Whether the termination rule was satisfied.
    pub converged: bool,
    /// The engine's uniform report.
    pub outcome: EngineReport,
}

/// The uniform result of [`Runner::run`]: one row per (sweep) run plus
/// a rendered text report.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name from the spec.
    pub name: String,
    /// Engine kind from the spec.
    pub engine: String,
    /// One row per run (one for unswept specs).
    pub rows: Vec<RunRow>,
    /// Rendered text report.
    pub report: String,
}

/// Resolves specs into engines and drives them.
#[derive(Debug, Clone, Copy, Default)]
pub struct Runner {
    smoke: bool,
}

impl Runner {
    /// A runner with default options.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Enables smoke mode: every spec is shrunk with
    /// [`ScenarioSpec::smoke`] before resolution (CI-sized runs).
    pub fn smoke(mut self, on: bool) -> Self {
        self.smoke = on;
        self
    }

    /// Resolves a spec into a boxed engine (no sweep expansion: the
    /// spec's own engine/workload values are used as-is).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field when the spec
    /// is internally inconsistent (e.g. a document engine without a doc
    /// mix, explicit rates of the wrong length, forest roots out of
    /// range).
    pub fn resolve(&self, spec: &ScenarioSpec) -> Result<Box<dyn Engine>, SpecError> {
        let spec = if self.smoke {
            spec.smoke()
        } else {
            spec.clone()
        };
        resolve_engine(&spec)
    }

    /// Runs a spec (expanding its sweep) with no observer.
    ///
    /// # Errors
    ///
    /// As [`Runner::resolve`].
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, SpecError> {
        self.run_with(spec, &mut NullObserver)
    }

    /// Runs a spec (expanding its sweep), streaming every round to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As [`Runner::resolve`].
    pub fn run_with(
        &self,
        spec: &ScenarioSpec,
        observer: &mut dyn Observer,
    ) -> Result<ScenarioReport, SpecError> {
        let spec = if self.smoke {
            spec.smoke()
        } else {
            spec.clone()
        };
        let runs: Vec<(String, ScenarioSpec)> = match &spec.sweep {
            None => vec![(String::new(), spec.clone())],
            Some(sweep) => {
                let mut runs = Vec::with_capacity(sweep.values.len());
                for &value in &sweep.values {
                    runs.push((sweep.label(value), sweep.apply(&spec, value)?));
                }
                runs
            }
        };
        let mut rows = Vec::with_capacity(runs.len());
        for (label, run_spec) in runs {
            let mut engine = resolve_engine(&run_spec)?;
            let result = drive(engine.as_mut(), &run_spec.termination, observer);
            let outcome = engine.report();
            observer.on_done(&outcome);
            rows.push(RunRow {
                label,
                converged: result.converged,
                outcome,
            });
        }
        let report = render(&spec, &rows);
        Ok(ScenarioReport {
            name: spec.name.clone(),
            engine: spec.engine.kind().to_string(),
            rows,
            report,
        })
    }
}

/// Drives `engine` until `termination` is satisfied, reporting every
/// round to `observer`. This is the *only* termination loop — engines
/// never self-terminate (one-shot engines signal [`StepOutcome::Done`]).
pub fn drive(
    engine: &mut dyn Engine,
    termination: &Termination,
    observer: &mut dyn Observer,
) -> DriveResult {
    let mut rounds = 0;
    let mut converged = true;
    let wants = observer.wants_convergence();
    match *termination {
        Termination::Rounds { max } => {
            while rounds < max {
                let outcome = engine.step();
                rounds += 1;
                observer.on_round(
                    engine.round(),
                    if wants { engine.convergence() } else { None },
                );
                if outcome == StepOutcome::Done {
                    break;
                }
            }
        }
        Termination::Converged {
            threshold,
            max_rounds,
        } => {
            // The metric can be an O(n) pass, so each round computes it
            // exactly once and reuses it for the loop check, the
            // observer, and the final verdict.
            let mut metric = engine.convergence();
            loop {
                if metric.is_some_and(|c| c <= threshold) {
                    break;
                }
                if rounds >= max_rounds {
                    converged = false;
                    break;
                }
                let outcome = engine.step();
                rounds += 1;
                metric = engine.convergence();
                observer.on_round(engine.round(), metric);
                if outcome == StepOutcome::Done {
                    converged = metric.is_some_and(|c| c <= threshold);
                    break;
                }
            }
        }
        Termination::WallClock {
            seconds,
            max_rounds,
        } => {
            let start = Instant::now();
            while rounds < max_rounds && start.elapsed().as_secs_f64() < seconds {
                let outcome = engine.step();
                rounds += 1;
                observer.on_round(
                    engine.round(),
                    if wants { engine.convergence() } else { None },
                );
                if outcome == StepOutcome::Done {
                    break;
                }
            }
        }
    }
    DriveResult { rounds, converged }
}

/// The tree plus (for paper scenarios) its canonical demand.
struct ResolvedTopology {
    tree: Tree,
    paper_rates: Option<RateVector>,
    paper_mix: Option<DocMix>,
}

fn resolve_topology(spec: &ScenarioSpec, rng: &mut StdRng) -> Result<ResolvedTopology, SpecError> {
    let plain = |tree: Tree| ResolvedTopology {
        tree,
        paper_rates: None,
        paper_mix: None,
    };
    let positive = |value: usize, field: &str| {
        if value == 0 {
            Err(SpecError::at(field, "must be at least 1"))
        } else {
            Ok(value)
        }
    };
    Ok(match &spec.topology {
        TopologySpec::Paper { figure } => match figure {
            PaperFigure::Fig7 => {
                let b = paper::fig7();
                let mut mix = DocMix::new(b.tree.len());
                for d in &b.demands {
                    mix.set(d.origin, d.doc, d.rate);
                }
                ResolvedTopology {
                    tree: b.tree,
                    paper_rates: Some(mix.spontaneous()),
                    paper_mix: Some(mix),
                }
            }
            other => {
                let s = match other {
                    PaperFigure::Fig2a => paper::fig2a(),
                    PaperFigure::Fig2b => paper::fig2b(),
                    PaperFigure::Fig4 => paper::fig4(),
                    PaperFigure::Fig6 => paper::fig6(),
                    PaperFigure::Fig7 => unreachable!("handled above"),
                };
                ResolvedTopology {
                    tree: s.tree,
                    paper_rates: Some(s.spontaneous),
                    paper_mix: None,
                }
            }
        },
        TopologySpec::Path { nodes } => {
            plain(ww_topology::path(positive(*nodes, "topology.nodes")?))
        }
        TopologySpec::Star { nodes } => {
            plain(ww_topology::star(positive(*nodes, "topology.nodes")?))
        }
        TopologySpec::KAry { arity, depth } => plain(ww_topology::k_ary(
            positive(*arity, "topology.arity")?,
            *depth,
        )),
        TopologySpec::TwoLevel { regions, leaves } => plain(ww_topology::two_level(
            positive(*regions, "topology.regions")?,
            positive(*leaves, "topology.leaves")?,
        )),
        TopologySpec::Caterpillar { spine, legs } => plain(ww_topology::caterpillar(
            positive(*spine, "topology.spine")?,
            *legs,
        )),
        TopologySpec::Broom { handle, bristles } => plain(ww_topology::broom(
            positive(*handle, "topology.handle")?,
            *bristles,
        )),
        TopologySpec::RandomDepth { nodes, depth } => {
            if *nodes < depth + 1 {
                return Err(SpecError::at(
                    "topology.nodes",
                    format!("a depth-{depth} tree needs at least {} nodes", depth + 1),
                ));
            }
            plain(ww_topology::random_tree_of_depth(rng, *nodes, *depth))
        }
        TopologySpec::Explicit { parents } => plain(
            Tree::from_parents(parents)
                .map_err(|e| SpecError::at("topology.parents", format!("invalid tree: {e}")))?,
        ),
    })
}

fn resolve_rates(
    spec: &ScenarioSpec,
    topo: &ResolvedTopology,
    rng: &mut StdRng,
) -> Result<RateVector, SpecError> {
    let tree = &topo.tree;
    Ok(match &spec.workload.rates {
        RatesSpec::Paper => topo.paper_rates.clone().ok_or_else(|| {
            SpecError::at("workload.rates", "\"paper\" rates require a paper topology")
        })?,
        RatesSpec::Uniform { rate } => ww_workload::uniform(tree, *rate),
        RatesSpec::LeafOnly { rate } => ww_workload::leaf_only(tree, *rate),
        RatesSpec::RandomUniform { lo, hi } => {
            if hi < lo {
                return Err(SpecError::at(
                    "workload.rates.hi",
                    format!("upper bound {hi} is below lower bound {lo}"),
                ));
            }
            ww_workload::random_uniform(rng, tree, *lo, *hi)
        }
        RatesSpec::ZipfNodes { total, theta } => ww_workload::zipf_nodes(rng, tree, *total, *theta),
        RatesSpec::Explicit { rates } => {
            if rates.len() != tree.len() {
                return Err(SpecError::at(
                    "workload.rates.rates",
                    format!(
                        "expected {} rates (one per node), got {}",
                        tree.len(),
                        rates.len()
                    ),
                ));
            }
            RateVector::from(rates.clone())
        }
    })
}

fn resolve_mix(
    spec: &ScenarioSpec,
    topo: &ResolvedTopology,
    rates: &RateVector,
) -> Result<Option<DocMix>, SpecError> {
    Ok(match &spec.workload.doc_mix {
        None => None,
        Some(DocMixSpec::Paper) => Some(topo.paper_mix.clone().ok_or_else(|| {
            SpecError::at(
                "workload.doc_mix",
                "\"paper\" doc mix requires the fig7 paper topology",
            )
        })?),
        Some(DocMixSpec::SharedZipf { docs, theta }) => {
            if *docs == 0 {
                return Err(SpecError::at("workload.doc_mix.docs", "must be at least 1"));
            }
            Some(ww_workload::shared_zipf_mix(
                &topo.tree, rates, *docs, *theta,
            ))
        }
    })
}

fn require_mix(mix: Option<DocMix>, engine: &str) -> Result<DocMix, SpecError> {
    mix.ok_or_else(|| {
        SpecError::at(
            "workload.doc_mix",
            format!("the {engine} engine needs a document mix (shared_zipf, or paper on fig7)"),
        )
    })
}

/// Spec → engine, with the spec's seed driving topology, workload, and
/// engine randomness (in that order, from one generator — so a seed
/// pins the whole run).
fn resolve_engine(spec: &ScenarioSpec) -> Result<Box<dyn Engine>, SpecError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let topo = resolve_topology(spec, &mut rng)?;
    let rates = resolve_rates(spec, &topo, &mut rng)?;
    let mix = resolve_mix(spec, &topo, &rates)?;

    Ok(match &spec.engine {
        EngineSpec::RateWave { alpha, staleness } => Box::new(RateWave::new(
            &topo.tree,
            &rates,
            WaveConfig {
                alpha: *alpha,
                staleness: *staleness,
            },
        )),
        EngineSpec::DocSim {
            alpha,
            tunneling,
            barrier_patience,
        } => {
            let mix = require_mix(mix, "doc_sim")?;
            Box::new(DocSim::new(
                &topo.tree,
                &mix,
                DocSimConfig {
                    alpha: *alpha,
                    tunneling: *tunneling,
                    barrier_patience: *barrier_patience,
                },
            ))
        }
        EngineSpec::PacketSim {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
        } => {
            let mix = require_mix(mix, "packet_sim")?;
            if *diffusion_period <= 0.0 {
                return Err(SpecError::at("engine.diffusion_period", "must be positive"));
            }
            Box::new(PacketEngine::new(
                &topo.tree,
                &mix,
                PacketSimConfig {
                    seed: spec.seed,
                    link_delay: *link_delay,
                    gossip_period: *gossip_period,
                    diffusion_period: *diffusion_period,
                    measure_window: *measure_window,
                    alpha: *alpha,
                    tunneling: *tunneling,
                    barrier_patience: *barrier_patience,
                    gossip_loss: *gossip_loss,
                    hysteresis: *hysteresis,
                    noise_sigmas: *noise_sigmas,
                },
            ))
        }
        EngineSpec::ForestWave {
            alpha,
            coupled,
            roots,
        } => {
            if roots.is_empty() {
                return Err(SpecError::at("engine.roots", "needs at least one root"));
            }
            for (i, &r) in roots.iter().enumerate() {
                if r >= topo.tree.len() {
                    return Err(SpecError::at(
                        format!("engine.roots[{i}]"),
                        format!("node {r} is outside the {}-node topology", topo.tree.len()),
                    ));
                }
            }
            let graph = Graph::from(&topo.tree);
            let root_ids: Vec<NodeId> = roots.iter().map(|&r| NodeId::new(r)).collect();
            let forest = Forest::from_graph(&graph, &root_ids)
                .map_err(|e| SpecError::at("engine.roots", format!("invalid forest: {e}")))?;
            let demands = vec![rates.clone(); roots.len()];
            Box::new(ForestWave::new(
                &forest,
                &demands,
                ForestWaveConfig {
                    alpha: *alpha,
                    coupling: if *coupled {
                        Coupling::Coupled
                    } else {
                        Coupling::Uncoupled
                    },
                },
            ))
        }
        EngineSpec::Cluster {
            alpha,
            rounds,
            channel_capacity,
        } => Box::new(ClusterEngine::new(
            topo.tree.clone(),
            rates,
            ClusterConfig {
                alpha: *alpha,
                rounds: *rounds,
                channel_capacity: *channel_capacity,
            },
        )),
        EngineSpec::Baselines {
            schemes,
            replicas,
            lookup_msgs,
            gle_iterations,
            webwave_rounds,
            gossip_per_second,
        } => {
            if schemes.is_empty() {
                return Err(SpecError::at("engine.schemes", "needs at least one scheme"));
            }
            Box::new(BaselineEngine::new(
                topo.tree.clone(),
                rates,
                schemes.clone(),
                BaselineParams {
                    replicas: *replicas,
                    lookup_msgs: *lookup_msgs,
                    gle_iterations: *gle_iterations,
                    webwave_rounds: *webwave_rounds,
                    gossip_per_second: *gossip_per_second,
                },
            ))
        }
    })
}

fn render(spec: &ScenarioSpec, rows: &[RunRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario {} — engine {} (seed {})",
        spec.name,
        spec.engine.kind(),
        spec.seed
    );
    for row in rows {
        let label = if row.label.is_empty() {
            "run".to_string()
        } else {
            format!("run [{}]", row.label)
        };
        let mut line = format!("  {label}: rounds {}", row.outcome.rounds);
        if let (Some(initial), Some(last)) =
            (row.outcome.initial_distance(), row.outcome.final_distance())
        {
            let _ = write!(line, ", convergence {initial:.3} -> {last:.3e}");
        }
        if let Some(load) = &row.outcome.load {
            let _ = write!(line, ", max load {:.3}", load.max());
        }
        let _ = write!(
            line,
            ", {}",
            if row.converged {
                "converged"
            } else {
                "not converged"
            }
        );
        out.push_str(&line);
        out.push('\n');
        if !row.outcome.schemes.is_empty() {
            let _ = writeln!(
                out,
                "    {:<16} {:>10} {:>12} {:>14} {:>14} {:>10}",
                "scheme", "max load", "dist to GLE", "ctrl msgs/req", "data hops/req", "needs dir"
            );
            for s in &row.outcome.schemes {
                let _ = writeln!(
                    out,
                    "    {:<16} {:>10.3} {:>12.3} {:>14.3} {:>14.3} {:>10}",
                    s.name,
                    s.max_load,
                    s.distance_to_gle,
                    s.control_msgs_per_request,
                    s.data_hops_per_request,
                    if s.violates_nss { "yes" } else { "no" }
                );
            }
        } else if !row.outcome.metrics.is_empty() {
            let rendered: Vec<String> = row
                .outcome
                .metrics
                .iter()
                .map(|(name, value)| format!("{name}={value:.4}"))
                .collect();
            let _ = writeln!(out, "    metrics: {}", rendered.join("  "));
        }
    }
    out
}
