//! Resolving a [`ScenarioSpec`] into a boxed [`Engine`] and driving it
//! to termination.
//!
//! The [`Runner`] owns the only termination loop in the workspace:
//! round budgets, convergence thresholds (distance-to-TLB, or load
//! stability for engines without an oracle), and wall-clock budgets all
//! live here, for every engine — the per-example `while round < n`
//! loops this replaces are gone.
//!
//! Specs with an [`EventsSpec`] dynamics schedule take the event-driven
//! drive path instead: the runner fires each scheduled event at its
//! round (resolving node/doc references and workload generators against
//! the *current*, possibly churned topology), records an [`EventMarker`]
//! per event with recovery metrics (rounds back under the recovery
//! threshold, peak distance, peak load), and folds the markers into the
//! run's metric stream and text report. Static specs are driven by the
//! untouched pre-dynamics loop, so their traces stay bit-identical.

use crate::adapters::{
    BaselineEngine, BaselineParams, ClusterEngine, DistPacketEngine, PacketEngine, ParPacketEngine,
};
use crate::engine::{Engine, EngineReport, NullObserver, Observer, StepOutcome};
use crate::error::SpecError;
use crate::events::{Event, EventError, EventKindSpec, EventMarker, EventSpec, EventsSpec};
use crate::spec::{
    DocMixSpec, EngineSpec, PaperFigure, RatesSpec, ScenarioSpec, Termination, TopologySpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{Map, Value};
use std::fmt::Write as _;
use std::time::Instant;
use ww_core::docsim::{DocSim, DocSimConfig};
use ww_core::packetsim::PacketSimConfig;
use ww_core::wave::{RateWave, WaveConfig};
use ww_dist::DistOptions;
use ww_forest::{Coupling, Forest, ForestWave, ForestWaveConfig};
use ww_model::{NodeId, RateVector, Tree};
use ww_runtime::ClusterConfig;
use ww_telemetry::TraceWriter;
use ww_topology::{paper, Graph};
use ww_workload::DocMix;

/// Outcome of driving one engine to termination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveResult {
    /// Rounds executed by the drive loop.
    pub rounds: usize,
    /// Whether the termination rule was *satisfied* (for `converged`,
    /// the threshold was reached before the round cap; budget rules are
    /// always satisfied).
    pub converged: bool,
}

/// One run of a (possibly swept) scenario.
#[derive(Debug, Clone)]
pub struct RunRow {
    /// Sweep label (`"staleness=3"`), empty for unswept runs.
    pub label: String,
    /// Whether the termination rule was satisfied.
    pub converged: bool,
    /// Per-event markers (empty for static specs): what fired when, what
    /// was rejected, and how fast the system recovered.
    pub events: Vec<EventMarker>,
    /// The engine's uniform report.
    pub outcome: EngineReport,
}

/// The uniform result of [`Runner::run`]: one row per (sweep) run plus
/// a rendered text report.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name from the spec.
    pub name: String,
    /// Engine kind from the spec.
    pub engine: String,
    /// One row per run (one for unswept specs).
    pub rows: Vec<RunRow>,
    /// Rendered text report.
    pub report: String,
}

/// Resolves specs into engines and drives them.
#[derive(Debug, Clone, Default)]
pub struct Runner {
    smoke: bool,
    dist: DistOptions,
}

impl Runner {
    /// A runner with default options.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Enables smoke mode: every spec is shrunk with
    /// [`ScenarioSpec::smoke`] before resolution (CI-sized runs).
    pub fn smoke(mut self, on: bool) -> Self {
        self.smoke = on;
        self
    }

    /// Overrides the transport options used when a spec resolves to the
    /// distributed packet engine (`packet_sim_dist`): worker spawning
    /// mode, control listen address, and timeouts. Specs on other
    /// engines ignore this. The default is [`DistOptions::default`]
    /// (auto mode on an ephemeral loopback port).
    pub fn dist_options(mut self, options: DistOptions) -> Self {
        self.dist = options;
        self
    }

    /// Resolves a spec into a boxed engine (no sweep expansion: the
    /// spec's own engine/workload values are used as-is).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending field when the spec
    /// is internally inconsistent (e.g. a document engine without a doc
    /// mix, explicit rates of the wrong length, forest roots out of
    /// range).
    pub fn resolve(&self, spec: &ScenarioSpec) -> Result<Box<dyn Engine>, SpecError> {
        let spec = if self.smoke {
            spec.smoke()
        } else {
            spec.clone()
        };
        let mut dist = self.dist.clone();
        dist.telemetry = spec.telemetry.level;
        let mut engine = resolve_engine(&spec, &dist)?;
        engine.set_telemetry(spec.telemetry.level);
        Ok(engine)
    }

    /// Runs a spec (expanding its sweep) with no observer.
    ///
    /// # Errors
    ///
    /// As [`Runner::resolve`].
    pub fn run(&self, spec: &ScenarioSpec) -> Result<ScenarioReport, SpecError> {
        self.run_with(spec, &mut NullObserver)
    }

    /// Runs a spec (expanding its sweep), streaming every round to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As [`Runner::resolve`].
    pub fn run_with(
        &self,
        spec: &ScenarioSpec,
        observer: &mut dyn Observer,
    ) -> Result<ScenarioReport, SpecError> {
        let spec = if self.smoke {
            spec.smoke()
        } else {
            spec.clone()
        };
        let runs: Vec<(String, ScenarioSpec)> = match &spec.sweep {
            None => vec![(String::new(), spec.clone())],
            Some(sweep) => {
                let mut runs = Vec::with_capacity(sweep.values.len());
                for &value in &sweep.values {
                    runs.push((sweep.label(value), sweep.apply(&spec, value)?));
                }
                runs
            }
        };
        // One JSONL trace file for the whole (possibly swept) scenario:
        // each run writes a `run_start`/`run_end` pair around its rounds.
        let mut tracer = match &spec.telemetry.trace_out {
            Some(path) => Some(TraceWriter::create(path).map_err(|e| {
                SpecError::at(
                    "telemetry.trace_out",
                    format!("cannot create trace file \"{path}\": {e}"),
                )
            })?),
            None => None,
        };
        let mut rows = Vec::with_capacity(runs.len());
        for (label, run_spec) in runs {
            // The distributed engine fixes its level at launch (it times
            // the worker handshake), so the level rides in DistOptions;
            // every other engine takes it through set_telemetry below.
            let mut dist = self.dist.clone();
            dist.telemetry = run_spec.telemetry.level;
            let mut engine = resolve_engine(&run_spec, &dist)?;
            engine.set_telemetry(run_spec.telemetry.level);
            if let Some(w) = tracer.as_mut() {
                let _ = w.record(&run_start_record(&run_spec, &label));
            }
            let dynamic = run_spec
                .events
                .as_ref()
                .is_some_and(|e| !e.schedule.is_empty());
            let (result, markers) = {
                let mut traced;
                let obs: &mut dyn Observer = match tracer.as_mut() {
                    Some(writer) => {
                        traced = TraceObserver {
                            inner: &mut *observer,
                            writer,
                        };
                        &mut traced
                    }
                    None => &mut *observer,
                };
                if dynamic {
                    let events = run_spec.events.as_ref().expect("checked above");
                    let mut shadow = Shadow::of(&run_spec)?;
                    drive_dynamic(engine.as_mut(), &run_spec, events, &mut shadow, obs)?
                } else {
                    // Static world: the original drive loop, untouched, so
                    // event-free specs stay bit-identical to pre-dynamics
                    // runs.
                    (
                        drive(engine.as_mut(), &run_spec.termination, obs),
                        Vec::new(),
                    )
                }
            };
            let mut outcome = engine.report();
            // Per-event markers ride in the metric stream, so every
            // consumer of the uniform report sees the dynamics timeline.
            for m in &markers {
                let prefix = format!("event.{}.{}", m.index, m.kind);
                outcome
                    .metrics
                    .push((format!("{prefix}.round"), m.round as f64));
                outcome.metrics.push((
                    format!("{prefix}.accepted"),
                    f64::from(u8::from(m.accepted())),
                ));
                if let Some(r) = m.recovery_rounds {
                    outcome
                        .metrics
                        .push((format!("{prefix}.recovery_rounds"), r as f64));
                }
                if let Some(p) = m.peak_distance {
                    outcome.metrics.push((format!("{prefix}.peak_distance"), p));
                }
                if let Some(p) = m.peak_load {
                    outcome.metrics.push((format!("{prefix}.peak_load"), p));
                }
            }
            observer.on_done(&outcome);
            if let Some(w) = tracer.as_mut() {
                let _ = w.record(&run_end_record(&result, &outcome));
            }
            rows.push(RunRow {
                label,
                converged: result.converged,
                events: markers,
                outcome,
            });
        }
        if let Some(w) = tracer.as_mut() {
            w.flush().map_err(|e| {
                SpecError::at("telemetry.trace_out", format!("trace write failed: {e}"))
            })?;
        }
        let report = render(&spec, &rows);
        Ok(ScenarioReport {
            name: spec.name.clone(),
            engine: spec.engine.kind().to_string(),
            rows,
            report,
        })
    }
}

// ---------------------------------------------------------------------
// JSONL run tracing
// ---------------------------------------------------------------------

/// Builds one JSONL trace record (`{"record": "<kind>", ...}`).
fn trace_record(kind: &str, pairs: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    map.insert("record", Value::from(kind));
    for (k, v) in pairs {
        map.insert(k, v);
    }
    Value::Object(map)
}

fn run_start_record(spec: &ScenarioSpec, label: &str) -> Value {
    trace_record(
        "run_start",
        vec![
            ("scenario", Value::from(spec.name.as_str())),
            ("engine", Value::from(spec.engine.kind())),
            ("label", Value::from(label)),
            ("seed", Value::Number(spec.seed as f64)),
            ("level", Value::from(spec.telemetry.level.as_str())),
        ],
    )
}

fn run_end_record(result: &DriveResult, outcome: &EngineReport) -> Value {
    let mut pairs = vec![
        ("rounds", Value::Number(result.rounds as f64)),
        ("converged", Value::Bool(result.converged)),
    ];
    if let Some(snap) = &outcome.telemetry {
        pairs.push(("telemetry", snap.to_json()));
    }
    trace_record("run_end", pairs)
}

/// Wraps the caller's observer to mirror every round and dynamics event
/// into the JSONL trace. Observation-only: it reads what the drive loop
/// already hands every observer and never touches the engine.
struct TraceObserver<'a> {
    inner: &'a mut dyn Observer,
    writer: &'a mut TraceWriter,
}

impl Observer for TraceObserver<'_> {
    fn wants_convergence(&self) -> bool {
        // Convergence is a pure accessor; sampling it for the trace
        // cannot perturb the run even when the inner observer declines.
        true
    }

    fn on_round(&mut self, round: usize, convergence: Option<f64>) {
        let _ = self.writer.record(&trace_record(
            "round",
            vec![
                ("round", Value::Number(round as f64)),
                (
                    "convergence",
                    match convergence {
                        Some(c) => Value::Number(c),
                        None => Value::Null,
                    },
                ),
            ],
        ));
        self.inner.on_round(round, convergence);
    }

    fn on_event(&mut self, index: usize, round: usize, event: &Event, error: Option<&EventError>) {
        let _ = self.writer.record(&trace_record(
            "event",
            vec![
                ("index", Value::Number(index as f64)),
                ("round", Value::Number(round as f64)),
                ("kind", Value::from(event.kind())),
                ("accepted", Value::Bool(error.is_none())),
                (
                    "error",
                    match error {
                        Some(e) => Value::from(e.to_string().as_str()),
                        None => Value::Null,
                    },
                ),
            ],
        ));
        self.inner.on_event(index, round, event, error);
    }

    fn on_done(&mut self, report: &EngineReport) {
        self.inner.on_done(report);
    }
}

/// Drives `engine` until `termination` is satisfied, reporting every
/// round to `observer`. This is the *only* termination loop — engines
/// never self-terminate (one-shot engines signal [`StepOutcome::Done`]).
pub fn drive(
    engine: &mut dyn Engine,
    termination: &Termination,
    observer: &mut dyn Observer,
) -> DriveResult {
    let mut rounds = 0;
    let mut converged = true;
    let wants = observer.wants_convergence();
    match *termination {
        Termination::Rounds { max } => {
            while rounds < max {
                let outcome = engine.step();
                rounds += 1;
                observer.on_round(
                    engine.round(),
                    if wants { engine.convergence() } else { None },
                );
                if outcome == StepOutcome::Done {
                    break;
                }
            }
        }
        Termination::Converged {
            threshold,
            max_rounds,
        } => {
            // The metric can be an O(n) pass, so each round computes it
            // exactly once and reuses it for the loop check, the
            // observer, and the final verdict.
            let mut metric = engine.convergence();
            loop {
                if metric.is_some_and(|c| c <= threshold) {
                    break;
                }
                if rounds >= max_rounds {
                    converged = false;
                    break;
                }
                let outcome = engine.step();
                rounds += 1;
                metric = engine.convergence();
                observer.on_round(engine.round(), metric);
                if outcome == StepOutcome::Done {
                    converged = metric.is_some_and(|c| c <= threshold);
                    break;
                }
            }
        }
        Termination::WallClock {
            seconds,
            max_rounds,
        } => {
            let start = Instant::now();
            while rounds < max_rounds && start.elapsed().as_secs_f64() < seconds {
                let outcome = engine.step();
                rounds += 1;
                observer.on_round(
                    engine.round(),
                    if wants { engine.convergence() } else { None },
                );
                if outcome == StepOutcome::Done {
                    break;
                }
            }
        }
    }
    DriveResult { rounds, converged }
}

// ---------------------------------------------------------------------
// The event-driven drive path
// ---------------------------------------------------------------------

/// The runner's mirror of the world state engines mutate under events:
/// the current tree and per-node rates. Needed to resolve later events
/// (node references, workload generators) against the churned topology
/// without reaching into engine internals.
struct Shadow {
    tree: Tree,
    rates: RateVector,
}

impl Shadow {
    /// Re-resolves the run's topology and rates exactly as
    /// [`resolve_engine`] did (same seed, same draw order), so the shadow
    /// starts identical to the engine's world.
    fn of(spec: &ScenarioSpec) -> Result<Shadow, SpecError> {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let topo = resolve_topology(spec, &mut rng)?;
        let rates = resolve_rates(spec, &topo, &mut rng)?;
        Ok(Shadow {
            tree: topo.tree,
            rates,
        })
    }

    /// Mirrors an event the engine *accepted* onto the shadow state.
    fn apply(&mut self, event: &Event) {
        match event {
            Event::NodeJoin { parent, rate } => {
                self.tree.add_leaf(*parent).expect("validated at resolve");
                let mut v = self.rates.clone().into_inner();
                v.push(*rate);
                self.rates = RateVector::from(v);
            }
            Event::NodeLeave { node } => {
                let removal = self.tree.remove_leaf(*node).expect("validated at resolve");
                let mut v = self.rates.clone().into_inner();
                removal.rehome(&mut v);
                self.rates = RateVector::from(v);
            }
            Event::DocPublish { origin, rate, .. } => {
                self.rates[*origin] += rate;
            }
            Event::WorkloadShift {
                rates: Some(rates), ..
            } => {
                self.rates = rates.clone();
            }
            Event::LinkFail { .. } | Event::LinkHeal { .. } | Event::DocUpdate { .. } => {}
            Event::WorkloadShift { rates: None, .. } => {}
        }
    }
}

/// Resolves one scheduled event against the current shadow state:
/// validates node references, expands workload generators (seeded by the
/// event's own seed, defaulting to `spec seed + event index + 1`), and
/// produces the concrete [`Event`] engines consume.
///
/// Structural errors — out-of-range nodes, non-leaf departures,
/// generators that cannot re-resolve mid-run — abort the run with a
/// [`SpecError`] naming the schedule entry; engine-side rejections are
/// *not* errors and surface as markers instead.
fn resolve_event(
    spec: &EventSpec,
    index: usize,
    master_seed: u64,
    shadow: &Shadow,
) -> Result<Event, SpecError> {
    let n = shadow.tree.len();
    let at = |field: &str| format!("events.schedule[{index}].{field}");
    let check_node = |node: usize, field: &str| {
        if node >= n {
            Err(SpecError::at(
                at(field),
                format!("node {node} is outside the current {n}-node topology"),
            ))
        } else {
            Ok(NodeId::new(node))
        }
    };
    let check_uplink = |node: usize, field: &str| {
        let id = check_node(node, field)?;
        if shadow.tree.parent(id).is_none() {
            return Err(SpecError::at(
                at(field),
                format!("node {node} is the root and has no uplink"),
            ));
        }
        Ok(id)
    };
    Ok(match &spec.kind {
        EventKindSpec::NodeJoin { parent, rate } => Event::NodeJoin {
            parent: check_node(*parent, "parent")?,
            rate: *rate,
        },
        EventKindSpec::NodeLeave { node } => {
            let id = check_uplink(*node, "node")?;
            if !shadow.tree.is_leaf(id) {
                return Err(SpecError::at(
                    at("node"),
                    format!(
                        "node {node} has {} children and cannot leave (only leaves depart)",
                        shadow.tree.children(id).len()
                    ),
                ));
            }
            Event::NodeLeave { node: id }
        }
        EventKindSpec::LinkFail { node } => Event::LinkFail {
            node: check_uplink(*node, "node")?,
        },
        EventKindSpec::LinkHeal { node } => Event::LinkHeal {
            node: check_uplink(*node, "node")?,
        },
        EventKindSpec::DocPublish { doc, origin, rate } => Event::DocPublish {
            doc: ww_model::DocId::new(*doc),
            origin: check_node(*origin, "origin")?,
            rate: *rate,
        },
        EventKindSpec::DocUpdate { doc } => Event::DocUpdate {
            doc: ww_model::DocId::new(*doc),
        },
        EventKindSpec::WorkloadShift {
            rates,
            doc_mix,
            seed,
        } => {
            let mut rng =
                StdRng::seed_from_u64(seed.unwrap_or(master_seed.wrapping_add(index as u64 + 1)));
            let resolved_rates = match rates {
                None => None,
                Some(RatesSpec::Paper) => {
                    return Err(SpecError::at(
                        at("rates"),
                        "\"paper\" rates cannot be re-resolved mid-run",
                    ))
                }
                Some(RatesSpec::Uniform { rate }) => {
                    Some(ww_workload::uniform(&shadow.tree, *rate))
                }
                Some(RatesSpec::LeafOnly { rate }) => {
                    Some(ww_workload::leaf_only(&shadow.tree, *rate))
                }
                Some(RatesSpec::RandomUniform { lo, hi }) => {
                    if hi < lo {
                        return Err(SpecError::at(
                            at("rates.hi"),
                            format!("upper bound {hi} is below lower bound {lo}"),
                        ));
                    }
                    Some(ww_workload::random_uniform(
                        &mut rng,
                        &shadow.tree,
                        *lo,
                        *hi,
                    ))
                }
                Some(RatesSpec::ZipfNodes { total, theta }) => Some(ww_workload::zipf_nodes(
                    &mut rng,
                    &shadow.tree,
                    *total,
                    *theta,
                )),
                Some(RatesSpec::Explicit { rates }) => {
                    if rates.len() != n {
                        return Err(SpecError::at(
                            at("rates.rates"),
                            format!(
                                "expected {n} rates (one per node at this point of the schedule), got {}",
                                rates.len()
                            ),
                        ));
                    }
                    Some(RateVector::from(rates.clone()))
                }
            };
            let resolved_mix = match doc_mix {
                None => None,
                Some(DocMixSpec::Paper) => {
                    return Err(SpecError::at(
                        at("doc_mix"),
                        "\"paper\" doc mixes cannot be re-resolved mid-run",
                    ))
                }
                Some(DocMixSpec::SharedZipf { docs, theta }) => {
                    if *docs == 0 {
                        return Err(SpecError::at(at("doc_mix.docs"), "must be at least 1"));
                    }
                    let base = resolved_rates.as_ref().unwrap_or(&shadow.rates);
                    Some(ww_workload::shared_zipf_mix(
                        &shadow.tree,
                        base,
                        *docs,
                        *theta,
                    ))
                }
            };
            Event::WorkloadShift {
                rates: resolved_rates,
                doc_mix: resolved_mix,
            }
        }
    })
}

/// Tracks one accepted event's recovery: when did the convergence metric
/// first dip back under the threshold, and how bad did things get.
struct RecoveryTracker {
    marker: usize,
    fire_round: usize,
    recovered: bool,
}

/// Folds one `(convergence, max load)` sample into every live tracker's
/// peaks, and — when `latch_recovery` — latches `recovery_rounds` the
/// first time the metric is back under the threshold. Fire-time samples
/// pass `latch_recovery: false`: engines that only refresh their metric
/// while stepping (the packet engine) would otherwise "recover" in zero
/// rounds on a stale pre-event value.
fn update_trackers(
    conv: Option<f64>,
    load_max: Option<f64>,
    markers: &mut [EventMarker],
    trackers: &mut [RecoveryTracker],
    rounds: usize,
    recovery_threshold: f64,
    latch_recovery: bool,
) {
    for t in trackers.iter_mut() {
        let m = &mut markers[t.marker];
        if let Some(c) = conv {
            m.peak_distance = Some(m.peak_distance.map_or(c, |p| p.max(c)));
            if latch_recovery && !t.recovered && c <= recovery_threshold {
                t.recovered = true;
                m.recovery_rounds = Some(rounds - t.fire_round);
            }
        }
        if let Some(lm) = load_max {
            m.peak_load = Some(m.peak_load.map_or(lm, |p| p.max(lm)));
        }
    }
}

/// The event-interleaved drive loop. Differences from the static
/// [`drive`]:
///
/// * every scheduled event fires once the engine has executed its
///   `round` (`round: 0` fires before any stepping);
/// * a `converged` termination only stops the run once the whole
///   schedule has fired — injecting a fault into an already-converged
///   system is the entire point of a dynamics spec (round and wall-clock
///   caps still apply unconditionally);
/// * events scheduled past the run's final round never fire and produce
///   no markers (one-shot engines end after a single step).
fn drive_dynamic(
    engine: &mut dyn Engine,
    spec: &ScenarioSpec,
    events: &EventsSpec,
    shadow: &mut Shadow,
    observer: &mut dyn Observer,
) -> Result<(DriveResult, Vec<EventMarker>), SpecError> {
    let schedule = &events.schedule;
    let mut markers: Vec<EventMarker> = Vec::new();
    let mut trackers: Vec<RecoveryTracker> = Vec::new();
    let mut next_event = 0usize;
    let mut rounds = 0usize;
    let mut converged = true;
    let wants = observer.wants_convergence();
    let needs_metric = matches!(spec.termination, Termination::Converged { .. });
    let start = Instant::now();
    // The convergence metric can be an O(n) pass, so each iteration
    // computes it at most once (mirroring the static `drive`) and shares
    // the sample between the termination check, the observer, and the
    // recovery trackers.
    let mut metric = if needs_metric {
        engine.convergence()
    } else {
        None
    };
    loop {
        // Fire everything due at this round count. With batched
        // barriers, the whole same-round group becomes one barrier:
        // engines defer their shared refresh work to the commit.
        let mut fired = false;
        let due = next_event < schedule.len() && schedule[next_event].round <= rounds;
        if due && events.batched_barriers {
            engine.barrier_begin();
        }
        while next_event < schedule.len() && schedule[next_event].round <= rounds {
            let event = resolve_event(&schedule[next_event], next_event, spec.seed, shadow)?;
            let result = engine.apply(&event);
            observer.on_event(next_event, rounds, &event, result.as_ref().err());
            let accepted = result.is_ok();
            markers.push(EventMarker {
                index: next_event,
                kind: event.kind().to_string(),
                round: rounds,
                rejected: result.err().map(|e| e.to_string()),
                recovery_rounds: None,
                peak_distance: None,
                peak_load: None,
            });
            if accepted {
                shadow.apply(&event);
                trackers.push(RecoveryTracker {
                    marker: markers.len() - 1,
                    fire_round: rounds,
                    recovered: false,
                });
                fired = true;
            }
            next_event += 1;
        }
        if due && events.batched_barriers {
            engine.barrier_commit();
        }
        if fired {
            // Capture the immediate post-event shock in the peaks (no
            // recovery latching: a lazily-measuring engine still reports
            // its pre-event metric here).
            metric = engine.convergence();
            update_trackers(
                metric,
                engine.max_load(),
                &mut markers,
                &mut trackers,
                rounds,
                events.recovery_threshold,
                false,
            );
        }
        // Termination.
        match spec.termination {
            Termination::Rounds { max } => {
                if rounds >= max {
                    break;
                }
            }
            Termination::Converged {
                threshold,
                max_rounds,
            } => {
                if next_event >= schedule.len() && metric.is_some_and(|c| c <= threshold) {
                    break;
                }
                if rounds >= max_rounds {
                    converged = false;
                    break;
                }
            }
            Termination::WallClock {
                seconds,
                max_rounds,
            } => {
                if rounds >= max_rounds || start.elapsed().as_secs_f64() >= seconds {
                    break;
                }
            }
        }
        let outcome = engine.step();
        rounds += 1;
        metric = if needs_metric || wants || !trackers.is_empty() {
            engine.convergence()
        } else {
            None
        };
        observer.on_round(engine.round(), if wants { metric } else { None });
        if !trackers.is_empty() {
            update_trackers(
                metric,
                engine.max_load(),
                &mut markers,
                &mut trackers,
                rounds,
                events.recovery_threshold,
                true,
            );
        }
        if outcome == StepOutcome::Done {
            if let Termination::Converged { threshold, .. } = spec.termination {
                converged = metric.is_some_and(|c| c <= threshold);
            }
            break;
        }
    }
    Ok((DriveResult { rounds, converged }, markers))
}

/// The tree plus (for paper scenarios) its canonical demand.
struct ResolvedTopology {
    tree: Tree,
    paper_rates: Option<RateVector>,
    paper_mix: Option<DocMix>,
}

fn resolve_topology(spec: &ScenarioSpec, rng: &mut StdRng) -> Result<ResolvedTopology, SpecError> {
    let plain = |tree: Tree| ResolvedTopology {
        tree,
        paper_rates: None,
        paper_mix: None,
    };
    let positive = |value: usize, field: &str| {
        if value == 0 {
            Err(SpecError::at(field, "must be at least 1"))
        } else {
            Ok(value)
        }
    };
    Ok(match &spec.topology {
        TopologySpec::Paper { figure } => match figure {
            PaperFigure::Fig7 => {
                let b = paper::fig7();
                let mut mix = DocMix::new(b.tree.len());
                for d in &b.demands {
                    mix.set(d.origin, d.doc, d.rate);
                }
                ResolvedTopology {
                    tree: b.tree,
                    paper_rates: Some(mix.spontaneous()),
                    paper_mix: Some(mix),
                }
            }
            other => {
                let s = match other {
                    PaperFigure::Fig2a => paper::fig2a(),
                    PaperFigure::Fig2b => paper::fig2b(),
                    PaperFigure::Fig4 => paper::fig4(),
                    PaperFigure::Fig6 => paper::fig6(),
                    PaperFigure::Fig7 => unreachable!("handled above"),
                };
                ResolvedTopology {
                    tree: s.tree,
                    paper_rates: Some(s.spontaneous),
                    paper_mix: None,
                }
            }
        },
        TopologySpec::Path { nodes } => {
            plain(ww_topology::path(positive(*nodes, "topology.nodes")?))
        }
        TopologySpec::Star { nodes } => {
            plain(ww_topology::star(positive(*nodes, "topology.nodes")?))
        }
        TopologySpec::KAry { arity, depth } => plain(ww_topology::k_ary(
            positive(*arity, "topology.arity")?,
            *depth,
        )),
        TopologySpec::TwoLevel { regions, leaves } => plain(ww_topology::two_level(
            positive(*regions, "topology.regions")?,
            positive(*leaves, "topology.leaves")?,
        )),
        TopologySpec::Caterpillar { spine, legs } => plain(ww_topology::caterpillar(
            positive(*spine, "topology.spine")?,
            *legs,
        )),
        TopologySpec::Broom { handle, bristles } => plain(ww_topology::broom(
            positive(*handle, "topology.handle")?,
            *bristles,
        )),
        TopologySpec::RandomDepth { nodes, depth } => {
            if *nodes < depth + 1 {
                return Err(SpecError::at(
                    "topology.nodes",
                    format!("a depth-{depth} tree needs at least {} nodes", depth + 1),
                ));
            }
            plain(ww_topology::random_tree_of_depth(rng, *nodes, *depth))
        }
        TopologySpec::Explicit { parents } => plain(
            Tree::from_parents(parents)
                .map_err(|e| SpecError::at("topology.parents", format!("invalid tree: {e}")))?,
        ),
    })
}

fn resolve_rates(
    spec: &ScenarioSpec,
    topo: &ResolvedTopology,
    rng: &mut StdRng,
) -> Result<RateVector, SpecError> {
    let tree = &topo.tree;
    Ok(match &spec.workload.rates {
        RatesSpec::Paper => topo.paper_rates.clone().ok_or_else(|| {
            SpecError::at("workload.rates", "\"paper\" rates require a paper topology")
        })?,
        RatesSpec::Uniform { rate } => ww_workload::uniform(tree, *rate),
        RatesSpec::LeafOnly { rate } => ww_workload::leaf_only(tree, *rate),
        RatesSpec::RandomUniform { lo, hi } => {
            if hi < lo {
                return Err(SpecError::at(
                    "workload.rates.hi",
                    format!("upper bound {hi} is below lower bound {lo}"),
                ));
            }
            ww_workload::random_uniform(rng, tree, *lo, *hi)
        }
        RatesSpec::ZipfNodes { total, theta } => ww_workload::zipf_nodes(rng, tree, *total, *theta),
        RatesSpec::Explicit { rates } => {
            if rates.len() != tree.len() {
                return Err(SpecError::at(
                    "workload.rates.rates",
                    format!(
                        "expected {} rates (one per node), got {}",
                        tree.len(),
                        rates.len()
                    ),
                ));
            }
            RateVector::from(rates.clone())
        }
    })
}

fn resolve_mix(
    spec: &ScenarioSpec,
    topo: &ResolvedTopology,
    rates: &RateVector,
) -> Result<Option<DocMix>, SpecError> {
    Ok(match &spec.workload.doc_mix {
        None => None,
        Some(DocMixSpec::Paper) => Some(topo.paper_mix.clone().ok_or_else(|| {
            SpecError::at(
                "workload.doc_mix",
                "\"paper\" doc mix requires the fig7 paper topology",
            )
        })?),
        Some(DocMixSpec::SharedZipf { docs, theta }) => {
            if *docs == 0 {
                return Err(SpecError::at("workload.doc_mix.docs", "must be at least 1"));
            }
            Some(ww_workload::shared_zipf_mix(
                &topo.tree, rates, *docs, *theta,
            ))
        }
    })
}

fn require_mix(mix: Option<DocMix>, engine: &str) -> Result<DocMix, SpecError> {
    mix.ok_or_else(|| {
        SpecError::at(
            "workload.doc_mix",
            format!("the {engine} engine needs a document mix (shared_zipf, or paper on fig7)"),
        )
    })
}

/// Spec-level rebalance knobs → the engine-level config. `None` when the
/// spec has no `rebalance` block.
fn rebalance_config(spec: &ScenarioSpec) -> Option<ww_pdes::RebalanceConfig> {
    spec.rebalance.map(|r| ww_pdes::RebalanceConfig {
        trigger_imbalance: r.trigger_imbalance,
        min_epoch_gap: r.min_epoch_gap,
    })
}

/// Spec → engine, with the spec's seed driving topology, workload, and
/// engine randomness (in that order, from one generator — so a seed
/// pins the whole run).
fn resolve_engine(spec: &ScenarioSpec, dist: &DistOptions) -> Result<Box<dyn Engine>, SpecError> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let topo = resolve_topology(spec, &mut rng)?;
    let rates = resolve_rates(spec, &topo, &mut rng)?;
    let mix = resolve_mix(spec, &topo, &rates)?;

    Ok(match &spec.engine {
        EngineSpec::RateWave { alpha, staleness } => Box::new(RateWave::new(
            &topo.tree,
            &rates,
            WaveConfig {
                alpha: *alpha,
                staleness: *staleness,
            },
        )),
        EngineSpec::DocSim {
            alpha,
            tunneling,
            barrier_patience,
        } => {
            let mix = require_mix(mix, "doc_sim")?;
            Box::new(DocSim::new(
                &topo.tree,
                &mix,
                DocSimConfig {
                    alpha: *alpha,
                    tunneling: *tunneling,
                    barrier_patience: *barrier_patience,
                },
            ))
        }
        EngineSpec::PacketSim {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
        } => {
            let mix = require_mix(mix, "packet_sim")?;
            if *diffusion_period <= 0.0 {
                return Err(SpecError::at("engine.diffusion_period", "must be positive"));
            }
            Box::new(PacketEngine::new(
                &topo.tree,
                &mix,
                PacketSimConfig {
                    seed: spec.seed,
                    link_delay: *link_delay,
                    gossip_period: *gossip_period,
                    diffusion_period: *diffusion_period,
                    measure_window: *measure_window,
                    alpha: *alpha,
                    tunneling: *tunneling,
                    barrier_patience: *barrier_patience,
                    gossip_loss: *gossip_loss,
                    hysteresis: *hysteresis,
                    noise_sigmas: *noise_sigmas,
                },
            ))
        }
        EngineSpec::PacketSimPar {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
            workers,
        } => {
            let mix = require_mix(mix, "packet_sim_par")?;
            if *diffusion_period <= 0.0 {
                return Err(SpecError::at("engine.diffusion_period", "must be positive"));
            }
            if *link_delay <= 0.0 {
                return Err(SpecError::at(
                    "engine.link_delay",
                    "the parallel engine needs a positive link delay (its conservative lookahead)",
                ));
            }
            if *workers == 0 {
                return Err(SpecError::at("engine.workers", "must be at least 1"));
            }
            Box::new(ParPacketEngine::with_rebalance(
                &topo.tree,
                &mix,
                PacketSimConfig {
                    seed: spec.seed,
                    link_delay: *link_delay,
                    gossip_period: *gossip_period,
                    diffusion_period: *diffusion_period,
                    measure_window: *measure_window,
                    alpha: *alpha,
                    tunneling: *tunneling,
                    barrier_patience: *barrier_patience,
                    gossip_loss: *gossip_loss,
                    hysteresis: *hysteresis,
                    noise_sigmas: *noise_sigmas,
                },
                *workers,
                rebalance_config(spec),
            ))
        }
        EngineSpec::PacketSimDist {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
            workers,
        } => {
            let mix = require_mix(mix, "packet_sim_dist")?;
            if *diffusion_period <= 0.0 {
                return Err(SpecError::at("engine.diffusion_period", "must be positive"));
            }
            if *link_delay <= 0.0 {
                return Err(SpecError::at(
                    "engine.link_delay",
                    "the distributed engine needs a positive link delay (its conservative lookahead)",
                ));
            }
            if *workers == 0 {
                return Err(SpecError::at("engine.workers", "must be at least 1"));
            }
            let engine = DistPacketEngine::launch(
                &topo.tree,
                &mix,
                PacketSimConfig {
                    seed: spec.seed,
                    link_delay: *link_delay,
                    gossip_period: *gossip_period,
                    diffusion_period: *diffusion_period,
                    measure_window: *measure_window,
                    alpha: *alpha,
                    tunneling: *tunneling,
                    barrier_patience: *barrier_patience,
                    gossip_loss: *gossip_loss,
                    hysteresis: *hysteresis,
                    noise_sigmas: *noise_sigmas,
                },
                *workers,
                dist.clone(),
                rebalance_config(spec),
            )
            .map_err(|e| SpecError::at("engine", format!("distributed launch failed: {e}")))?;
            Box::new(engine)
        }
        EngineSpec::ForestWave {
            alpha,
            coupled,
            roots,
        } => {
            if roots.is_empty() {
                return Err(SpecError::at("engine.roots", "needs at least one root"));
            }
            for (i, &r) in roots.iter().enumerate() {
                if r >= topo.tree.len() {
                    return Err(SpecError::at(
                        format!("engine.roots[{i}]"),
                        format!("node {r} is outside the {}-node topology", topo.tree.len()),
                    ));
                }
            }
            let graph = Graph::from(&topo.tree);
            let root_ids: Vec<NodeId> = roots.iter().map(|&r| NodeId::new(r)).collect();
            let forest = Forest::from_graph(&graph, &root_ids)
                .map_err(|e| SpecError::at("engine.roots", format!("invalid forest: {e}")))?;
            let demands = vec![rates.clone(); roots.len()];
            Box::new(ForestWave::new(
                &forest,
                &demands,
                ForestWaveConfig {
                    alpha: *alpha,
                    coupling: if *coupled {
                        Coupling::Coupled
                    } else {
                        Coupling::Uncoupled
                    },
                },
            ))
        }
        EngineSpec::Cluster {
            alpha,
            rounds,
            channel_capacity,
        } => Box::new(ClusterEngine::new(
            topo.tree.clone(),
            rates,
            ClusterConfig {
                alpha: *alpha,
                rounds: *rounds,
                channel_capacity: *channel_capacity,
            },
        )),
        EngineSpec::Baselines {
            schemes,
            replicas,
            lookup_msgs,
            gle_iterations,
            webwave_rounds,
            gossip_per_second,
        } => {
            if schemes.is_empty() {
                return Err(SpecError::at("engine.schemes", "needs at least one scheme"));
            }
            Box::new(BaselineEngine::new(
                topo.tree.clone(),
                rates,
                schemes.clone(),
                BaselineParams {
                    replicas: *replicas,
                    lookup_msgs: *lookup_msgs,
                    gle_iterations: *gle_iterations,
                    webwave_rounds: *webwave_rounds,
                    gossip_per_second: *gossip_per_second,
                },
            ))
        }
    })
}

fn render(spec: &ScenarioSpec, rows: &[RunRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario {} — engine {} (seed {})",
        spec.name,
        spec.engine.kind(),
        spec.seed
    );
    for row in rows {
        let label = if row.label.is_empty() {
            "run".to_string()
        } else {
            format!("run [{}]", row.label)
        };
        let mut line = format!("  {label}: rounds {}", row.outcome.rounds);
        if let (Some(initial), Some(last)) =
            (row.outcome.initial_distance(), row.outcome.final_distance())
        {
            let _ = write!(line, ", convergence {initial:.3} -> {last:.3e}");
        }
        if let Some(load) = &row.outcome.load {
            let _ = write!(line, ", max load {:.3}", load.max());
        }
        let _ = write!(
            line,
            ", {}",
            if row.converged {
                "converged"
            } else {
                "not converged"
            }
        );
        out.push_str(&line);
        out.push('\n');
        if !row.outcome.schemes.is_empty() {
            let _ = writeln!(
                out,
                "    {:<16} {:>10} {:>12} {:>14} {:>14} {:>10}",
                "scheme", "max load", "dist to GLE", "ctrl msgs/req", "data hops/req", "needs dir"
            );
            for s in &row.outcome.schemes {
                let _ = writeln!(
                    out,
                    "    {:<16} {:>10.3} {:>12.3} {:>14.3} {:>14.3} {:>10}",
                    s.name,
                    s.max_load,
                    s.distance_to_gle,
                    s.control_msgs_per_request,
                    s.data_hops_per_request,
                    if s.violates_nss { "yes" } else { "no" }
                );
            }
        } else if !row.outcome.metrics.is_empty() {
            let rendered: Vec<String> = row
                .outcome
                .metrics
                .iter()
                .filter(|(name, _)| !name.starts_with("event."))
                .map(|(name, value)| format!("{name}={value:.4}"))
                .collect();
            let _ = writeln!(out, "    metrics: {}", rendered.join("  "));
        }
        if let Some(snap) = &row.outcome.telemetry {
            let _ = writeln!(out, "    telemetry:");
            for line in snap.render_text().lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        for m in &row.events {
            let mut line = format!("    event[{}] {} @ round {}", m.index, m.kind, m.round);
            match &m.rejected {
                Some(err) => {
                    let _ = write!(line, ": rejected ({err})");
                }
                None => {
                    match m.recovery_rounds {
                        Some(r) => {
                            let _ = write!(line, ": re-converged in {r} rounds");
                        }
                        None => {
                            let _ = write!(line, ": not re-converged");
                        }
                    }
                    if let Some(p) = m.peak_distance {
                        let _ = write!(line, ", peak distance {p:.3}");
                    }
                    if let Some(p) = m.peak_load {
                        let _ = write!(line, ", peak load {p:.3}");
                    }
                }
            }
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}
