//! JSON (de)serialization of [`ScenarioSpec`].
//!
//! The mapping is hand-written against the vendored `serde_json::Value`
//! (the vendored `serde` derives are no-ops — see `vendor/serde/`): a
//! strict reader that rejects unknown fields and reports errors with a
//! dotted JSON path (`engine.alpha: expected a number`), and a writer
//! that always emits every field so `parse(render(spec)) == spec`
//! exactly.

use crate::error::SpecError;
use crate::events::{EventKindSpec, EventSpec, EventsSpec, DEFAULT_RECOVERY_THRESHOLD};
use crate::spec::{
    BaselineScheme, DocMixSpec, EngineSpec, PaperFigure, RatesSpec, RebalanceSpec, ScenarioSpec,
    Sweep, SweepParam, TelemetrySpec, Termination, TopologySpec, WorkloadSpec, DEFAULT_SEED,
};
use serde_json::{Map, Value};
use ww_telemetry::Level;

impl ScenarioSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] whose `path` names the offending field for
    /// any syntax error, missing/unknown field, or out-of-range value.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, SpecError> {
        let value = serde_json::from_str(text)?;
        Self::from_value(&value)
    }

    /// Parses a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] with a dotted field path, as
    /// [`ScenarioSpec::from_json`].
    pub fn from_value(value: &Value) -> Result<ScenarioSpec, SpecError> {
        let map = as_object(value, "")?;
        reject_unknown(
            map,
            &[
                "name",
                "topology",
                "workload",
                "engine",
                "termination",
                "seed",
                "sweep",
                "events",
                "telemetry",
                "rebalance",
            ],
            "",
        )?;
        let name = req_str(map, "name", "")?.to_string();
        let topology = parse_topology(req(map, "topology", "")?)?;
        let workload = parse_workload(req(map, "workload", "")?)?;
        let engine = parse_engine(req(map, "engine", "")?)?;
        let termination = parse_termination(req(map, "termination", "")?)?;
        let seed = match map.get("seed") {
            Some(v) => {
                let seed = parse_u64(v, "seed")?;
                // JSON numbers are f64: only integers up to 2^53 survive a
                // round trip exactly, and a seed that silently changes is
                // worse than an error.
                if seed > (1u64 << 53) {
                    return Err(SpecError::at(
                        "seed",
                        format!("seed {seed} exceeds 2^53 and cannot round-trip through JSON"),
                    ));
                }
                seed
            }
            None => DEFAULT_SEED,
        };
        let sweep = match map.get("sweep") {
            Some(Value::Null) | None => None,
            Some(v) => Some(parse_sweep(v)?),
        };
        let events = match map.get("events") {
            Some(Value::Null) | None => None,
            Some(v) => Some(parse_events(v)?),
        };
        let telemetry = match map.get("telemetry") {
            Some(Value::Null) | None => TelemetrySpec::default(),
            Some(v) => parse_telemetry(v)?,
        };
        let rebalance = match map.get("rebalance") {
            Some(Value::Null) | None => None,
            Some(v) => {
                // Only the sharded engines have shards to re-balance.
                // packet_sim_dist parses fine and is rejected at launch
                // with a typed DistError::Unsupported instead, so the
                // refusal names the actual limitation.
                if !matches!(
                    engine,
                    EngineSpec::PacketSimPar { .. } | EngineSpec::PacketSimDist { .. }
                ) {
                    return Err(SpecError::at(
                        "rebalance",
                        format!(
                            "adaptive rebalancing applies only to the packet_sim_par / \
                             packet_sim_dist engines, not {}",
                            engine.kind()
                        ),
                    ));
                }
                Some(parse_rebalance(v)?)
            }
        };
        Ok(ScenarioSpec {
            name,
            topology,
            workload,
            engine,
            termination,
            seed,
            sweep,
            events,
            telemetry,
            rebalance,
        })
    }

    /// Renders the spec as pretty-printed JSON. Every field is emitted
    /// explicitly (including defaults), so rendering then parsing yields
    /// an identical spec.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value())
    }

    /// Renders the spec as a JSON value tree.
    pub fn to_value(&self) -> Value {
        let mut map = Map::new();
        map.insert("name", Value::from(self.name.as_str()));
        map.insert("topology", topology_value(&self.topology));
        map.insert("workload", workload_value(&self.workload));
        map.insert("engine", engine_value(&self.engine));
        map.insert("termination", termination_value(&self.termination));
        map.insert("seed", Value::Number(self.seed as f64));
        if let Some(sweep) = &self.sweep {
            map.insert("sweep", sweep_value(sweep));
        }
        if let Some(events) = &self.events {
            map.insert("events", events_value(events));
        }
        map.insert("telemetry", telemetry_value(&self.telemetry));
        if let Some(rebalance) = &self.rebalance {
            map.insert("rebalance", rebalance_value(rebalance));
        }
        Value::Object(map)
    }
}

// ---------------------------------------------------------------------
// Reader helpers
// ---------------------------------------------------------------------

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn as_object<'a>(value: &'a Value, path: &str) -> Result<&'a Map, SpecError> {
    value.as_object().ok_or_else(|| {
        SpecError::at(
            path,
            format!("expected an object, got {}", value.type_name()),
        )
    })
}

fn reject_unknown(map: &Map, allowed: &[&str], path: &str) -> Result<(), SpecError> {
    for key in map.keys() {
        if !allowed.contains(&key) {
            return Err(SpecError::at(
                join(path, key),
                format!("unknown field (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

fn req<'a>(map: &'a Map, key: &str, path: &str) -> Result<&'a Value, SpecError> {
    map.get(key)
        .ok_or_else(|| SpecError::at(join(path, key), "missing required field"))
}

fn req_str<'a>(map: &'a Map, key: &str, path: &str) -> Result<&'a str, SpecError> {
    let v = req(map, key, path)?;
    v.as_str().ok_or_else(|| {
        SpecError::at(
            join(path, key),
            format!("expected a string, got {}", v.type_name()),
        )
    })
}

fn parse_f64(value: &Value, path: &str) -> Result<f64, SpecError> {
    value.as_f64().ok_or_else(|| {
        SpecError::at(
            path,
            format!("expected a number, got {}", value.type_name()),
        )
    })
}

fn parse_u64(value: &Value, path: &str) -> Result<u64, SpecError> {
    let x = parse_f64(value, path)?;
    if x < 0.0 || x.fract() != 0.0 || x > u64::MAX as f64 {
        return Err(SpecError::at(
            path,
            format!("expected a non-negative integer, got {x}"),
        ));
    }
    Ok(x as u64)
}

fn parse_usize(value: &Value, path: &str) -> Result<usize, SpecError> {
    Ok(parse_u64(value, path)? as usize)
}

/// A u64 that must survive JSON's f64 number representation exactly.
fn parse_u53(value: &Value, path: &str) -> Result<u64, SpecError> {
    let x = parse_u64(value, path)?;
    if x > (1u64 << 53) {
        return Err(SpecError::at(
            path,
            format!("{x} exceeds 2^53 and cannot round-trip through JSON"),
        ));
    }
    Ok(x)
}

fn parse_bool(value: &Value, path: &str) -> Result<bool, SpecError> {
    value.as_bool().ok_or_else(|| {
        SpecError::at(
            path,
            format!("expected a boolean, got {}", value.type_name()),
        )
    })
}

fn req_f64(map: &Map, key: &str, path: &str) -> Result<f64, SpecError> {
    parse_f64(req(map, key, path)?, &join(path, key))
}

fn req_usize(map: &Map, key: &str, path: &str) -> Result<usize, SpecError> {
    parse_usize(req(map, key, path)?, &join(path, key))
}

fn opt_f64(map: &Map, key: &str, path: &str, default: f64) -> Result<f64, SpecError> {
    match map.get(key) {
        Some(v) => parse_f64(v, &join(path, key)),
        None => Ok(default),
    }
}

fn opt_usize(map: &Map, key: &str, path: &str, default: usize) -> Result<usize, SpecError> {
    match map.get(key) {
        Some(v) => parse_usize(v, &join(path, key)),
        None => Ok(default),
    }
}

fn opt_bool(map: &Map, key: &str, path: &str, default: bool) -> Result<bool, SpecError> {
    match map.get(key) {
        Some(v) => parse_bool(v, &join(path, key)),
        None => Ok(default),
    }
}

/// `"alpha": null` or absent means the engine default; a number is an
/// explicit override, validated to `(0, 1)`.
fn opt_alpha(map: &Map, path: &str) -> Result<Option<f64>, SpecError> {
    match map.get("alpha") {
        None | Some(Value::Null) => Ok(None),
        Some(v) => {
            let x = parse_f64(v, &join(path, "alpha"))?;
            if x <= 0.0 || x >= 1.0 {
                return Err(SpecError::at(
                    join(path, "alpha"),
                    format!("alpha must lie in (0, 1), got {x}"),
                ));
            }
            Ok(Some(x))
        }
    }
}

fn kind<'a>(map: &'a Map, path: &str) -> Result<&'a str, SpecError> {
    req_str(map, "kind", path)
}

// ---------------------------------------------------------------------
// Section readers
// ---------------------------------------------------------------------

fn parse_topology(value: &Value) -> Result<TopologySpec, SpecError> {
    let path = "topology";
    let map = as_object(value, path)?;
    match kind(map, path)? {
        "paper" => {
            reject_unknown(map, &["kind", "figure"], path)?;
            let figure = match req_str(map, "figure", path)? {
                "fig2a" => PaperFigure::Fig2a,
                "fig2b" => PaperFigure::Fig2b,
                "fig4" => PaperFigure::Fig4,
                "fig6" => PaperFigure::Fig6,
                "fig7" => PaperFigure::Fig7,
                other => {
                    return Err(SpecError::at(
                        "topology.figure",
                        format!("unknown figure \"{other}\" (expected fig2a, fig2b, fig4, fig6, or fig7)"),
                    ))
                }
            };
            Ok(TopologySpec::Paper { figure })
        }
        "path" => {
            reject_unknown(map, &["kind", "nodes"], path)?;
            Ok(TopologySpec::Path {
                nodes: req_usize(map, "nodes", path)?,
            })
        }
        "star" => {
            reject_unknown(map, &["kind", "nodes"], path)?;
            Ok(TopologySpec::Star {
                nodes: req_usize(map, "nodes", path)?,
            })
        }
        "k_ary" => {
            reject_unknown(map, &["kind", "arity", "depth"], path)?;
            Ok(TopologySpec::KAry {
                arity: req_usize(map, "arity", path)?,
                depth: req_usize(map, "depth", path)?,
            })
        }
        "two_level" => {
            reject_unknown(map, &["kind", "regions", "leaves"], path)?;
            Ok(TopologySpec::TwoLevel {
                regions: req_usize(map, "regions", path)?,
                leaves: req_usize(map, "leaves", path)?,
            })
        }
        "caterpillar" => {
            reject_unknown(map, &["kind", "spine", "legs"], path)?;
            Ok(TopologySpec::Caterpillar {
                spine: req_usize(map, "spine", path)?,
                legs: req_usize(map, "legs", path)?,
            })
        }
        "broom" => {
            reject_unknown(map, &["kind", "handle", "bristles"], path)?;
            Ok(TopologySpec::Broom {
                handle: req_usize(map, "handle", path)?,
                bristles: req_usize(map, "bristles", path)?,
            })
        }
        "random_depth" => {
            reject_unknown(map, &["kind", "nodes", "depth"], path)?;
            Ok(TopologySpec::RandomDepth {
                nodes: req_usize(map, "nodes", path)?,
                depth: req_usize(map, "depth", path)?,
            })
        }
        "explicit" => {
            reject_unknown(map, &["kind", "parents"], path)?;
            let field = join(path, "parents");
            let items = req(map, "parents", path)?
                .as_array()
                .ok_or_else(|| SpecError::at(&field, "expected an array of parent ids (null for the root)"))?;
            let mut parents = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                parents.push(match item {
                    Value::Null => None,
                    v => Some(parse_usize(v, &format!("{field}[{i}]"))?),
                });
            }
            Ok(TopologySpec::Explicit { parents })
        }
        other => Err(SpecError::at(
            "topology.kind",
            format!(
                "unknown topology \"{other}\" (expected paper, path, star, k_ary, two_level, caterpillar, broom, random_depth, or explicit)"
            ),
        )),
    }
}

fn parse_workload(value: &Value) -> Result<WorkloadSpec, SpecError> {
    let path = "workload";
    let map = as_object(value, path)?;
    reject_unknown(map, &["rates", "doc_mix"], path)?;
    let rates = parse_rates(req(map, "rates", path)?, "workload.rates")?;
    let doc_mix = match map.get("doc_mix") {
        None | Some(Value::Null) => None,
        Some(v) => Some(parse_doc_mix(v, "workload.doc_mix")?),
    };
    Ok(WorkloadSpec { rates, doc_mix })
}

fn parse_rates(value: &Value, path: &str) -> Result<RatesSpec, SpecError> {
    let map = as_object(value, path)?;
    match kind(map, path)? {
        "paper" => {
            reject_unknown(map, &["kind"], path)?;
            Ok(RatesSpec::Paper)
        }
        "uniform" => {
            reject_unknown(map, &["kind", "rate"], path)?;
            Ok(RatesSpec::Uniform {
                rate: req_f64(map, "rate", path)?,
            })
        }
        "leaf_only" => {
            reject_unknown(map, &["kind", "rate"], path)?;
            Ok(RatesSpec::LeafOnly {
                rate: req_f64(map, "rate", path)?,
            })
        }
        "random_uniform" => {
            reject_unknown(map, &["kind", "lo", "hi"], path)?;
            Ok(RatesSpec::RandomUniform {
                lo: req_f64(map, "lo", path)?,
                hi: req_f64(map, "hi", path)?,
            })
        }
        "zipf_nodes" => {
            reject_unknown(map, &["kind", "total", "theta"], path)?;
            Ok(RatesSpec::ZipfNodes {
                total: req_f64(map, "total", path)?,
                theta: req_f64(map, "theta", path)?,
            })
        }
        "explicit" => {
            reject_unknown(map, &["kind", "rates"], path)?;
            let field = join(path, "rates");
            let items = req(map, "rates", path)?
                .as_array()
                .ok_or_else(|| SpecError::at(&field, "expected an array of numbers"))?;
            let mut rates = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                rates.push(parse_f64(item, &format!("{field}[{i}]"))?);
            }
            Ok(RatesSpec::Explicit { rates })
        }
        other => Err(SpecError::at(
            join(path, "kind"),
            format!(
                "unknown rates \"{other}\" (expected paper, uniform, leaf_only, random_uniform, zipf_nodes, or explicit)"
            ),
        )),
    }
}

fn parse_doc_mix(value: &Value, path: &str) -> Result<DocMixSpec, SpecError> {
    let map = as_object(value, path)?;
    match kind(map, path)? {
        "paper" => {
            reject_unknown(map, &["kind"], path)?;
            Ok(DocMixSpec::Paper)
        }
        "shared_zipf" => {
            reject_unknown(map, &["kind", "docs", "theta"], path)?;
            Ok(DocMixSpec::SharedZipf {
                docs: req_usize(map, "docs", path)?,
                theta: req_f64(map, "theta", path)?,
            })
        }
        other => Err(SpecError::at(
            join(path, "kind"),
            format!("unknown doc mix \"{other}\" (expected paper or shared_zipf)"),
        )),
    }
}

fn parse_engine(value: &Value) -> Result<EngineSpec, SpecError> {
    let path = "engine";
    let map = as_object(value, path)?;
    match kind(map, path)? {
        "rate_wave" => {
            reject_unknown(map, &["kind", "alpha", "staleness"], path)?;
            Ok(EngineSpec::RateWave {
                alpha: opt_alpha(map, path)?,
                staleness: opt_usize(map, "staleness", path, 0)?,
            })
        }
        "doc_sim" => {
            reject_unknown(map, &["kind", "alpha", "tunneling", "barrier_patience"], path)?;
            Ok(EngineSpec::DocSim {
                alpha: opt_alpha(map, path)?,
                tunneling: opt_bool(map, "tunneling", path, true)?,
                barrier_patience: opt_usize(map, "barrier_patience", path, 2)?,
            })
        }
        "packet_sim" => {
            reject_unknown(
                map,
                &[
                    "kind",
                    "alpha",
                    "tunneling",
                    "barrier_patience",
                    "link_delay",
                    "gossip_period",
                    "diffusion_period",
                    "measure_window",
                    "gossip_loss",
                    "hysteresis",
                    "noise_sigmas",
                ],
                path,
            )?;
            Ok(EngineSpec::PacketSim {
                alpha: opt_alpha(map, path)?,
                tunneling: opt_bool(map, "tunneling", path, true)?,
                barrier_patience: opt_usize(map, "barrier_patience", path, 2)?,
                link_delay: opt_f64(map, "link_delay", path, 0.005)?,
                gossip_period: opt_f64(map, "gossip_period", path, 0.5)?,
                diffusion_period: opt_f64(map, "diffusion_period", path, 1.0)?,
                measure_window: opt_f64(map, "measure_window", path, 1.0)?,
                gossip_loss: opt_f64(map, "gossip_loss", path, 0.0)?,
                hysteresis: opt_f64(map, "hysteresis", path, 0.05)?,
                noise_sigmas: opt_f64(map, "noise_sigmas", path, 3.0)?,
            })
        }
        "packet_sim_par" => {
            reject_unknown(
                map,
                &[
                    "kind",
                    "alpha",
                    "tunneling",
                    "barrier_patience",
                    "link_delay",
                    "gossip_period",
                    "diffusion_period",
                    "measure_window",
                    "gossip_loss",
                    "hysteresis",
                    "noise_sigmas",
                    "workers",
                ],
                path,
            )?;
            let link_delay = opt_f64(map, "link_delay", path, 0.005)?;
            if link_delay <= 0.0 {
                return Err(SpecError::at(
                    "engine.link_delay",
                    format!(
                        "the parallel engine needs a positive link delay \
                         (its conservative lookahead), got {link_delay}"
                    ),
                ));
            }
            let workers = opt_usize(map, "workers", path, 4)?;
            if workers == 0 {
                return Err(SpecError::at("engine.workers", "must be at least 1"));
            }
            Ok(EngineSpec::PacketSimPar {
                alpha: opt_alpha(map, path)?,
                tunneling: opt_bool(map, "tunneling", path, true)?,
                barrier_patience: opt_usize(map, "barrier_patience", path, 2)?,
                link_delay,
                gossip_period: opt_f64(map, "gossip_period", path, 0.5)?,
                diffusion_period: opt_f64(map, "diffusion_period", path, 1.0)?,
                measure_window: opt_f64(map, "measure_window", path, 1.0)?,
                gossip_loss: opt_f64(map, "gossip_loss", path, 0.0)?,
                hysteresis: opt_f64(map, "hysteresis", path, 0.05)?,
                noise_sigmas: opt_f64(map, "noise_sigmas", path, 3.0)?,
                workers,
            })
        }
        "packet_sim_dist" => {
            reject_unknown(
                map,
                &[
                    "kind",
                    "alpha",
                    "tunneling",
                    "barrier_patience",
                    "link_delay",
                    "gossip_period",
                    "diffusion_period",
                    "measure_window",
                    "gossip_loss",
                    "hysteresis",
                    "noise_sigmas",
                    "workers",
                ],
                path,
            )?;
            let link_delay = opt_f64(map, "link_delay", path, 0.005)?;
            if link_delay <= 0.0 {
                return Err(SpecError::at(
                    "engine.link_delay",
                    format!(
                        "the distributed engine needs a positive link delay \
                         (its conservative lookahead), got {link_delay}"
                    ),
                ));
            }
            let workers = opt_usize(map, "workers", path, 2)?;
            if workers == 0 {
                return Err(SpecError::at("engine.workers", "must be at least 1"));
            }
            Ok(EngineSpec::PacketSimDist {
                alpha: opt_alpha(map, path)?,
                tunneling: opt_bool(map, "tunneling", path, true)?,
                barrier_patience: opt_usize(map, "barrier_patience", path, 2)?,
                link_delay,
                gossip_period: opt_f64(map, "gossip_period", path, 0.5)?,
                diffusion_period: opt_f64(map, "diffusion_period", path, 1.0)?,
                measure_window: opt_f64(map, "measure_window", path, 1.0)?,
                gossip_loss: opt_f64(map, "gossip_loss", path, 0.0)?,
                hysteresis: opt_f64(map, "hysteresis", path, 0.05)?,
                noise_sigmas: opt_f64(map, "noise_sigmas", path, 3.0)?,
                workers,
            })
        }
        "forest_wave" => {
            reject_unknown(map, &["kind", "alpha", "coupled", "roots"], path)?;
            let field = join(path, "roots");
            let items = req(map, "roots", path)?
                .as_array()
                .ok_or_else(|| SpecError::at(&field, "expected an array of node ids"))?;
            let mut roots = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                roots.push(parse_usize(item, &format!("{field}[{i}]"))?);
            }
            Ok(EngineSpec::ForestWave {
                alpha: opt_alpha(map, path)?,
                coupled: opt_bool(map, "coupled", path, true)?,
                roots,
            })
        }
        "cluster" => {
            reject_unknown(map, &["kind", "alpha", "rounds", "channel_capacity"], path)?;
            Ok(EngineSpec::Cluster {
                alpha: opt_alpha(map, path)?,
                rounds: opt_usize(map, "rounds", path, 4000)?,
                channel_capacity: opt_usize(map, "channel_capacity", path, 1024)?,
            })
        }
        "baselines" => {
            reject_unknown(
                map,
                &[
                    "kind",
                    "schemes",
                    "replicas",
                    "lookup_msgs",
                    "gle_iterations",
                    "webwave_rounds",
                    "gossip_per_second",
                ],
                path,
            )?;
            let field = join(path, "schemes");
            let schemes = match map.get("schemes") {
                None => BaselineScheme::all(),
                Some(v) => {
                    let items = v
                        .as_array()
                        .ok_or_else(|| SpecError::at(&field, "expected an array of scheme names"))?;
                    let mut out = Vec::new();
                    for (i, item) in items.iter().enumerate() {
                        let item_path = format!("{field}[{i}]");
                        let name = item
                            .as_str()
                            .ok_or_else(|| SpecError::at(&item_path, "expected a scheme name"))?;
                        match name {
                            "all" => out.extend(BaselineScheme::all()),
                            "no-cache" => out.push(BaselineScheme::NoCache),
                            "directory" => out.push(BaselineScheme::Directory),
                            "dns-rr" => out.push(BaselineScheme::DnsRoundRobin),
                            "gle-migration" => out.push(BaselineScheme::GleMigration),
                            "webwave" => out.push(BaselineScheme::WebWave),
                            "webfold-oracle" => out.push(BaselineScheme::WebFoldOracle),
                            other => {
                                return Err(SpecError::at(
                                    &item_path,
                                    format!(
                                        "unknown scheme \"{other}\" (expected all, no-cache, directory, dns-rr, gle-migration, webwave, or webfold-oracle)"
                                    ),
                                ))
                            }
                        }
                    }
                    out
                }
            };
            Ok(EngineSpec::Baselines {
                schemes,
                replicas: opt_usize(map, "replicas", path, 0)?,
                lookup_msgs: opt_f64(map, "lookup_msgs", path, 2.0)?,
                gle_iterations: opt_usize(map, "gle_iterations", path, 2000)?,
                webwave_rounds: opt_usize(map, "webwave_rounds", path, 4000)?,
                gossip_per_second: opt_f64(map, "gossip_per_second", path, 2.0)?,
            })
        }
        other => Err(SpecError::at(
            "engine.kind",
            format!(
                "unknown engine \"{other}\" (expected rate_wave, doc_sim, packet_sim, packet_sim_par, packet_sim_dist, forest_wave, cluster, or baselines)"
            ),
        )),
    }
}

fn parse_termination(value: &Value) -> Result<Termination, SpecError> {
    let path = "termination";
    let map = as_object(value, path)?;
    match kind(map, path)? {
        "rounds" => {
            reject_unknown(map, &["kind", "max"], path)?;
            Ok(Termination::Rounds {
                max: req_usize(map, "max", path)?,
            })
        }
        "converged" => {
            reject_unknown(map, &["kind", "threshold", "max_rounds"], path)?;
            Ok(Termination::Converged {
                threshold: req_f64(map, "threshold", path)?,
                max_rounds: opt_usize(map, "max_rounds", path, 100_000)?,
            })
        }
        "wall_clock" => {
            reject_unknown(map, &["kind", "seconds", "max_rounds"], path)?;
            Ok(Termination::WallClock {
                seconds: req_f64(map, "seconds", path)?,
                max_rounds: opt_usize(map, "max_rounds", path, usize::MAX)?,
            })
        }
        other => Err(SpecError::at(
            "termination.kind",
            format!("unknown termination \"{other}\" (expected rounds, converged, or wall_clock)"),
        )),
    }
}

fn parse_sweep(value: &Value) -> Result<Sweep, SpecError> {
    let path = "sweep";
    let map = as_object(value, path)?;
    reject_unknown(map, &["param", "values"], path)?;
    let param = match req_str(map, "param", path)? {
        "staleness" => SweepParam::Staleness,
        "alpha" => SweepParam::Alpha,
        "tunneling" => SweepParam::Tunneling,
        "gossip_loss" => SweepParam::GossipLoss,
        "workers" => SweepParam::Workers,
        "doc_theta" => SweepParam::DocTheta,
        "seed" => SweepParam::Seed,
        other => {
            return Err(SpecError::at(
                "sweep.param",
                format!(
                    "unknown sweep parameter \"{other}\" (expected staleness, alpha, tunneling, gossip_loss, workers, doc_theta, or seed)"
                ),
            ))
        }
    };
    let field = join(path, "values");
    let items = req(map, "values", path)?
        .as_array()
        .ok_or_else(|| SpecError::at(&field, "expected an array of numbers"))?;
    if items.is_empty() {
        return Err(SpecError::at(&field, "sweep needs at least one value"));
    }
    let mut values = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        values.push(parse_f64(item, &format!("{field}[{i}]"))?);
    }
    Ok(Sweep { param, values })
}

fn parse_telemetry(value: &Value) -> Result<TelemetrySpec, SpecError> {
    let path = "telemetry";
    let map = as_object(value, path)?;
    reject_unknown(map, &["level", "trace_out"], path)?;
    let level = match map.get("level") {
        None | Some(Value::Null) => Level::Off,
        Some(v) => {
            let name = v.as_str().ok_or_else(|| {
                SpecError::at(
                    "telemetry.level",
                    format!("expected a string, got {}", v.type_name()),
                )
            })?;
            Level::parse(name).ok_or_else(|| {
                SpecError::at(
                    "telemetry.level",
                    format!("unknown level \"{name}\" (expected off, counters, or full)"),
                )
            })?
        }
    };
    let trace_out = match map.get("trace_out") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| {
                    SpecError::at(
                        "telemetry.trace_out",
                        format!("expected a file path string, got {}", v.type_name()),
                    )
                })?
                .to_string(),
        ),
    };
    Ok(TelemetrySpec { level, trace_out })
}

fn parse_rebalance(value: &Value) -> Result<RebalanceSpec, SpecError> {
    let path = "rebalance";
    let map = as_object(value, path)?;
    reject_unknown(map, &["trigger_imbalance", "min_epoch_gap"], path)?;
    let trigger_imbalance = req_f64(map, "trigger_imbalance", path)?;
    if !trigger_imbalance.is_finite() || trigger_imbalance < 1.0 {
        return Err(SpecError::at(
            "rebalance.trigger_imbalance",
            format!("expected a finite max-over-mean ratio of at least 1, got {trigger_imbalance}"),
        ));
    }
    let min_epoch_gap = match map.get("min_epoch_gap") {
        Some(v) => parse_u53(v, &join(path, "min_epoch_gap"))?,
        None => 1,
    };
    if min_epoch_gap == 0 {
        return Err(SpecError::at(
            "rebalance.min_epoch_gap",
            "the observation window must span at least 1 epoch",
        ));
    }
    Ok(RebalanceSpec {
        trigger_imbalance,
        min_epoch_gap,
    })
}

fn parse_events(value: &Value) -> Result<EventsSpec, SpecError> {
    let path = "events";
    let map = as_object(value, path)?;
    reject_unknown(
        map,
        &["schedule", "recovery_threshold", "batched_barriers"],
        path,
    )?;
    let recovery_threshold = opt_f64(map, "recovery_threshold", path, DEFAULT_RECOVERY_THRESHOLD)?;
    let batched_barriers = opt_bool(map, "batched_barriers", path, false)?;
    if recovery_threshold < 0.0 {
        return Err(SpecError::at(
            "events.recovery_threshold",
            format!("must be non-negative, got {recovery_threshold}"),
        ));
    }
    let field = join(path, "schedule");
    let items = req(map, "schedule", path)?
        .as_array()
        .ok_or_else(|| SpecError::at(&field, "expected an array of events"))?;
    let mut schedule = Vec::with_capacity(items.len());
    let mut prev_round = 0usize;
    for (i, item) in items.iter().enumerate() {
        let item_path = format!("{field}[{i}]");
        let event = parse_event(item, &item_path)?;
        if event.round < prev_round {
            return Err(SpecError::at(
                format!("{item_path}.round"),
                format!(
                    "schedule must be sorted by round ({} follows {prev_round})",
                    event.round
                ),
            ));
        }
        prev_round = event.round;
        schedule.push(event);
    }
    Ok(EventsSpec {
        schedule,
        recovery_threshold,
        batched_barriers,
    })
}

fn parse_event(value: &Value, path: &str) -> Result<EventSpec, SpecError> {
    let map = as_object(value, path)?;
    let round = req_usize(map, "round", path)?;
    let kind = match kind(map, path)? {
        "node_join" => {
            reject_unknown(map, &["round", "kind", "parent", "rate"], path)?;
            let rate = req_f64(map, "rate", path)?;
            if !rate.is_finite() || rate < 0.0 {
                return Err(SpecError::at(
                    join(path, "rate"),
                    format!("rate must be finite and non-negative, got {rate}"),
                ));
            }
            EventKindSpec::NodeJoin {
                parent: req_usize(map, "parent", path)?,
                rate,
            }
        }
        "node_leave" => {
            reject_unknown(map, &["round", "kind", "node"], path)?;
            EventKindSpec::NodeLeave {
                node: req_usize(map, "node", path)?,
            }
        }
        "link_fail" => {
            reject_unknown(map, &["round", "kind", "node"], path)?;
            EventKindSpec::LinkFail {
                node: req_usize(map, "node", path)?,
            }
        }
        "link_heal" => {
            reject_unknown(map, &["round", "kind", "node"], path)?;
            EventKindSpec::LinkHeal {
                node: req_usize(map, "node", path)?,
            }
        }
        "doc_publish" => {
            reject_unknown(map, &["round", "kind", "doc", "origin", "rate"], path)?;
            let rate = req_f64(map, "rate", path)?;
            if !rate.is_finite() || rate < 0.0 {
                return Err(SpecError::at(
                    join(path, "rate"),
                    format!("rate must be finite and non-negative, got {rate}"),
                ));
            }
            EventKindSpec::DocPublish {
                doc: parse_u53(req(map, "doc", path)?, &join(path, "doc"))?,
                origin: req_usize(map, "origin", path)?,
                rate,
            }
        }
        "doc_update" => {
            reject_unknown(map, &["round", "kind", "doc"], path)?;
            EventKindSpec::DocUpdate {
                doc: parse_u53(req(map, "doc", path)?, &join(path, "doc"))?,
            }
        }
        "workload_shift" => {
            reject_unknown(map, &["round", "kind", "rates", "doc_mix", "seed"], path)?;
            let rates = match map.get("rates") {
                None | Some(Value::Null) => None,
                Some(v) => Some(parse_rates(v, &join(path, "rates"))?),
            };
            let doc_mix = match map.get("doc_mix") {
                None | Some(Value::Null) => None,
                Some(v) => Some(parse_doc_mix(v, &join(path, "doc_mix"))?),
            };
            if rates.is_none() && doc_mix.is_none() {
                return Err(SpecError::at(
                    path,
                    "workload_shift needs rates, doc_mix, or both",
                ));
            }
            let seed = match map.get("seed") {
                None | Some(Value::Null) => None,
                Some(v) => Some(parse_u53(v, &join(path, "seed"))?),
            };
            EventKindSpec::WorkloadShift {
                rates,
                doc_mix,
                seed,
            }
        }
        other => {
            return Err(SpecError::at(
                join(path, "kind"),
                format!(
                    "unknown event \"{other}\" (expected node_join, node_leave, link_fail, link_heal, doc_publish, doc_update, or workload_shift)"
                ),
            ))
        }
    };
    Ok(EventSpec { round, kind })
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut map = Map::new();
    for (k, v) in pairs {
        map.insert(k, v);
    }
    Value::Object(map)
}

fn num(x: f64) -> Value {
    Value::Number(x)
}

fn unum(x: usize) -> Value {
    Value::Number(x as f64)
}

fn topology_value(t: &TopologySpec) -> Value {
    match t {
        TopologySpec::Paper { figure } => obj(vec![
            ("kind", Value::from("paper")),
            ("figure", Value::from(figure.as_str())),
        ]),
        TopologySpec::Path { nodes } => {
            obj(vec![("kind", Value::from("path")), ("nodes", unum(*nodes))])
        }
        TopologySpec::Star { nodes } => {
            obj(vec![("kind", Value::from("star")), ("nodes", unum(*nodes))])
        }
        TopologySpec::KAry { arity, depth } => obj(vec![
            ("kind", Value::from("k_ary")),
            ("arity", unum(*arity)),
            ("depth", unum(*depth)),
        ]),
        TopologySpec::TwoLevel { regions, leaves } => obj(vec![
            ("kind", Value::from("two_level")),
            ("regions", unum(*regions)),
            ("leaves", unum(*leaves)),
        ]),
        TopologySpec::Caterpillar { spine, legs } => obj(vec![
            ("kind", Value::from("caterpillar")),
            ("spine", unum(*spine)),
            ("legs", unum(*legs)),
        ]),
        TopologySpec::Broom { handle, bristles } => obj(vec![
            ("kind", Value::from("broom")),
            ("handle", unum(*handle)),
            ("bristles", unum(*bristles)),
        ]),
        TopologySpec::RandomDepth { nodes, depth } => obj(vec![
            ("kind", Value::from("random_depth")),
            ("nodes", unum(*nodes)),
            ("depth", unum(*depth)),
        ]),
        TopologySpec::Explicit { parents } => obj(vec![
            ("kind", Value::from("explicit")),
            (
                "parents",
                Value::Array(
                    parents
                        .iter()
                        .map(|p| match p {
                            None => Value::Null,
                            Some(id) => unum(*id),
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn workload_value(w: &WorkloadSpec) -> Value {
    let mut pairs = vec![("rates", rates_value(&w.rates))];
    if let Some(mix) = &w.doc_mix {
        pairs.push(("doc_mix", doc_mix_value(mix)));
    }
    obj(pairs)
}

fn rates_value(r: &RatesSpec) -> Value {
    match r {
        RatesSpec::Paper => obj(vec![("kind", Value::from("paper"))]),
        RatesSpec::Uniform { rate } => {
            obj(vec![("kind", Value::from("uniform")), ("rate", num(*rate))])
        }
        RatesSpec::LeafOnly { rate } => obj(vec![
            ("kind", Value::from("leaf_only")),
            ("rate", num(*rate)),
        ]),
        RatesSpec::RandomUniform { lo, hi } => obj(vec![
            ("kind", Value::from("random_uniform")),
            ("lo", num(*lo)),
            ("hi", num(*hi)),
        ]),
        RatesSpec::ZipfNodes { total, theta } => obj(vec![
            ("kind", Value::from("zipf_nodes")),
            ("total", num(*total)),
            ("theta", num(*theta)),
        ]),
        RatesSpec::Explicit { rates } => obj(vec![
            ("kind", Value::from("explicit")),
            (
                "rates",
                Value::Array(rates.iter().map(|&x| num(x)).collect()),
            ),
        ]),
    }
}

fn doc_mix_value(m: &DocMixSpec) -> Value {
    match m {
        DocMixSpec::Paper => obj(vec![("kind", Value::from("paper"))]),
        DocMixSpec::SharedZipf { docs, theta } => obj(vec![
            ("kind", Value::from("shared_zipf")),
            ("docs", unum(*docs)),
            ("theta", num(*theta)),
        ]),
    }
}

fn alpha_value(alpha: &Option<f64>) -> Value {
    match alpha {
        Some(x) => num(*x),
        None => Value::Null,
    }
}

fn engine_value(e: &EngineSpec) -> Value {
    match e {
        EngineSpec::RateWave { alpha, staleness } => obj(vec![
            ("kind", Value::from("rate_wave")),
            ("alpha", alpha_value(alpha)),
            ("staleness", unum(*staleness)),
        ]),
        EngineSpec::DocSim {
            alpha,
            tunneling,
            barrier_patience,
        } => obj(vec![
            ("kind", Value::from("doc_sim")),
            ("alpha", alpha_value(alpha)),
            ("tunneling", Value::Bool(*tunneling)),
            ("barrier_patience", unum(*barrier_patience)),
        ]),
        EngineSpec::PacketSim {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
        } => obj(vec![
            ("kind", Value::from("packet_sim")),
            ("alpha", alpha_value(alpha)),
            ("tunneling", Value::Bool(*tunneling)),
            ("barrier_patience", unum(*barrier_patience)),
            ("link_delay", num(*link_delay)),
            ("gossip_period", num(*gossip_period)),
            ("diffusion_period", num(*diffusion_period)),
            ("measure_window", num(*measure_window)),
            ("gossip_loss", num(*gossip_loss)),
            ("hysteresis", num(*hysteresis)),
            ("noise_sigmas", num(*noise_sigmas)),
        ]),
        EngineSpec::PacketSimPar {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
            workers,
        } => obj(vec![
            ("kind", Value::from("packet_sim_par")),
            ("alpha", alpha_value(alpha)),
            ("tunneling", Value::Bool(*tunneling)),
            ("barrier_patience", unum(*barrier_patience)),
            ("link_delay", num(*link_delay)),
            ("gossip_period", num(*gossip_period)),
            ("diffusion_period", num(*diffusion_period)),
            ("measure_window", num(*measure_window)),
            ("gossip_loss", num(*gossip_loss)),
            ("hysteresis", num(*hysteresis)),
            ("noise_sigmas", num(*noise_sigmas)),
            ("workers", unum(*workers)),
        ]),
        EngineSpec::PacketSimDist {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
            workers,
        } => obj(vec![
            ("kind", Value::from("packet_sim_dist")),
            ("alpha", alpha_value(alpha)),
            ("tunneling", Value::Bool(*tunneling)),
            ("barrier_patience", unum(*barrier_patience)),
            ("link_delay", num(*link_delay)),
            ("gossip_period", num(*gossip_period)),
            ("diffusion_period", num(*diffusion_period)),
            ("measure_window", num(*measure_window)),
            ("gossip_loss", num(*gossip_loss)),
            ("hysteresis", num(*hysteresis)),
            ("noise_sigmas", num(*noise_sigmas)),
            ("workers", unum(*workers)),
        ]),
        EngineSpec::ForestWave {
            alpha,
            coupled,
            roots,
        } => obj(vec![
            ("kind", Value::from("forest_wave")),
            ("alpha", alpha_value(alpha)),
            ("coupled", Value::Bool(*coupled)),
            (
                "roots",
                Value::Array(roots.iter().map(|&r| unum(r)).collect()),
            ),
        ]),
        EngineSpec::Cluster {
            alpha,
            rounds,
            channel_capacity,
        } => obj(vec![
            ("kind", Value::from("cluster")),
            ("alpha", alpha_value(alpha)),
            ("rounds", unum(*rounds)),
            ("channel_capacity", unum(*channel_capacity)),
        ]),
        EngineSpec::Baselines {
            schemes,
            replicas,
            lookup_msgs,
            gle_iterations,
            webwave_rounds,
            gossip_per_second,
        } => obj(vec![
            ("kind", Value::from("baselines")),
            (
                "schemes",
                Value::Array(schemes.iter().map(|s| Value::from(s.as_str())).collect()),
            ),
            ("replicas", unum(*replicas)),
            ("lookup_msgs", num(*lookup_msgs)),
            ("gle_iterations", unum(*gle_iterations)),
            ("webwave_rounds", unum(*webwave_rounds)),
            ("gossip_per_second", num(*gossip_per_second)),
        ]),
    }
}

fn termination_value(t: &Termination) -> Value {
    match t {
        Termination::Rounds { max } => {
            obj(vec![("kind", Value::from("rounds")), ("max", unum(*max))])
        }
        Termination::Converged {
            threshold,
            max_rounds,
        } => obj(vec![
            ("kind", Value::from("converged")),
            ("threshold", num(*threshold)),
            ("max_rounds", unum(*max_rounds)),
        ]),
        Termination::WallClock {
            seconds,
            max_rounds,
        } => obj(vec![
            ("kind", Value::from("wall_clock")),
            ("seconds", num(*seconds)),
            ("max_rounds", unum(*max_rounds)),
        ]),
    }
}

fn sweep_value(s: &Sweep) -> Value {
    obj(vec![
        ("param", Value::from(s.param.as_str())),
        (
            "values",
            Value::Array(s.values.iter().map(|&x| num(x)).collect()),
        ),
    ])
}

fn telemetry_value(t: &TelemetrySpec) -> Value {
    obj(vec![
        ("level", Value::from(t.level.as_str())),
        (
            "trace_out",
            match &t.trace_out {
                Some(path) => Value::from(path.as_str()),
                None => Value::Null,
            },
        ),
    ])
}

fn rebalance_value(r: &RebalanceSpec) -> Value {
    obj(vec![
        ("trigger_imbalance", num(r.trigger_imbalance)),
        ("min_epoch_gap", Value::Number(r.min_epoch_gap as f64)),
    ])
}

fn events_value(e: &EventsSpec) -> Value {
    obj(vec![
        (
            "schedule",
            Value::Array(e.schedule.iter().map(event_value).collect()),
        ),
        ("recovery_threshold", num(e.recovery_threshold)),
        ("batched_barriers", Value::Bool(e.batched_barriers)),
    ])
}

fn event_value(e: &EventSpec) -> Value {
    let mut pairs = vec![
        ("round", unum(e.round)),
        ("kind", Value::from(e.kind.kind())),
    ];
    match &e.kind {
        EventKindSpec::NodeJoin { parent, rate } => {
            pairs.push(("parent", unum(*parent)));
            pairs.push(("rate", num(*rate)));
        }
        EventKindSpec::NodeLeave { node }
        | EventKindSpec::LinkFail { node }
        | EventKindSpec::LinkHeal { node } => {
            pairs.push(("node", unum(*node)));
        }
        EventKindSpec::DocPublish { doc, origin, rate } => {
            pairs.push(("doc", num(*doc as f64)));
            pairs.push(("origin", unum(*origin)));
            pairs.push(("rate", num(*rate)));
        }
        EventKindSpec::DocUpdate { doc } => {
            pairs.push(("doc", num(*doc as f64)));
        }
        EventKindSpec::WorkloadShift {
            rates,
            doc_mix,
            seed,
        } => {
            if let Some(r) = rates {
                pairs.push(("rates", rates_value(r)));
            }
            if let Some(m) = doc_mix {
                pairs.push(("doc_mix", doc_mix_value(m)));
            }
            if let Some(s) = seed {
                pairs.push(("seed", num(*s as f64)));
            }
        }
    }
    obj(pairs)
}
