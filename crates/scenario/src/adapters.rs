//! [`Engine`] implementations for every simulator, the threaded runtime,
//! and the baseline schemes.
//!
//! The round-stepped engines (`RateWave`, `DocSim`, `ForestWave`)
//! implement the trait directly. The packet simulators advance one
//! diffusion period of simulated time per engine round — sequentially
//! ([`PacketEngine`]) or across subtree shards ([`ParPacketEngine`],
//! bit-identical at every worker count); the threaded cluster
//! ([`ClusterEngine`]) and the baseline schemes ([`BaselineEngine`]) are
//! one-shot engines that do all their work in a single step and then
//! report [`StepOutcome::Done`].

use crate::engine::{Engine, MetricSink, StepOutcome};
use crate::events::{Event, EventError};
use crate::spec::BaselineScheme;
use ww_baselines::SchemeReport;
use ww_core::docsim::DocSim;
use ww_core::packetsim::{PacketSim, PacketSimConfig, PacketSimReport};
use ww_core::wave::RateWave;
use ww_dist::{DistOptions, DistPacketSim};
use ww_forest::ForestWave;
use ww_model::{NodeId, RateVector, Tree};
use ww_pdes::ParPacketSim;
use ww_runtime::{run_cluster, ClusterConfig, ClusterReport};
use ww_telemetry::{Level, Snapshot};

/// Wraps an engine-level failure into the typed event rejection.
fn invalid(event: &Event, reason: impl std::fmt::Display) -> EventError {
    EventError::Invalid {
        event: event.kind(),
        reason: reason.to_string(),
    }
}

/// Validates that `node` has an uplink in `tree` (exists and is not the
/// root), so link events can be applied without panicking.
fn check_uplink(tree: &Tree, node: NodeId, event: &Event) -> Result<(), EventError> {
    if node.index() >= tree.len() {
        return Err(invalid(
            event,
            format!("node {node} is outside the {}-node tree", tree.len()),
        ));
    }
    if tree.parent(node).is_none() {
        return Err(invalid(event, format!("the root {node} has no uplink")));
    }
    Ok(())
}

/// Shared event handling for the one-shot engines (cluster, baselines):
/// churn and workload shifts mutate the stored tree/rates *before* the
/// single step runs; afterwards nothing can change. Document and link
/// events have no meaning for a static assignment and are unsupported.
fn apply_static(
    engine: &'static str,
    already_ran: bool,
    tree: &mut Tree,
    rates: &mut RateVector,
    event: &Event,
) -> Result<(), EventError> {
    match event {
        Event::NodeJoin { .. } | Event::NodeLeave { .. } | Event::WorkloadShift { .. }
            if already_ran =>
        {
            Err(invalid(
                event,
                format!("the one-shot {engine} engine already ran; schedule events at round 0"),
            ))
        }
        Event::NodeJoin { parent, rate } => {
            if !rate.is_finite() || *rate < 0.0 {
                return Err(invalid(event, format!("invalid rate {rate}")));
            }
            tree.add_leaf(*parent).map_err(|e| invalid(event, e))?;
            let mut v = rates.clone().into_inner();
            v.push(*rate);
            *rates = RateVector::from(v);
            Ok(())
        }
        Event::NodeLeave { node } => {
            let removal = tree.remove_leaf(*node).map_err(|e| invalid(event, e))?;
            let mut v = rates.clone().into_inner();
            removal.rehome(&mut v);
            *rates = RateVector::from(v);
            Ok(())
        }
        Event::WorkloadShift {
            rates: Some(shifted),
            ..
        } => {
            check_rates(shifted, tree.len(), event)?;
            *rates = shifted.clone();
            Ok(())
        }
        Event::WorkloadShift { rates: None, .. } => Err(invalid(
            event,
            format!("the {engine} engine needs rates in a workload_shift"),
        )),
        _ => Err(EventError::Unsupported {
            engine,
            event: event.kind(),
            supported: &["node_join", "node_leave", "workload_shift"],
        }),
    }
}

/// Validates a resolved rates vector against the engine's node count.
fn check_rates(rates: &RateVector, n: usize, event: &Event) -> Result<(), EventError> {
    if rates.len() != n {
        return Err(invalid(
            event,
            format!("expected {n} rates (one per node), got {}", rates.len()),
        ));
    }
    if let Some((node, bad)) = rates.iter().find(|&(_, r)| !r.is_finite() || r < 0.0) {
        return Err(invalid(event, format!("rate at {node} is invalid: {bad}")));
    }
    Ok(())
}

impl Engine for RateWave {
    fn kind(&self) -> &'static str {
        "rate_wave"
    }

    fn step(&mut self) -> StepOutcome {
        RateWave::step(self);
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        RateWave::round(self)
    }

    fn convergence(&self) -> Option<f64> {
        Some(self.distance_to_tlb())
    }

    fn load(&self) -> Option<RateVector> {
        Some(RateWave::load(self).clone())
    }

    fn max_load(&self) -> Option<f64> {
        Some(RateWave::load(self).max())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(RateWave::oracle(self).clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        Some(RateWave::trace(self).distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        sink.metric("alpha", self.alpha());
        sink.metric("distance_to_tlb", self.distance_to_tlb());
        let load = RateWave::load(self);
        sink.metric("max_load", load.max());
        sink.metric("total_load", load.total());
    }

    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        match event {
            Event::NodeJoin { parent, rate } => RateWave::add_leaf(self, *parent, *rate)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::NodeLeave { node } => RateWave::remove_leaf(self, *node)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::LinkFail { node } => {
                check_uplink(self.tree(), *node, event)?;
                self.fail_link(*node);
                Ok(())
            }
            Event::LinkHeal { node } => {
                check_uplink(self.tree(), *node, event)?;
                self.heal_link(*node);
                Ok(())
            }
            Event::WorkloadShift {
                rates: Some(rates), ..
            } => {
                check_rates(rates, self.tree().len(), event)?;
                self.set_spontaneous(rates);
                Ok(())
            }
            Event::WorkloadShift { rates: None, .. } => Err(invalid(
                event,
                "the rate_wave engine needs rates in a workload_shift",
            )),
            Event::DocPublish { .. } | Event::DocUpdate { .. } => Err(EventError::Unsupported {
                engine: "rate_wave",
                event: event.kind(),
                supported: &[
                    "node_join",
                    "node_leave",
                    "link_fail",
                    "link_heal",
                    "workload_shift",
                ],
            }),
        }
    }

    fn barrier_begin(&mut self) {
        RateWave::begin_batch(self);
    }

    fn barrier_commit(&mut self) {
        RateWave::end_batch(self);
    }
}

impl Engine for DocSim {
    fn kind(&self) -> &'static str {
        "doc_sim"
    }

    fn step(&mut self) -> StepOutcome {
        DocSim::step(self);
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        DocSim::round(self)
    }

    fn convergence(&self) -> Option<f64> {
        Some(self.distance_to_tlb())
    }

    fn load(&self) -> Option<RateVector> {
        Some(DocSim::load(self).clone())
    }

    fn max_load(&self) -> Option<f64> {
        Some(DocSim::load(self).max())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(DocSim::oracle(self).clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        Some(DocSim::trace(self).distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        let stats = self.stats();
        sink.metric("distance_to_tlb", self.distance_to_tlb());
        sink.metric("max_load", DocSim::load(self).max());
        sink.metric("copy_pushes", stats.copy_pushes as f64);
        sink.metric("copy_deletions", stats.copy_deletions as f64);
        sink.metric("tunnel_fetches", stats.tunnel_fetches as f64);
        sink.metric("barrier_suspicions", stats.barrier_suspicions as f64);
    }

    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        match event {
            Event::NodeJoin { parent, rate } => DocSim::add_leaf(self, *parent, *rate)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::NodeLeave { node } => DocSim::remove_leaf(self, *node)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::LinkFail { node } => {
                check_uplink(self.tree(), *node, event)?;
                self.fail_link(*node);
                Ok(())
            }
            Event::LinkHeal { node } => {
                check_uplink(self.tree(), *node, event)?;
                self.heal_link(*node);
                Ok(())
            }
            Event::DocPublish { doc, origin, rate } => self
                .publish_doc(*doc, *origin, *rate)
                .map_err(|e| invalid(event, e)),
            Event::DocUpdate { doc } => self.invalidate_doc(*doc).map_err(|e| invalid(event, e)),
            Event::WorkloadShift {
                doc_mix: Some(mix), ..
            } => self.set_mix(mix).map_err(|e| invalid(event, e)),
            Event::WorkloadShift { doc_mix: None, .. } => Err(invalid(
                event,
                "the doc_sim engine needs a doc_mix in a workload_shift",
            )),
        }
    }

    fn barrier_begin(&mut self) {
        DocSim::begin_batch(self);
    }

    fn barrier_commit(&mut self) {
        DocSim::end_batch(self);
    }
}

impl Engine for ForestWave {
    fn kind(&self) -> &'static str {
        "forest_wave"
    }

    fn step(&mut self) -> StepOutcome {
        ForestWave::step(self);
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        ForestWave::round(self)
    }

    /// No TLB oracle exists over a forest; convergence is measured as
    /// the last step's change in maximum total load (load stability).
    fn convergence(&self) -> Option<f64> {
        let trace = self.max_load_trace();
        match trace {
            [.., prev, last] => Some((last - prev).abs()),
            _ => None,
        }
    }

    fn load(&self) -> Option<RateVector> {
        Some(self.total_load())
    }

    fn oracle(&self) -> Option<RateVector> {
        None
    }

    fn trace(&self) -> Option<Vec<f64>> {
        Some(self.max_load_trace().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        let total = self.total_load();
        sink.metric("max_total_load", total.max());
        sink.metric("total_load", total.total());
        sink.metric("trees", self.loads().len() as f64);
    }

    /// Forest runs support workload shifts only: the shifted rates are
    /// offered to every tree, exactly as at construction. Churn and link
    /// events would have to mutate the underlying shared graph and every
    /// derived tree at once — out of the forest protocol's scope — so
    /// they are rejected with a typed error.
    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        match event {
            Event::WorkloadShift {
                rates: Some(rates), ..
            } => {
                let n = self.loads().first().map_or(0, RateVector::len);
                check_rates(rates, n, event)?;
                let demands = vec![rates.clone(); self.loads().len()];
                self.set_demands(&demands);
                Ok(())
            }
            Event::WorkloadShift { rates: None, .. } => Err(invalid(
                event,
                "the forest_wave engine needs rates in a workload_shift",
            )),
            _ => Err(EventError::Unsupported {
                engine: "forest_wave",
                event: event.kind(),
                supported: &["workload_shift"],
            }),
        }
    }
}

/// The packet-level simulator behind the unified API: one engine round
/// advances the event-driven simulation by one diffusion period of
/// simulated time.
#[derive(Debug)]
pub struct PacketEngine {
    sim: PacketSim,
    diffusion_period: f64,
    epochs: usize,
    last: Option<PacketSimReport>,
}

impl PacketEngine {
    /// Wraps a configured simulator; `config.diffusion_period` becomes
    /// the engine-round length.
    pub fn new(tree: &Tree, mix: &ww_workload::DocMix, config: PacketSimConfig) -> Self {
        PacketEngine {
            sim: PacketSim::new(tree, mix, config),
            diffusion_period: config.diffusion_period,
            epochs: 0,
            last: None,
        }
    }

    /// The most recent full packet-level report, if any step has run.
    pub fn last_report(&self) -> Option<&PacketSimReport> {
        self.last.as_ref()
    }
}

impl Engine for PacketEngine {
    fn kind(&self) -> &'static str {
        "packet_sim"
    }

    fn step(&mut self) -> StepOutcome {
        self.epochs += 1;
        let deadline = self.diffusion_period * self.epochs as f64;
        self.last = Some(self.sim.run(deadline));
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        self.epochs
    }

    fn convergence(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.final_distance)
    }

    fn load(&self) -> Option<RateVector> {
        self.last.as_ref().map(|r| r.served_rates.clone())
    }

    fn max_load(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.served_rates.max())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(self.sim.oracle().clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        self.last.as_ref().map(|r| r.trace.distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        if let Some(r) = &self.last {
            sink.metric("final_distance", r.final_distance);
            sink.metric("served_requests", r.served_requests as f64);
            sink.metric("mean_hops", r.mean_hops);
            sink.metric("copy_pushes", r.copy_pushes as f64);
            sink.metric("tunnel_fetches", r.tunnel_fetches as f64);
            sink.metric(
                "control_msgs_per_request",
                r.ledger.control_overhead_per_request(),
            );
        }
    }

    /// The packet engine honors the full event grammar: churn, link
    /// failures, document lifecycle, and workload shifts (which need a
    /// `doc_mix` — rates alone cannot parameterize Poisson arrival
    /// streams). Churn and shifts apply through the barrier pipeline:
    /// the arrival stage is re-resolved at the epoch boundary between
    /// engine rounds.
    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        match event {
            Event::NodeJoin { parent, rate } => self
                .sim
                .add_leaf(*parent, *rate)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::NodeLeave { node } => self
                .sim
                .remove_leaf(*node)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::DocPublish { doc, origin, rate } => self
                .sim
                .publish_doc(*doc, *origin, *rate)
                .map_err(|e| invalid(event, e)),
            Event::DocUpdate { doc } => self.sim.invalidate(*doc).map_err(|e| invalid(event, e)),
            Event::LinkFail { node } => {
                check_uplink(self.sim.tree(), *node, event)?;
                self.sim.fail_link(*node);
                Ok(())
            }
            Event::LinkHeal { node } => {
                check_uplink(self.sim.tree(), *node, event)?;
                self.sim.heal_link(*node);
                Ok(())
            }
            Event::WorkloadShift {
                doc_mix: Some(mix), ..
            } => self.sim.set_mix(mix).map_err(|e| invalid(event, e)),
            Event::WorkloadShift { doc_mix: None, .. } => Err(invalid(
                event,
                "the packet_sim engine needs a doc_mix in a workload_shift",
            )),
        }
    }

    fn barrier_begin(&mut self) {
        self.sim.begin_batch();
    }

    fn barrier_commit(&mut self) {
        self.sim.commit_batch();
    }

    fn set_telemetry(&mut self, level: Level) {
        self.sim.set_telemetry(level);
    }

    fn telemetry(&self) -> Option<Snapshot> {
        let snap = self.sim.telemetry_snapshot();
        (!snap.is_empty()).then_some(snap)
    }
}

/// The sharded parallel packet simulator behind the unified API: one
/// engine round advances every subtree shard by one diffusion period and
/// quiesces at the epoch barrier. Reported numbers are bit-identical to
/// [`PacketEngine`] at every worker count.
#[derive(Debug)]
pub struct ParPacketEngine {
    sim: ParPacketSim,
    diffusion_period: f64,
    epochs: usize,
    last: Option<PacketSimReport>,
}

impl ParPacketEngine {
    /// Wraps a configured parallel simulator; `config.diffusion_period`
    /// becomes the engine-round length.
    pub fn new(
        tree: &Tree,
        mix: &ww_workload::DocMix,
        config: PacketSimConfig,
        workers: usize,
    ) -> Self {
        ParPacketEngine {
            sim: ParPacketSim::new(tree, mix, config, workers),
            diffusion_period: config.diffusion_period,
            epochs: 0,
            last: None,
        }
    }

    /// Like [`ParPacketEngine::new`], with adaptive shard rebalancing
    /// armed when `rebalance` is `Some`. The knob changes which thread
    /// executes which node, never the simulated trace — reported bits
    /// stay identical to the sequential engine either way.
    pub fn with_rebalance(
        tree: &Tree,
        mix: &ww_workload::DocMix,
        config: PacketSimConfig,
        workers: usize,
        rebalance: Option<ww_pdes::RebalanceConfig>,
    ) -> Self {
        let mut engine = ParPacketEngine::new(tree, mix, config, workers);
        engine.sim.set_rebalance(rebalance);
        engine
    }

    /// The most recent full packet-level report, if any step has run.
    pub fn last_report(&self) -> Option<&PacketSimReport> {
        self.last.as_ref()
    }

    /// Number of subtree shards (worker threads) the run uses.
    pub fn shard_count(&self) -> usize {
        self.sim.shard_count()
    }
}

impl Engine for ParPacketEngine {
    fn kind(&self) -> &'static str {
        "packet_sim_par"
    }

    fn step(&mut self) -> StepOutcome {
        self.epochs += 1;
        let deadline = self.diffusion_period * self.epochs as f64;
        self.last = Some(self.sim.run(deadline));
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        self.epochs
    }

    fn convergence(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.final_distance)
    }

    fn load(&self) -> Option<RateVector> {
        self.last.as_ref().map(|r| r.served_rates.clone())
    }

    fn max_load(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.served_rates.max())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(self.sim.oracle().clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        self.last.as_ref().map(|r| r.trace.distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        if let Some(r) = &self.last {
            sink.metric("final_distance", r.final_distance);
            sink.metric("served_requests", r.served_requests as f64);
            sink.metric("mean_hops", r.mean_hops);
            sink.metric("copy_pushes", r.copy_pushes as f64);
            sink.metric("tunnel_fetches", r.tunnel_fetches as f64);
            sink.metric(
                "control_msgs_per_request",
                r.ledger.control_overhead_per_request(),
            );
        }
    }

    /// The full event grammar of the sequential packet engine, applied
    /// at the epoch barrier between rounds through the same shared
    /// barrier pipeline — a given dynamics spec therefore reports
    /// identical bits at every worker count.
    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        match event {
            Event::NodeJoin { parent, rate } => self
                .sim
                .add_leaf(*parent, *rate)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::NodeLeave { node } => self
                .sim
                .remove_leaf(*node)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::DocPublish { doc, origin, rate } => self
                .sim
                .publish_doc(*doc, *origin, *rate)
                .map_err(|e| invalid(event, e)),
            Event::DocUpdate { doc } => self.sim.invalidate(*doc).map_err(|e| invalid(event, e)),
            Event::LinkFail { node } => {
                check_uplink(self.sim.tree(), *node, event)?;
                self.sim.fail_link(*node);
                Ok(())
            }
            Event::LinkHeal { node } => {
                check_uplink(self.sim.tree(), *node, event)?;
                self.sim.heal_link(*node);
                Ok(())
            }
            Event::WorkloadShift {
                doc_mix: Some(mix), ..
            } => self.sim.set_mix(mix).map_err(|e| invalid(event, e)),
            Event::WorkloadShift { doc_mix: None, .. } => Err(invalid(
                event,
                "the packet_sim_par engine needs a doc_mix in a workload_shift",
            )),
        }
    }

    fn barrier_begin(&mut self) {
        self.sim.begin_batch();
    }

    fn barrier_commit(&mut self) {
        self.sim.commit_batch();
    }

    fn set_telemetry(&mut self, level: Level) {
        self.sim.set_telemetry(level);
    }

    fn telemetry(&self) -> Option<Snapshot> {
        let snap = self.sim.telemetry_snapshot();
        (!snap.is_empty()).then_some(snap)
    }
}

/// The distributed packet simulator behind the unified API: the shards
/// live in other OS processes (or threads) and speak the PDES wire
/// protocol over TCP — reported numbers stay bit-identical to
/// [`PacketEngine`] at every worker count.
///
/// The [`Engine`] trait has no error channel in `step`, so a transport
/// failure mid-run (worker death, stalled wire) panics with the typed
/// [`DistError`](ww_dist::DistError)'s message; the scenario runner has
/// no way to continue a run whose workers are gone.
#[derive(Debug)]
pub struct DistPacketEngine {
    sim: DistPacketSim,
    diffusion_period: f64,
    epochs: usize,
    last: Option<PacketSimReport>,
}

impl DistPacketEngine {
    /// Launches the distributed run; `config.diffusion_period` becomes
    /// the engine-round length.
    ///
    /// # Errors
    ///
    /// [`ww_dist::DistError`] when the workers cannot be brought up, or
    /// `DistError::Unsupported` when `rebalance` is `Some` — adaptive
    /// shard rebalancing would migrate node state between single-shard
    /// worker processes, which the wire protocol does not carry. The
    /// knob is rejected up front rather than silently dropped, so a
    /// distributed run can never quietly diverge from what was asked.
    pub fn launch(
        tree: &Tree,
        mix: &ww_workload::DocMix,
        config: PacketSimConfig,
        workers: usize,
        options: DistOptions,
        rebalance: Option<ww_pdes::RebalanceConfig>,
    ) -> Result<Self, ww_dist::DistError> {
        if rebalance.is_some() {
            return Err(ww_dist::DistError::Unsupported {
                detail: "adaptive shard rebalancing (drop the `rebalance` block, or run \
                         in-process with `packet_sim_par`)"
                    .into(),
            });
        }
        Ok(DistPacketEngine {
            sim: DistPacketSim::launch(tree, mix, config, workers, options)?,
            diffusion_period: config.diffusion_period,
            epochs: 0,
            last: None,
        })
    }

    /// The most recent full packet-level report, if any step has run.
    pub fn last_report(&self) -> Option<&PacketSimReport> {
        self.last.as_ref()
    }

    /// Number of subtree shards (worker processes) the run uses.
    pub fn shard_count(&self) -> usize {
        self.sim.shard_count()
    }
}

impl Engine for DistPacketEngine {
    fn kind(&self) -> &'static str {
        "packet_sim_dist"
    }

    fn step(&mut self) -> StepOutcome {
        self.epochs += 1;
        let deadline = self.diffusion_period * self.epochs as f64;
        match self.sim.run(deadline) {
            Ok(report) => self.last = Some(report),
            Err(e) => panic!("distributed run failed: {e}"),
        }
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        self.epochs
    }

    fn convergence(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.final_distance)
    }

    fn load(&self) -> Option<RateVector> {
        self.last.as_ref().map(|r| r.served_rates.clone())
    }

    fn max_load(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.served_rates.max())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(self.sim.oracle().clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        self.last.as_ref().map(|r| r.trace.distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        if let Some(r) = &self.last {
            sink.metric("final_distance", r.final_distance);
            sink.metric("served_requests", r.served_requests as f64);
            sink.metric("mean_hops", r.mean_hops);
            sink.metric("copy_pushes", r.copy_pushes as f64);
            sink.metric("tunnel_fetches", r.tunnel_fetches as f64);
            sink.metric(
                "control_msgs_per_request",
                r.ledger.control_overhead_per_request(),
            );
        }
    }

    /// The full event grammar of the sequential packet engine, applied
    /// at the epoch barrier and broadcast to every worker process. A
    /// dead worker during an event surfaces as the event's rejection
    /// (the run cannot continue either way).
    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        match event {
            Event::NodeJoin { parent, rate } => self
                .sim
                .add_leaf(*parent, *rate)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::NodeLeave { node } => self
                .sim
                .remove_leaf(*node)
                .map(|_| ())
                .map_err(|e| invalid(event, e)),
            Event::DocPublish { doc, origin, rate } => self
                .sim
                .publish_doc(*doc, *origin, *rate)
                .map_err(|e| invalid(event, e)),
            Event::DocUpdate { doc } => self.sim.invalidate(*doc).map_err(|e| invalid(event, e)),
            Event::LinkFail { node } => {
                check_uplink(self.sim.tree(), *node, event)?;
                self.sim.fail_link(*node).map_err(|e| invalid(event, e))?;
                Ok(())
            }
            Event::LinkHeal { node } => {
                check_uplink(self.sim.tree(), *node, event)?;
                self.sim.heal_link(*node).map_err(|e| invalid(event, e))?;
                Ok(())
            }
            Event::WorkloadShift {
                doc_mix: Some(mix), ..
            } => self.sim.set_mix(mix).map_err(|e| invalid(event, e)),
            Event::WorkloadShift { doc_mix: None, .. } => Err(invalid(
                event,
                "the packet_sim_dist engine needs a doc_mix in a workload_shift",
            )),
        }
    }

    /// The [`Engine`] hooks have no error channel; as with
    /// [`DistPacketEngine::step`], a transport failure while opening or
    /// closing the batch window panics with the typed error's message.
    fn barrier_begin(&mut self) {
        if let Err(e) = self.sim.begin_batch() {
            panic!("distributed batch begin failed: {e}");
        }
    }

    fn barrier_commit(&mut self) {
        if let Err(e) = self.sim.commit_batch() {
            panic!("distributed batch commit failed: {e}");
        }
    }

    /// A no-op: the distributed level is fixed at launch through
    /// [`DistOptions::telemetry`] (the runner sets it before resolving
    /// the engine), because it decides handshake timing capture.
    fn set_telemetry(&mut self, _level: Level) {}

    fn telemetry(&self) -> Option<Snapshot> {
        let snap = self.sim.telemetry_snapshot();
        (!snap.is_empty()).then_some(snap)
    }
}

/// The threaded runtime behind the unified API: the whole cluster run
/// (spawn, gossip, join) happens in one engine step.
#[derive(Debug)]
pub struct ClusterEngine {
    tree: Tree,
    rates: RateVector,
    config: ClusterConfig,
    report: Option<ClusterReport>,
}

impl ClusterEngine {
    /// Prepares (but does not yet spawn) a cluster run.
    pub fn new(tree: Tree, rates: RateVector, config: ClusterConfig) -> Self {
        ClusterEngine {
            tree,
            rates,
            config,
            report: None,
        }
    }
}

impl Engine for ClusterEngine {
    fn kind(&self) -> &'static str {
        "cluster"
    }

    fn step(&mut self) -> StepOutcome {
        if self.report.is_none() {
            self.report = Some(run_cluster(&self.tree, &self.rates, self.config));
        }
        StepOutcome::Done
    }

    fn round(&self) -> usize {
        usize::from(self.report.is_some())
    }

    fn convergence(&self) -> Option<f64> {
        self.report.as_ref().map(|r| r.distance)
    }

    fn load(&self) -> Option<RateVector> {
        self.report.as_ref().map(|r| r.loads.clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        self.report.as_ref().map(|r| r.oracle.clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        None
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        if let Some(r) = &self.report {
            sink.metric("distance_to_tlb", r.distance);
            sink.metric("max_load", r.loads.max());
            sink.metric("messages", r.messages as f64);
        }
    }

    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        apply_static(
            "cluster",
            self.report.is_some(),
            &mut self.tree,
            &mut self.rates,
            event,
        )
    }
}

/// Parameters of a baseline run, mirroring the knobs of
/// [`crate::spec::EngineSpec::Baselines`].
#[derive(Debug, Clone, Copy)]
pub struct BaselineParams {
    /// DNS replica count; `0` selects `(n / 4).clamp(1, 16)`.
    pub replicas: usize,
    /// Directory lookup messages per request.
    pub lookup_msgs: f64,
    /// GLE-migration iterations.
    pub gle_iterations: usize,
    /// WebWave rounds before reporting.
    pub webwave_rounds: usize,
    /// Gossip messages per second amortized into the WebWave row.
    pub gossip_per_second: f64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams {
            replicas: 0,
            lookup_msgs: 2.0,
            gle_iterations: 2000,
            webwave_rounds: 4000,
            gossip_per_second: 2.0,
        }
    }
}

/// The baseline schemes behind the unified API: one engine step computes
/// every selected scheme's static assignment.
#[derive(Debug)]
pub struct BaselineEngine {
    tree: Tree,
    rates: RateVector,
    schemes: Vec<BaselineScheme>,
    params: BaselineParams,
    reports: Vec<SchemeReport>,
    stepped: bool,
}

impl BaselineEngine {
    /// Prepares a baseline comparison over `schemes`.
    pub fn new(
        tree: Tree,
        rates: RateVector,
        schemes: Vec<BaselineScheme>,
        params: BaselineParams,
    ) -> Self {
        BaselineEngine {
            tree,
            rates,
            schemes,
            params,
            reports: Vec::new(),
            stepped: false,
        }
    }

    fn run_scheme(&self, scheme: BaselineScheme) -> SchemeReport {
        let (tree, e, p) = (&self.tree, &self.rates, &self.params);
        match scheme {
            BaselineScheme::NoCache => ww_baselines::no_caching(tree, e),
            BaselineScheme::Directory => ww_baselines::directory_cache(tree, e, p.lookup_msgs),
            BaselineScheme::DnsRoundRobin => {
                let replicas = if p.replicas == 0 {
                    (tree.len() / 4).clamp(1, 16)
                } else {
                    p.replicas
                };
                ww_baselines::dns_round_robin(tree, e, replicas)
            }
            BaselineScheme::GleMigration => ww_baselines::gle_migration(tree, e, p.gle_iterations),
            BaselineScheme::WebWave => {
                ww_baselines::webwave(tree, e, p.webwave_rounds, p.gossip_per_second)
            }
            BaselineScheme::WebFoldOracle => ww_baselines::webfold_oracle(tree, e),
        }
    }
}

impl Engine for BaselineEngine {
    fn kind(&self) -> &'static str {
        "baselines"
    }

    fn step(&mut self) -> StepOutcome {
        if !self.stepped {
            self.reports = self.schemes.iter().map(|&s| self.run_scheme(s)).collect();
            self.stepped = true;
        }
        StepOutcome::Done
    }

    fn round(&self) -> usize {
        usize::from(self.stepped)
    }

    fn convergence(&self) -> Option<f64> {
        None
    }

    /// The WebWave row's load when present (the scheme the table is
    /// about); otherwise none.
    fn load(&self) -> Option<RateVector> {
        self.reports
            .iter()
            .find(|r| r.name == "webwave")
            .map(|r| r.load.clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        self.reports
            .iter()
            .find(|r| r.name == "webfold-oracle")
            .map(|r| r.load.clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        None
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        // Dotted-path keys per the workspace metric scheme (scheme names
        // like "dns-rr" are single segments; see docs/observability.md).
        for r in &self.reports {
            sink.metric(&format!("scheme.{}.max_load", r.name), r.max_load);
            sink.metric(
                &format!("scheme.{}.distance_to_gle", r.name),
                r.distance_to_gle,
            );
            sink.metric(
                &format!("scheme.{}.control_msgs_per_request", r.name),
                r.control_msgs_per_request,
            );
            sink.metric(
                &format!("scheme.{}.data_hops_per_request", r.name),
                r.data_hops_per_request,
            );
            sink.metric(
                &format!("scheme.{}.violates_nss", r.name),
                f64::from(u8::from(r.violates_nss)),
            );
        }
    }

    fn scheme_reports(&self) -> Vec<SchemeReport> {
        self.reports.clone()
    }

    fn apply(&mut self, event: &Event) -> Result<(), EventError> {
        apply_static(
            "baselines",
            self.stepped,
            &mut self.tree,
            &mut self.rates,
            event,
        )
    }
}
