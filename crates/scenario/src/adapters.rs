//! [`Engine`] implementations for every simulator, the threaded runtime,
//! and the baseline schemes.
//!
//! The round-stepped engines (`RateWave`, `DocSim`, `ForestWave`)
//! implement the trait directly. The packet simulator advances one
//! diffusion period of simulated time per engine round
//! ([`PacketEngine`]); the threaded cluster ([`ClusterEngine`]) and the
//! baseline schemes ([`BaselineEngine`]) are one-shot engines that do
//! all their work in a single step and then report [`StepOutcome::Done`].

use crate::engine::{Engine, MetricSink, StepOutcome};
use crate::spec::BaselineScheme;
use ww_baselines::SchemeReport;
use ww_core::docsim::DocSim;
use ww_core::packetsim::{PacketSim, PacketSimConfig, PacketSimReport};
use ww_core::wave::RateWave;
use ww_forest::ForestWave;
use ww_model::{RateVector, Tree};
use ww_runtime::{run_cluster, ClusterConfig, ClusterReport};

impl Engine for RateWave {
    fn kind(&self) -> &'static str {
        "rate_wave"
    }

    fn step(&mut self) -> StepOutcome {
        RateWave::step(self);
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        RateWave::round(self)
    }

    fn convergence(&self) -> Option<f64> {
        Some(self.distance_to_tlb())
    }

    fn load(&self) -> Option<RateVector> {
        Some(RateWave::load(self).clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(RateWave::oracle(self).clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        Some(RateWave::trace(self).distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        sink.metric("alpha", self.alpha());
        sink.metric("distance_to_tlb", self.distance_to_tlb());
        let load = RateWave::load(self);
        sink.metric("max_load", load.max());
        sink.metric("total_load", load.total());
    }
}

impl Engine for DocSim {
    fn kind(&self) -> &'static str {
        "doc_sim"
    }

    fn step(&mut self) -> StepOutcome {
        DocSim::step(self);
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        DocSim::round(self)
    }

    fn convergence(&self) -> Option<f64> {
        Some(self.distance_to_tlb())
    }

    fn load(&self) -> Option<RateVector> {
        Some(DocSim::load(self).clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(DocSim::oracle(self).clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        Some(DocSim::trace(self).distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        let stats = self.stats();
        sink.metric("distance_to_tlb", self.distance_to_tlb());
        sink.metric("max_load", DocSim::load(self).max());
        sink.metric("copy_pushes", stats.copy_pushes as f64);
        sink.metric("copy_deletions", stats.copy_deletions as f64);
        sink.metric("tunnel_fetches", stats.tunnel_fetches as f64);
        sink.metric("barrier_suspicions", stats.barrier_suspicions as f64);
    }
}

impl Engine for ForestWave {
    fn kind(&self) -> &'static str {
        "forest_wave"
    }

    fn step(&mut self) -> StepOutcome {
        ForestWave::step(self);
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        ForestWave::round(self)
    }

    /// No TLB oracle exists over a forest; convergence is measured as
    /// the last step's change in maximum total load (load stability).
    fn convergence(&self) -> Option<f64> {
        let trace = self.max_load_trace();
        match trace {
            [.., prev, last] => Some((last - prev).abs()),
            _ => None,
        }
    }

    fn load(&self) -> Option<RateVector> {
        Some(self.total_load())
    }

    fn oracle(&self) -> Option<RateVector> {
        None
    }

    fn trace(&self) -> Option<Vec<f64>> {
        Some(self.max_load_trace().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        let total = self.total_load();
        sink.metric("max_total_load", total.max());
        sink.metric("total_load", total.total());
        sink.metric("trees", self.loads().len() as f64);
    }
}

/// The packet-level simulator behind the unified API: one engine round
/// advances the event-driven simulation by one diffusion period of
/// simulated time.
#[derive(Debug)]
pub struct PacketEngine {
    sim: PacketSim,
    diffusion_period: f64,
    epochs: usize,
    last: Option<PacketSimReport>,
}

impl PacketEngine {
    /// Wraps a configured simulator; `config.diffusion_period` becomes
    /// the engine-round length.
    pub fn new(tree: &Tree, mix: &ww_workload::DocMix, config: PacketSimConfig) -> Self {
        PacketEngine {
            sim: PacketSim::new(tree, mix, config),
            diffusion_period: config.diffusion_period,
            epochs: 0,
            last: None,
        }
    }

    /// The most recent full packet-level report, if any step has run.
    pub fn last_report(&self) -> Option<&PacketSimReport> {
        self.last.as_ref()
    }
}

impl Engine for PacketEngine {
    fn kind(&self) -> &'static str {
        "packet_sim"
    }

    fn step(&mut self) -> StepOutcome {
        self.epochs += 1;
        let deadline = self.diffusion_period * self.epochs as f64;
        self.last = Some(self.sim.run(deadline));
        StepOutcome::Running
    }

    fn round(&self) -> usize {
        self.epochs
    }

    fn convergence(&self) -> Option<f64> {
        self.last.as_ref().map(|r| r.final_distance)
    }

    fn load(&self) -> Option<RateVector> {
        self.last.as_ref().map(|r| r.served_rates.clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        Some(self.sim.oracle().clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        self.last.as_ref().map(|r| r.trace.distances().to_vec())
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        if let Some(r) = &self.last {
            sink.metric("final_distance", r.final_distance);
            sink.metric("served_requests", r.served_requests as f64);
            sink.metric("mean_hops", r.mean_hops);
            sink.metric("copy_pushes", r.copy_pushes as f64);
            sink.metric("tunnel_fetches", r.tunnel_fetches as f64);
            sink.metric(
                "control_msgs_per_request",
                r.ledger.control_overhead_per_request(),
            );
        }
    }
}

/// The threaded runtime behind the unified API: the whole cluster run
/// (spawn, gossip, join) happens in one engine step.
#[derive(Debug)]
pub struct ClusterEngine {
    tree: Tree,
    rates: RateVector,
    config: ClusterConfig,
    report: Option<ClusterReport>,
}

impl ClusterEngine {
    /// Prepares (but does not yet spawn) a cluster run.
    pub fn new(tree: Tree, rates: RateVector, config: ClusterConfig) -> Self {
        ClusterEngine {
            tree,
            rates,
            config,
            report: None,
        }
    }
}

impl Engine for ClusterEngine {
    fn kind(&self) -> &'static str {
        "cluster"
    }

    fn step(&mut self) -> StepOutcome {
        if self.report.is_none() {
            self.report = Some(run_cluster(&self.tree, &self.rates, self.config));
        }
        StepOutcome::Done
    }

    fn round(&self) -> usize {
        usize::from(self.report.is_some())
    }

    fn convergence(&self) -> Option<f64> {
        self.report.as_ref().map(|r| r.distance)
    }

    fn load(&self) -> Option<RateVector> {
        self.report.as_ref().map(|r| r.loads.clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        self.report.as_ref().map(|r| r.oracle.clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        None
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        if let Some(r) = &self.report {
            sink.metric("distance_to_tlb", r.distance);
            sink.metric("max_load", r.loads.max());
            sink.metric("messages", r.messages as f64);
        }
    }
}

/// Parameters of a baseline run, mirroring the knobs of
/// [`crate::spec::EngineSpec::Baselines`].
#[derive(Debug, Clone, Copy)]
pub struct BaselineParams {
    /// DNS replica count; `0` selects `(n / 4).clamp(1, 16)`.
    pub replicas: usize,
    /// Directory lookup messages per request.
    pub lookup_msgs: f64,
    /// GLE-migration iterations.
    pub gle_iterations: usize,
    /// WebWave rounds before reporting.
    pub webwave_rounds: usize,
    /// Gossip messages per second amortized into the WebWave row.
    pub gossip_per_second: f64,
}

impl Default for BaselineParams {
    fn default() -> Self {
        BaselineParams {
            replicas: 0,
            lookup_msgs: 2.0,
            gle_iterations: 2000,
            webwave_rounds: 4000,
            gossip_per_second: 2.0,
        }
    }
}

/// The baseline schemes behind the unified API: one engine step computes
/// every selected scheme's static assignment.
#[derive(Debug)]
pub struct BaselineEngine {
    tree: Tree,
    rates: RateVector,
    schemes: Vec<BaselineScheme>,
    params: BaselineParams,
    reports: Vec<SchemeReport>,
    stepped: bool,
}

impl BaselineEngine {
    /// Prepares a baseline comparison over `schemes`.
    pub fn new(
        tree: Tree,
        rates: RateVector,
        schemes: Vec<BaselineScheme>,
        params: BaselineParams,
    ) -> Self {
        BaselineEngine {
            tree,
            rates,
            schemes,
            params,
            reports: Vec::new(),
            stepped: false,
        }
    }

    fn run_scheme(&self, scheme: BaselineScheme) -> SchemeReport {
        let (tree, e, p) = (&self.tree, &self.rates, &self.params);
        match scheme {
            BaselineScheme::NoCache => ww_baselines::no_caching(tree, e),
            BaselineScheme::Directory => ww_baselines::directory_cache(tree, e, p.lookup_msgs),
            BaselineScheme::DnsRoundRobin => {
                let replicas = if p.replicas == 0 {
                    (tree.len() / 4).clamp(1, 16)
                } else {
                    p.replicas
                };
                ww_baselines::dns_round_robin(tree, e, replicas)
            }
            BaselineScheme::GleMigration => ww_baselines::gle_migration(tree, e, p.gle_iterations),
            BaselineScheme::WebWave => {
                ww_baselines::webwave(tree, e, p.webwave_rounds, p.gossip_per_second)
            }
            BaselineScheme::WebFoldOracle => ww_baselines::webfold_oracle(tree, e),
        }
    }
}

impl Engine for BaselineEngine {
    fn kind(&self) -> &'static str {
        "baselines"
    }

    fn step(&mut self) -> StepOutcome {
        if !self.stepped {
            self.reports = self.schemes.iter().map(|&s| self.run_scheme(s)).collect();
            self.stepped = true;
        }
        StepOutcome::Done
    }

    fn round(&self) -> usize {
        usize::from(self.stepped)
    }

    fn convergence(&self) -> Option<f64> {
        None
    }

    /// The WebWave row's load when present (the scheme the table is
    /// about); otherwise none.
    fn load(&self) -> Option<RateVector> {
        self.reports
            .iter()
            .find(|r| r.name == "webwave")
            .map(|r| r.load.clone())
    }

    fn oracle(&self) -> Option<RateVector> {
        self.reports
            .iter()
            .find(|r| r.name == "webfold-oracle")
            .map(|r| r.load.clone())
    }

    fn trace(&self) -> Option<Vec<f64>> {
        None
    }

    fn metrics(&self, sink: &mut dyn MetricSink) {
        for r in &self.reports {
            sink.metric(&format!("{}/max_load", r.name), r.max_load);
            sink.metric(&format!("{}/distance_to_gle", r.name), r.distance_to_gle);
            sink.metric(
                &format!("{}/control_msgs_per_request", r.name),
                r.control_msgs_per_request,
            );
            sink.metric(
                &format!("{}/data_hops_per_request", r.name),
                r.data_hops_per_request,
            );
            sink.metric(
                &format!("{}/violates_nss", r.name),
                f64::from(u8::from(r.violates_nss)),
            );
        }
    }

    fn scheme_reports(&self) -> Vec<SchemeReport> {
        self.reports.clone()
    }
}
