//! The declarative scenario specification.
//!
//! A [`ScenarioSpec`] names everything a run needs — topology generator,
//! workload, engine, protocol knobs, seed, termination rule, and an
//! optional parameter sweep — as plain data. Specs round-trip through
//! JSON (see [`crate::json`]) so new workloads are files, not `main`
//! functions: `webwave-exp run scenarios/<name>.json`.
//!
//! Every field has a spelled-out default (documented in
//! `docs/scenarios.md`); [`ScenarioSpec::smoke`] shrinks any spec to a
//! seconds-scale variant for CI smoke runs.

use crate::error::SpecError;
use crate::events::EventsSpec;
use ww_telemetry::Level;

/// Default master seed when a spec omits `"seed"`.
pub const DEFAULT_SEED: u64 = 1997;

/// A complete, self-contained description of one scenario run (or, with
/// [`Sweep`], a family of runs varying one parameter).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Human-readable scenario name.
    pub name: String,
    /// How to build the routing tree.
    pub topology: TopologySpec,
    /// How to build the demand on that tree.
    pub workload: WorkloadSpec,
    /// Which engine runs the protocol, with its knobs.
    pub engine: EngineSpec,
    /// When to stop.
    pub termination: Termination,
    /// Master random seed (topology, workload, and engine randomness).
    pub seed: u64,
    /// Optional one-parameter sweep: the spec is run once per value.
    pub sweep: Option<Sweep>,
    /// Optional dynamics schedule: churn, failures, and document
    /// lifecycle events interleaved with the rounds (see
    /// [`crate::events`]). `None` — the common case — runs the classic
    /// static world, bit-identical to pre-dynamics builds.
    pub events: Option<EventsSpec>,
    /// Observation-only instrumentation for the run (see
    /// `docs/observability.md`). The default records nothing; no level
    /// changes a single simulated bit.
    pub telemetry: TelemetrySpec,
    /// Optional adaptive shard rebalancing at epoch barriers (see
    /// `docs/parallel.md`). Applies only to the `packet_sim_par` engine;
    /// `packet_sim_dist` rejects it at launch with a typed error rather
    /// than silently ignoring it. Rebalancing changes which worker
    /// executes which node, never the simulated trace — reports stay
    /// bit-identical with the block present, absent, or at any
    /// threshold.
    pub rebalance: Option<RebalanceSpec>,
}

/// Adaptive shard rebalancing knobs: when the per-shard event-count
/// imbalance (max over mean) observed across a window of
/// `min_epoch_gap` epochs reaches `trigger_imbalance`, the partition is
/// re-peeled around the observed per-node loads and nodes migrate at
/// the epoch barrier. Both the observation and the re-peel are pure
/// functions of deterministic event counts, so the decision sequence is
/// identical on every run and at every worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalanceSpec {
    /// Max-over-mean per-shard event ratio that arms a re-peel (≥ 1;
    /// e.g. `1.2` tolerates 20% skew).
    pub trigger_imbalance: f64,
    /// Epochs per observation window (≥ 1): rebalancing is evaluated at
    /// most once per `min_epoch_gap` epoch barriers.
    pub min_epoch_gap: u64,
}

/// Observation-only instrumentation settings: how much the run records
/// ([`Level`]) and where the per-round JSONL trace goes. Telemetry never
/// feeds back into the simulation — reports and traces are bit-identical
/// across levels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySpec {
    /// Recording level: `off` (default), `counters`, or `full`.
    pub level: Level,
    /// JSONL trace file path; `None` writes no trace. CLI `--trace-out`
    /// overrides this.
    pub trace_out: Option<String>,
}

/// Topology generators. Random families draw from the spec's seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// One of the paper's hand-crafted scenarios.
    Paper {
        /// Which figure: `fig2a`, `fig2b`, `fig4`, `fig6`, or `fig7`.
        figure: PaperFigure,
    },
    /// A path (chain) of `nodes` servers rooted at one end.
    Path {
        /// Node count (≥ 1).
        nodes: usize,
    },
    /// A star: one root, `nodes - 1` leaves.
    Star {
        /// Node count (≥ 1).
        nodes: usize,
    },
    /// A complete `arity`-ary tree of the given depth.
    KAry {
        /// Children per node (≥ 1).
        arity: usize,
        /// Levels below the root (≥ 0).
        depth: usize,
    },
    /// A two-level CDN: root, `regions` hubs, `leaves` edges per hub.
    TwoLevel {
        /// Regional hub count (≥ 1).
        regions: usize,
        /// Edge sites per hub (≥ 1).
        leaves: usize,
    },
    /// A caterpillar: a spine path with `legs` leaves per spine node.
    Caterpillar {
        /// Spine length (≥ 1).
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// A broom: a handle path ending in a fan of bristle leaves.
    Broom {
        /// Handle length (≥ 1).
        handle: usize,
        /// Leaf count at the end.
        bristles: usize,
    },
    /// A uniform random tree with exactly this depth (Section 5.1's
    /// random-tree family).
    RandomDepth {
        /// Node count (≥ depth + 1).
        nodes: usize,
        /// Required tree depth.
        depth: usize,
    },
    /// A hand-crafted tree given as a parent list (`null` marks the
    /// root), exactly as `Tree::from_parents` takes it.
    Explicit {
        /// `parents[i]` is node `i`'s parent (`None` for the root).
        parents: Vec<Option<usize>>,
    },
}

/// The paper's hand-crafted figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperFigure {
    /// Figure 2(a): TLB is GLE.
    Fig2a,
    /// Figure 2(b): TLB is not GLE.
    Fig2b,
    /// Figure 4: cascading fold sequence.
    Fig4,
    /// Figure 6: the convergence-experiment tree.
    Fig6,
    /// Figure 7: the potential-barrier document scenario.
    Fig7,
}

impl PaperFigure {
    /// The spec spelling of this figure.
    pub fn as_str(self) -> &'static str {
        match self {
            PaperFigure::Fig2a => "fig2a",
            PaperFigure::Fig2b => "fig2b",
            PaperFigure::Fig4 => "fig4",
            PaperFigure::Fig6 => "fig6",
            PaperFigure::Fig7 => "fig7",
        }
    }
}

/// Demand on the tree: per-node spontaneous rates plus (optionally) how
/// those rates split across a document universe.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Per-node spontaneous request rates.
    pub rates: RatesSpec,
    /// How rates split over documents; required by the document- and
    /// packet-level engines (or implied by the `fig7` paper workload).
    pub doc_mix: Option<DocMixSpec>,
}

/// Per-node spontaneous-rate generators.
#[derive(Debug, Clone, PartialEq)]
pub enum RatesSpec {
    /// The paper scenario's own rates (requires a `paper` topology).
    Paper,
    /// Every node generates `rate` req/s.
    Uniform {
        /// Rate per node.
        rate: f64,
    },
    /// Leaves generate `rate` req/s; interior nodes none.
    LeafOnly {
        /// Rate per leaf.
        rate: f64,
    },
    /// i.i.d. uniform rates in `[lo, hi)` (seeded).
    RandomUniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// `total` req/s split Zipf(`theta`)-skewed across nodes (seeded).
    ZipfNodes {
        /// Aggregate demand.
        total: f64,
        /// Zipf exponent.
        theta: f64,
    },
    /// Explicit per-node rates (must match the topology's node count).
    Explicit {
        /// Rate of node `i` at index `i`.
        rates: Vec<f64>,
    },
}

/// Document-mix generators.
#[derive(Debug, Clone, PartialEq)]
pub enum DocMixSpec {
    /// The paper scenario's own per-document demands (only `fig7` has
    /// them).
    Paper,
    /// Every node's rate splits over a shared universe of `docs`
    /// documents with Zipf(`theta`) popularity.
    SharedZipf {
        /// Document universe size (≥ 1).
        docs: usize,
        /// Zipf exponent.
        theta: f64,
    },
}

/// Engine choice plus protocol knobs. `alpha: None` always means the safe
/// default `1 / (max_degree + 1)`.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineSpec {
    /// Rate-level synchronous WebWave ([`ww_core::wave::RateWave`]).
    RateWave {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Gossip staleness in rounds.
        staleness: usize,
    },
    /// Document-level WebWave with barriers and tunneling
    /// ([`ww_core::docsim::DocSim`]).
    DocSim {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Enable tunneling.
        tunneling: bool,
        /// Underloaded periods tolerated before tunneling.
        barrier_patience: usize,
    },
    /// Packet-level event-driven WebWave
    /// ([`ww_core::packetsim::PacketSim`]); one engine round is one
    /// diffusion period of simulated time.
    PacketSim {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Enable tunneling.
        tunneling: bool,
        /// Underloaded periods tolerated before tunneling.
        barrier_patience: usize,
        /// One-way per-hop link latency, seconds.
        link_delay: f64,
        /// Gossip period, seconds.
        gossip_period: f64,
        /// Diffusion period, seconds (also the engine-round length).
        diffusion_period: f64,
        /// Rate-measurement window, seconds.
        measure_window: f64,
        /// Gossip-loss probability (failure injection).
        gossip_loss: f64,
        /// Relative hysteresis deadband.
        hysteresis: f64,
        /// Absolute deadband in Poisson sigmas.
        noise_sigmas: f64,
    },
    /// Sharded parallel packet-level WebWave
    /// ([`ww_pdes::ParPacketSim`]): the same protocol as `packet_sim`,
    /// run across `workers` subtree shards with conservative
    /// synchronization — bit-identical to `packet_sim` at every worker
    /// count. One engine round is one diffusion period.
    PacketSimPar {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Enable tunneling.
        tunneling: bool,
        /// Underloaded periods tolerated before tunneling.
        barrier_patience: usize,
        /// One-way per-hop link latency, seconds (must be positive: it
        /// is the conservative lookahead between shards).
        link_delay: f64,
        /// Gossip period, seconds.
        gossip_period: f64,
        /// Diffusion period, seconds (also the engine-round length).
        diffusion_period: f64,
        /// Rate-measurement window, seconds.
        measure_window: f64,
        /// Gossip-loss probability (failure injection).
        gossip_loss: f64,
        /// Relative hysteresis deadband.
        hysteresis: f64,
        /// Absolute deadband in Poisson sigmas.
        noise_sigmas: f64,
        /// Worker threads (= subtree shards, capped by the topology).
        workers: usize,
    },
    /// Distributed packet-level WebWave ([`ww_dist::DistPacketSim`]):
    /// the same sharded conservative engine as `packet_sim_par`, with
    /// the shards in separate OS processes (or threads) speaking the
    /// PDES wire protocol over TCP sockets — still bit-identical to
    /// `packet_sim` at every worker count. One engine round is one
    /// diffusion period.
    PacketSimDist {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Enable tunneling.
        tunneling: bool,
        /// Underloaded periods tolerated before tunneling.
        barrier_patience: usize,
        /// One-way per-hop link latency, seconds (must be positive: it
        /// is the conservative lookahead between shards).
        link_delay: f64,
        /// Gossip period, seconds.
        gossip_period: f64,
        /// Diffusion period, seconds (also the engine-round length).
        diffusion_period: f64,
        /// Rate-measurement window, seconds.
        measure_window: f64,
        /// Gossip-loss probability (failure injection).
        gossip_loss: f64,
        /// Relative hysteresis deadband.
        hysteresis: f64,
        /// Absolute deadband in Poisson sigmas.
        noise_sigmas: f64,
        /// Worker processes (= subtree shards, capped by the topology).
        workers: usize,
    },
    /// Multi-tree forest WebWave ([`ww_forest::ForestWave`]): the
    /// topology is taken as an undirected graph, re-rooted at each of
    /// `roots`, and the workload demand is offered to every tree.
    ForestWave {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Gossip totals across trees (`true`) or per-tree loads.
        coupled: bool,
        /// Home-server node of each tree.
        roots: Vec<usize>,
    },
    /// The threaded runtime ([`ww_runtime::run_cluster`]): one OS thread
    /// per node. Runs to completion in a single engine round.
    Cluster {
        /// Diffusion parameter override.
        alpha: Option<f64>,
        /// Local protocol rounds each server executes.
        rounds: usize,
        /// Channel capacity per neighbor link.
        channel_capacity: usize,
    },
    /// The baseline schemes of `ww-baselines`, each producing one static
    /// assignment report. Runs to completion in a single engine round.
    Baselines {
        /// Which schemes to run.
        schemes: Vec<BaselineScheme>,
        /// DNS round-robin replica count; `0` selects `n/4` clamped to
        /// `1..=16` (the `compare_all` default).
        replicas: usize,
        /// Directory lookup messages per request.
        lookup_msgs: f64,
        /// GLE-migration diffusion iterations.
        gle_iterations: usize,
        /// Rounds the WebWave row runs before reporting.
        webwave_rounds: usize,
        /// Gossip messages per second amortized into the WebWave row.
        gossip_per_second: f64,
    },
}

impl EngineSpec {
    /// The spec spelling of this engine (`"rate_wave"`, ...).
    pub fn kind(&self) -> &'static str {
        match self {
            EngineSpec::RateWave { .. } => "rate_wave",
            EngineSpec::DocSim { .. } => "doc_sim",
            EngineSpec::PacketSim { .. } => "packet_sim",
            EngineSpec::PacketSimPar { .. } => "packet_sim_par",
            EngineSpec::PacketSimDist { .. } => "packet_sim_dist",
            EngineSpec::ForestWave { .. } => "forest_wave",
            EngineSpec::Cluster { .. } => "cluster",
            EngineSpec::Baselines { .. } => "baselines",
        }
    }
}

/// The baseline schemes a [`EngineSpec::Baselines`] run can include.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineScheme {
    /// Home server serves everything.
    NoCache,
    /// Directory-based cooperative cache (perfect GLE, per-request
    /// control messages).
    Directory,
    /// DNS round-robin over fixed replica sites.
    DnsRoundRobin,
    /// Unconstrained GLE diffusion (ignores NSS).
    GleMigration,
    /// WebWave itself, for the same table.
    WebWave,
    /// The WebFold off-line optimum.
    WebFoldOracle,
}

impl BaselineScheme {
    /// Every scheme, in `compare_all` order.
    pub fn all() -> Vec<BaselineScheme> {
        vec![
            BaselineScheme::NoCache,
            BaselineScheme::Directory,
            BaselineScheme::DnsRoundRobin,
            BaselineScheme::GleMigration,
            BaselineScheme::WebWave,
            BaselineScheme::WebFoldOracle,
        ]
    }

    /// The spec spelling of this scheme.
    pub fn as_str(self) -> &'static str {
        match self {
            BaselineScheme::NoCache => "no-cache",
            BaselineScheme::Directory => "directory",
            BaselineScheme::DnsRoundRobin => "dns-rr",
            BaselineScheme::GleMigration => "gle-migration",
            BaselineScheme::WebWave => "webwave",
            BaselineScheme::WebFoldOracle => "webfold-oracle",
        }
    }
}

/// When a run stops. The [`crate::runner`] implements every rule once,
/// for every engine — no engine carries its own termination loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Termination {
    /// Stop after `max` engine rounds.
    Rounds {
        /// Round budget.
        max: usize,
    },
    /// Stop once the engine's convergence metric (distance to the TLB
    /// oracle, or a load-stability measure for engines without one)
    /// drops to `threshold`, or after `max_rounds`, whichever is first.
    Converged {
        /// Convergence threshold.
        threshold: f64,
        /// Safety cap on rounds.
        max_rounds: usize,
    },
    /// Stop after `seconds` of wall-clock time, or after `max_rounds`.
    WallClock {
        /// Wall-clock budget in seconds.
        seconds: f64,
        /// Safety cap on rounds.
        max_rounds: usize,
    },
}

/// A one-parameter sweep: the base spec runs once per value, each run
/// labeled `param=value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Which knob varies.
    pub param: SweepParam,
    /// The values it takes (interpreted per parameter).
    pub values: Vec<f64>,
}

/// Parameters a [`Sweep`] can vary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// `engine.staleness` (rate_wave only); value truncated to usize.
    Staleness,
    /// `engine.alpha` (any protocol engine).
    Alpha,
    /// `engine.tunneling` (doc_sim / packet_sim); nonzero = on.
    Tunneling,
    /// `engine.gossip_loss` (packet_sim / packet_sim_par).
    GossipLoss,
    /// `engine.workers` (packet_sim_par only); value truncated to usize.
    Workers,
    /// `workload.doc_mix.theta` (shared_zipf mixes).
    DocTheta,
    /// `seed`; value truncated to u64.
    Seed,
}

impl SweepParam {
    /// The spec spelling of this parameter.
    pub fn as_str(self) -> &'static str {
        match self {
            SweepParam::Staleness => "staleness",
            SweepParam::Alpha => "alpha",
            SweepParam::Tunneling => "tunneling",
            SweepParam::GossipLoss => "gossip_loss",
            SweepParam::Workers => "workers",
            SweepParam::DocTheta => "doc_theta",
            SweepParam::Seed => "seed",
        }
    }
}

impl Sweep {
    /// Produces the spec for one sweep value, or an error naming the
    /// incompatible field when the parameter does not apply.
    pub fn apply(&self, base: &ScenarioSpec, value: f64) -> Result<ScenarioSpec, SpecError> {
        let mut spec = base.clone();
        spec.sweep = None;
        // Swept values bypass the JSON field parsers, so each parameter
        // re-imposes its own range rule here — an out-of-range value must
        // surface as a SpecError, never as an engine-constructor panic.
        let whole = |value: f64| {
            if value < 0.0 || value.fract() != 0.0 {
                Err(SpecError::at(
                    "sweep.values",
                    format!("expected a non-negative integer, got {value}"),
                ))
            } else {
                Ok(value)
            }
        };
        match self.param {
            SweepParam::Staleness => match &mut spec.engine {
                EngineSpec::RateWave { staleness, .. } => *staleness = whole(value)? as usize,
                _ => {
                    return Err(SpecError::at(
                        "sweep.param",
                        "\"staleness\" applies only to the rate_wave engine",
                    ))
                }
            },
            SweepParam::Alpha => {
                if value <= 0.0 || value >= 1.0 {
                    return Err(SpecError::at(
                        "sweep.values",
                        format!("alpha must lie in (0, 1), got {value}"),
                    ));
                }
                let slot = match &mut spec.engine {
                    EngineSpec::RateWave { alpha, .. }
                    | EngineSpec::DocSim { alpha, .. }
                    | EngineSpec::PacketSim { alpha, .. }
                    | EngineSpec::PacketSimPar { alpha, .. }
                    | EngineSpec::PacketSimDist { alpha, .. }
                    | EngineSpec::ForestWave { alpha, .. }
                    | EngineSpec::Cluster { alpha, .. } => alpha,
                    EngineSpec::Baselines { .. } => {
                        return Err(SpecError::at(
                            "sweep.param",
                            "\"alpha\" does not apply to the baselines engine",
                        ))
                    }
                };
                *slot = Some(value);
            }
            SweepParam::Tunneling => {
                match &mut spec.engine {
                    EngineSpec::DocSim { tunneling, .. }
                    | EngineSpec::PacketSim { tunneling, .. }
                    | EngineSpec::PacketSimPar { tunneling, .. }
                    | EngineSpec::PacketSimDist { tunneling, .. } => {
                        *tunneling = value != 0.0;
                    }
                    _ => return Err(SpecError::at(
                        "sweep.param",
                        "\"tunneling\" applies only to the doc_sim / packet_sim family of engines",
                    )),
                }
            }
            SweepParam::GossipLoss => match &mut spec.engine {
                EngineSpec::PacketSim { gossip_loss, .. }
                | EngineSpec::PacketSimPar { gossip_loss, .. }
                | EngineSpec::PacketSimDist { gossip_loss, .. } => {
                    if !(0.0..=1.0).contains(&value) {
                        return Err(SpecError::at(
                            "sweep.values",
                            format!("gossip_loss is a probability, got {value}"),
                        ));
                    }
                    *gossip_loss = value;
                }
                _ => {
                    return Err(SpecError::at(
                        "sweep.param",
                        "\"gossip_loss\" applies only to the packet_sim family of engines",
                    ))
                }
            },
            SweepParam::Workers => {
                match &mut spec.engine {
                    EngineSpec::PacketSimPar { workers, .. }
                    | EngineSpec::PacketSimDist { workers, .. } => {
                        let w = whole(value)?;
                        if w < 1.0 {
                            return Err(SpecError::at(
                                "sweep.values",
                                format!("workers must be at least 1, got {value}"),
                            ));
                        }
                        *workers = w as usize;
                    }
                    _ => return Err(SpecError::at(
                        "sweep.param",
                        "\"workers\" applies only to the packet_sim_par / packet_sim_dist engines",
                    )),
                }
            }
            SweepParam::DocTheta => match &mut spec.workload.doc_mix {
                Some(DocMixSpec::SharedZipf { theta, .. }) => {
                    if value < 0.0 {
                        return Err(SpecError::at(
                            "sweep.values",
                            format!("doc_theta must be non-negative, got {value}"),
                        ));
                    }
                    *theta = value;
                }
                _ => {
                    return Err(SpecError::at(
                        "sweep.param",
                        "\"doc_theta\" requires a shared_zipf doc mix",
                    ))
                }
            },
            SweepParam::Seed => spec.seed = whole(value)? as u64,
        }
        Ok(spec)
    }

    /// The row label for one sweep value (`"staleness=3"`).
    pub fn label(&self, value: f64) -> String {
        match self.param {
            SweepParam::Staleness | SweepParam::Seed | SweepParam::Workers => {
                format!("{}={}", self.param.as_str(), value as u64)
            }
            SweepParam::Tunneling => {
                format!("{}={}", self.param.as_str(), value != 0.0)
            }
            _ => format!("{}={}", self.param.as_str(), value),
        }
    }
}

impl ScenarioSpec {
    /// A CI-sized variant of this spec: topology capped to a few hundred
    /// nodes, round budgets capped to a few hundred rounds, wall-clock
    /// budgets to one second. Semantics are otherwise untouched — the
    /// events schedule included — so a smoke run exercises exactly the
    /// same resolution and engine paths. Dynamics specs meant for CI
    /// should therefore keep node references inside the smoke caps and
    /// event rounds inside the smoke round budget.
    pub fn smoke(&self) -> ScenarioSpec {
        let mut spec = self.clone();
        spec.topology = match spec.topology {
            TopologySpec::Path { nodes } => TopologySpec::Path {
                nodes: nodes.min(64),
            },
            TopologySpec::Star { nodes } => TopologySpec::Star {
                nodes: nodes.min(64),
            },
            TopologySpec::KAry { arity, depth } => TopologySpec::KAry {
                arity: arity.min(4),
                depth: depth.min(4),
            },
            TopologySpec::TwoLevel { regions, leaves } => TopologySpec::TwoLevel {
                regions: regions.min(4),
                leaves: leaves.min(4),
            },
            TopologySpec::Caterpillar { spine, legs } => TopologySpec::Caterpillar {
                spine: spine.min(16),
                legs: legs.min(4),
            },
            TopologySpec::Broom { handle, bristles } => TopologySpec::Broom {
                handle: handle.min(16),
                bristles: bristles.min(16),
            },
            TopologySpec::RandomDepth { nodes, depth } => {
                let depth = depth.min(6);
                TopologySpec::RandomDepth {
                    nodes: nodes.clamp(depth + 1, 128),
                    depth,
                }
            }
            paper @ TopologySpec::Paper { .. } => paper,
            explicit @ TopologySpec::Explicit { .. } => explicit,
        };
        spec.termination = match spec.termination {
            Termination::Rounds { max } => Termination::Rounds { max: max.min(200) },
            Termination::Converged {
                threshold,
                max_rounds,
            } => Termination::Converged {
                threshold,
                max_rounds: max_rounds.min(200),
            },
            Termination::WallClock {
                seconds,
                max_rounds,
            } => Termination::WallClock {
                seconds: seconds.min(1.0),
                max_rounds: max_rounds.min(200),
            },
        };
        // The packet engines cost one event per request: cap both the
        // simulated horizon (rounds = diffusion periods) and the offered
        // demand so a smoke run stays in the tens of thousands of events.
        if matches!(
            spec.engine,
            EngineSpec::PacketSim { .. }
                | EngineSpec::PacketSimPar { .. }
                | EngineSpec::PacketSimDist { .. }
        ) {
            spec.termination = match spec.termination {
                Termination::Rounds { max } => Termination::Rounds { max: max.min(10) },
                Termination::Converged {
                    threshold,
                    max_rounds,
                } => Termination::Converged {
                    threshold,
                    max_rounds: max_rounds.min(10),
                },
                Termination::WallClock {
                    seconds,
                    max_rounds,
                } => Termination::WallClock {
                    seconds: seconds.min(1.0),
                    max_rounds: max_rounds.min(10),
                },
            };
            spec.workload.rates = match spec.workload.rates {
                RatesSpec::Uniform { rate } => RatesSpec::Uniform {
                    rate: rate.min(20.0),
                },
                RatesSpec::LeafOnly { rate } => RatesSpec::LeafOnly {
                    rate: rate.min(20.0),
                },
                RatesSpec::RandomUniform { lo, hi } => RatesSpec::RandomUniform {
                    lo: lo.min(20.0),
                    hi: hi.min(20.0),
                },
                RatesSpec::ZipfNodes { total, theta } => RatesSpec::ZipfNodes {
                    total: total.min(1200.0),
                    theta,
                },
                explicit @ RatesSpec::Explicit { .. } => explicit,
                paper @ RatesSpec::Paper => paper,
            };
        }
        if let Some(DocMixSpec::SharedZipf { docs, .. }) = &mut spec.workload.doc_mix {
            *docs = (*docs).min(32);
        }
        if let EngineSpec::Cluster { rounds, .. } = &mut spec.engine {
            *rounds = (*rounds).min(500);
        }
        if let EngineSpec::Baselines {
            gle_iterations,
            webwave_rounds,
            ..
        } = &mut spec.engine
        {
            *gle_iterations = (*gle_iterations).min(500);
            *webwave_rounds = (*webwave_rounds).min(500);
        }
        spec
    }
}
