//! # ww-scenario — one declarative spec and one `Engine` trait for every
//! WebWave simulator, runtime, and baseline
//!
//! The workspace has five ways to run the WebWave protocol — rate-level
//! ([`ww_core::wave::RateWave`]), document-level
//! ([`ww_core::docsim::DocSim`]), packet-level
//! ([`ww_core::packetsim::PacketSim`]), multi-tree
//! ([`ww_forest::ForestWave`]), and as real threads
//! ([`ww_runtime::run_cluster`]) — plus the baseline schemes of
//! `ww-baselines`. This crate puts them all behind one surface:
//!
//! * [`ScenarioSpec`] — a declarative description (topology generator,
//!   workload, engine choice, protocol knobs, seed, termination rule,
//!   optional parameter sweep) that round-trips through JSON, so new
//!   workloads are data (`scenarios/*.json`), not new `main` functions;
//! * [`Engine`] — the common stepping/metrics/reporting trait, with a
//!   streaming [`Observer`]/[`MetricSink`] API replacing the per-engine
//!   report plumbing;
//! * [`Runner`] — resolves a spec into a boxed engine and drives it to
//!   termination (round budget, convergence threshold, or wall-clock),
//!   emitting a uniform [`ScenarioReport`].
//!
//! # Example
//!
//! ```
//! use ww_scenario::{Runner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json(r#"{
//!     "name": "fig2b",
//!     "topology": {"kind": "paper", "figure": "fig2b"},
//!     "workload": {"rates": {"kind": "paper"}},
//!     "engine": {"kind": "rate_wave"},
//!     "termination": {"kind": "converged", "threshold": 1e-6, "max_rounds": 5000}
//! }"#).unwrap();
//! let report = Runner::new().run(&spec).unwrap();
//! assert!(report.rows[0].converged);
//! let load = report.rows[0].outcome.load.as_ref().unwrap();
//! assert_eq!(load.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod engine;
pub mod error;
pub mod json;
pub mod runner;
pub mod spec;

pub use adapters::{BaselineEngine, BaselineParams, ClusterEngine, PacketEngine};
pub use engine::{Engine, EngineReport, MetricSink, NullObserver, Observer, StepOutcome};
pub use error::SpecError;
pub use runner::{drive, DriveResult, RunRow, Runner, ScenarioReport};
pub use spec::{
    BaselineScheme, DocMixSpec, EngineSpec, PaperFigure, RatesSpec, ScenarioSpec, Sweep,
    SweepParam, Termination, TopologySpec, WorkloadSpec, DEFAULT_SEED,
};
