//! # ww-scenario — one declarative spec and one `Engine` trait for every
//! WebWave simulator, runtime, and baseline
//!
//! The workspace has six ways to run the WebWave protocol — rate-level
//! ([`ww_core::wave::RateWave`]), document-level
//! ([`ww_core::docsim::DocSim`]), packet-level
//! ([`ww_core::packetsim::PacketSim`]), sharded parallel packet-level
//! ([`ww_pdes::ParPacketSim`]), multi-tree
//! ([`ww_forest::ForestWave`]), and as real threads
//! ([`ww_runtime::run_cluster`]) — plus the baseline schemes of
//! `ww-baselines`. This crate puts them all behind one surface:
//!
//! * [`ScenarioSpec`] — a declarative description (topology generator,
//!   workload, engine choice, protocol knobs, seed, termination rule,
//!   optional parameter sweep) that round-trips through JSON, so new
//!   workloads are data (`scenarios/*.json`), not new `main` functions;
//! * [`Engine`] — the common stepping/metrics/reporting trait, with a
//!   streaming [`Observer`]/[`MetricSink`] API replacing the per-engine
//!   report plumbing;
//! * [`Runner`] — resolves a spec into a boxed engine and drives it to
//!   termination (round budget, convergence threshold, or wall-clock),
//!   emitting a uniform [`ScenarioReport`].
//!
//! Specs may also carry an **events schedule** ([`events`]): churn
//! (`node_join` / `node_leave`), control-link failures (`link_fail` /
//! `link_heal`), document lifecycle (`doc_publish` / `doc_update`), and
//! workload shifts, interleaved with the rounds and reported with
//! per-event recovery metrics.
//!
//! # Example
//!
//! ```
//! use ww_scenario::{Runner, ScenarioSpec};
//!
//! let spec = ScenarioSpec::from_json(r#"{
//!     "name": "fig2b",
//!     "topology": {"kind": "paper", "figure": "fig2b"},
//!     "workload": {"rates": {"kind": "paper"}},
//!     "engine": {"kind": "rate_wave"},
//!     "termination": {"kind": "converged", "threshold": 1e-6, "max_rounds": 5000}
//! }"#).unwrap();
//! let report = Runner::new().run(&spec).unwrap();
//! assert!(report.rows[0].converged);
//! let load = report.rows[0].outcome.load.as_ref().unwrap();
//! assert_eq!(load.len(), 5);
//! ```
//!
//! # Example: a dynamic world
//!
//! ```
//! use ww_scenario::{Runner, ScenarioSpec};
//!
//! // A converged system suffers a flash crowd at a new edge cache, which
//! // later departs again; the report carries per-event recovery metrics.
//! let spec = ScenarioSpec::from_json(r#"{
//!     "name": "join-then-leave",
//!     "topology": {"kind": "paper", "figure": "fig2b"},
//!     "workload": {"rates": {"kind": "paper"}},
//!     "engine": {"kind": "rate_wave"},
//!     "termination": {"kind": "converged", "threshold": 1e-6, "max_rounds": 20000},
//!     "events": {
//!         "recovery_threshold": 0.5,
//!         "schedule": [
//!             {"round": 40, "kind": "node_join", "parent": 2, "rate": 30.0},
//!             {"round": 80, "kind": "node_leave", "node": 5}
//!         ]
//!     }
//! }"#).unwrap();
//! let report = Runner::new().run(&spec).unwrap();
//! let row = &report.rows[0];
//! assert!(row.converged);
//! assert_eq!(row.events.len(), 2);
//! assert!(row.events.iter().all(|m| m.accepted()));
//! // Both shocks re-converged under the 0.5 recovery threshold.
//! assert!(row.events.iter().all(|m| m.recovery_rounds.is_some()));
//! // Back to the original 5 nodes after the join and the leave.
//! assert_eq!(row.outcome.load.as_ref().unwrap().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adapters;
pub mod engine;
pub mod error;
pub mod events;
pub mod json;
pub mod runner;
pub mod spec;

pub use adapters::{
    BaselineEngine, BaselineParams, ClusterEngine, DistPacketEngine, PacketEngine, ParPacketEngine,
};
pub use engine::{Engine, EngineReport, MetricSink, NullObserver, Observer, StepOutcome};
pub use error::SpecError;
pub use events::{
    Event, EventError, EventKindSpec, EventMarker, EventSpec, EventsSpec,
    DEFAULT_RECOVERY_THRESHOLD,
};
pub use runner::{drive, DriveResult, RunRow, Runner, ScenarioReport};
pub use spec::{
    BaselineScheme, DocMixSpec, EngineSpec, PaperFigure, RatesSpec, RebalanceSpec, ScenarioSpec,
    Sweep, SweepParam, TelemetrySpec, Termination, TopologySpec, WorkloadSpec, DEFAULT_SEED,
};
