//! The telemetry determinism gate: instrumentation is observation-only.
//!
//! * **Golden bit-identity** — the sequential, parallel (1/2/4
//!   workers), and distributed (1/2/4 workers, threads) packet engines
//!   produce byte-identical canonical output (trace, load vector,
//!   metric stream, all as raw IEEE-754 bits) at telemetry levels
//!   `off`, `counters`, and `full`, both event-free and under the full
//!   churn grammar.
//! * **JSONL traces** — `telemetry.trace_out` writes one parseable
//!   JSON object per line, framed `run_start` .. `run_end`.
//! * **Metric-key scheme** — every adapter's `metrics()` output (all
//!   eight engine kinds) uses dotted-path keys accepted by
//!   [`ww_telemetry::valid_metric_key`], and emission order is stable
//!   across identical runs.
//! * **Observer error paths** — rejected dynamics events reach
//!   `Observer::on_event` with the typed error, and show up as
//!   `accepted: false` trace records.

use ww_scenario::{EngineReport, Runner, ScenarioSpec};
use ww_telemetry::{valid_metric_key, Level};

/// Renders an engine report into a canonical byte string: every metric
/// bit-exact, the trace and load vectors bit-exact. Telemetry is
/// deliberately absent — this is the surface that must not move.
fn canonical(report: &EngineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("rounds={}\n", report.rounds));
    if let Some(trace) = &report.trace {
        for x in trace {
            out.push_str(&format!("trace={:016x}\n", x.to_bits()));
        }
    }
    if let Some(load) = &report.load {
        for (node, x) in load.iter() {
            out.push_str(&format!("load[{node}]={:016x}\n", x.to_bits()));
        }
    }
    for (name, value) in &report.metrics {
        out.push_str(&format!("{name}={:016x}\n", value.to_bits()));
    }
    out
}

/// A packet-engine spec on a 40-node ternary tree. `engine` is the
/// engine object's JSON; `events` the (possibly empty) events block.
fn packet_spec(engine: &str, events: &str) -> ScenarioSpec {
    let text = format!(
        r#"{{
          "name": "telemetry-golden",
          "topology": {{"kind": "k_ary", "arity": 3, "depth": 3}},
          "workload": {{
            "rates": {{"kind": "leaf_only", "rate": 6.0}},
            "doc_mix": {{"kind": "shared_zipf", "docs": 6, "theta": 1.0}}
          }},
          "engine": {engine},
          "termination": {{"kind": "rounds", "max": 8}},
          "seed": 777{events}
        }}"#
    );
    ScenarioSpec::from_json(&text).expect("spec parses")
}

/// The full seven-kind churn grammar, shared with the parallel and
/// distributed determinism gates.
const CHURN_EVENTS: &str = r#",
          "events": {
            "recovery_threshold": 5.0,
            "schedule": [
              {"round": 1, "kind": "node_join", "parent": 4, "rate": 24.0},
              {"round": 2, "kind": "link_fail", "node": 2},
              {"round": 3, "kind": "workload_shift",
               "doc_mix": {"kind": "shared_zipf", "docs": 9, "theta": 0.4}},
              {"round": 4, "kind": "doc_publish", "doc": 50, "origin": 7, "rate": 18.0},
              {"round": 5, "kind": "link_heal", "node": 2},
              {"round": 6, "kind": "node_leave", "node": 40},
              {"round": 7, "kind": "doc_update", "doc": 50}
            ]
          }"#;

fn with_level(spec: &ScenarioSpec, level: Level) -> ScenarioSpec {
    let mut out = spec.clone();
    out.telemetry.level = level;
    out
}

fn run_one(spec: &ScenarioSpec) -> EngineReport {
    let report = Runner::new().run(spec).expect("spec runs");
    assert_eq!(report.rows.len(), 1, "unswept spec yields one row");
    report.rows.into_iter().next().unwrap().outcome
}

/// The engine matrix of the golden gate: sequential, parallel at
/// 1/2/4 workers, distributed (threaded shards over TCP) at 1/2/4.
fn engine_matrix() -> Vec<(String, String)> {
    let mut engines = vec![(
        "packet_sim".to_string(),
        r#"{"kind": "packet_sim"}"#.to_string(),
    )];
    for w in [1, 2, 4] {
        engines.push((
            format!("packet_sim_par/w{w}"),
            format!(r#"{{"kind": "packet_sim_par", "workers": {w}}}"#),
        ));
    }
    for w in [1, 2, 4] {
        engines.push((
            format!("packet_sim_dist/w{w}"),
            format!(r#"{{"kind": "packet_sim_dist", "workers": {w}}}"#),
        ));
    }
    engines
}

/// Runs the full level × engine matrix for one events block and checks
/// every cell against the sequential telemetry-off baseline.
fn assert_matrix_bit_identical(events: &str) {
    let baseline = canonical(&run_one(&packet_spec(r#"{"kind": "packet_sim"}"#, events)));
    assert!(baseline.contains("trace="), "baseline records a trace");
    for (label, engine) in engine_matrix() {
        let base = packet_spec(&engine, events);
        for level in [Level::Off, Level::Counters, Level::Full] {
            let outcome = run_one(&with_level(&base, level));
            assert_eq!(
                canonical(&outcome),
                baseline,
                "{label} at level {level} diverges from sequential telemetry-off"
            );
            match level {
                Level::Off => assert!(
                    outcome.telemetry.is_none(),
                    "{label}: level off must not attach a snapshot"
                ),
                _ => {
                    let snap = outcome
                        .telemetry
                        .as_ref()
                        .unwrap_or_else(|| panic!("{label}: level {level} attaches a snapshot"));
                    assert!(
                        !snap.counters.is_empty(),
                        "{label}: level {level} records counters"
                    );
                    for (key, _) in &snap.counters {
                        assert!(valid_metric_key(key), "{label}: bad counter key {key:?}");
                    }
                }
            }
            if level == Level::Full {
                // Span-grade timing: phase timers for the in-process
                // engines; the distributed coordinator's spans are its
                // RTT histograms (its one phase, oracle refresh, only
                // fires when churn mutates the world mid-run).
                let snap = outcome.telemetry.as_ref().unwrap();
                assert!(
                    !snap.phases.is_empty() || !snap.hists.is_empty(),
                    "{label}: level full records span timings"
                );
            }
        }
    }
}

#[test]
fn event_free_run_bit_identical_across_levels_and_engines() {
    assert_matrix_bit_identical("");
}

#[test]
fn churn_run_bit_identical_across_levels_and_engines() {
    assert_matrix_bit_identical(CHURN_EVENTS);
}

// ---------------------------------------------------------------------
// JSONL traces

#[test]
fn trace_out_writes_parseable_framed_jsonl() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ww-telemetry-test-{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path").to_string();

    let mut spec = packet_spec(r#"{"kind": "packet_sim"}"#, CHURN_EVENTS);
    spec.telemetry.level = Level::Counters;
    spec.telemetry.trace_out = Some(path_str);
    let outcome = run_one(&spec);
    assert!(outcome.telemetry.is_some());

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2 + 8 + 7, "start + end + rounds + events");

    let records: Vec<serde_json::Value> = lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line)
                .unwrap_or_else(|e| panic!("trace line {} is not JSON: {e}\n{line}", i + 1))
        })
        .collect();
    let kind = |v: &serde_json::Value| {
        v.as_object()
            .and_then(|m| m.get("record"))
            .and_then(|r| r.as_str())
            .expect("every record has a \"record\" discriminator")
            .to_string()
    };
    assert_eq!(kind(&records[0]), "run_start");
    assert_eq!(kind(records.last().unwrap()), "run_end");
    let events = records.iter().filter(|r| kind(r) == "event").count();
    assert_eq!(events, 7, "one trace record per scheduled event");
    let end = records.last().unwrap().as_object().unwrap();
    assert!(
        end.get("telemetry")
            .is_some_and(|t| t.as_object().is_some()),
        "run_end embeds the telemetry snapshot when counters are on"
    );
}

// ---------------------------------------------------------------------
// Metric-key scheme across all eight adapters

/// One small spec per engine kind. Each runs in smoke mode; the point
/// is the shape of the metric stream, not the physics.
fn adapter_specs() -> Vec<(&'static str, ScenarioSpec)> {
    let parse = |text: &str| ScenarioSpec::from_json(text).expect("adapter spec parses");
    let tree = |engine: &str, termination: &str| {
        parse(&format!(
            r#"{{
              "name": "metric-key-scheme",
              "topology": {{"kind": "k_ary", "arity": 3, "depth": 3}},
              "workload": {{
                "rates": {{"kind": "leaf_only", "rate": 6.0}},
                "doc_mix": {{"kind": "shared_zipf", "docs": 6, "theta": 1.0}}
              }},
              "engine": {engine},
              "termination": {termination},
              "seed": 7
            }}"#
        ))
    };
    vec![
        (
            "rate_wave",
            tree(
                r#"{"kind": "rate_wave"}"#,
                r#"{"kind": "rounds", "max": 30}"#,
            ),
        ),
        (
            "doc_sim",
            tree(r#"{"kind": "doc_sim"}"#, r#"{"kind": "rounds", "max": 30}"#),
        ),
        (
            "packet_sim",
            tree(
                r#"{"kind": "packet_sim"}"#,
                r#"{"kind": "rounds", "max": 6}"#,
            ),
        ),
        (
            "packet_sim_par",
            tree(
                r#"{"kind": "packet_sim_par", "workers": 2}"#,
                r#"{"kind": "rounds", "max": 6}"#,
            ),
        ),
        (
            "packet_sim_dist",
            tree(
                r#"{"kind": "packet_sim_dist", "workers": 2}"#,
                r#"{"kind": "rounds", "max": 6}"#,
            ),
        ),
        (
            "cluster",
            tree(
                r#"{"kind": "cluster", "rounds": 40}"#,
                r#"{"kind": "rounds", "max": 40}"#,
            ),
        ),
        (
            "baselines",
            tree(
                r#"{"kind": "baselines"}"#,
                r#"{"kind": "rounds", "max": 1}"#,
            ),
        ),
        (
            "forest_wave",
            parse(
                r#"{
                  "name": "metric-key-scheme-forest",
                  "topology": {"kind": "path", "nodes": 6},
                  "workload": {
                    "rates": {"kind": "explicit", "rates": [0.0, 60.0, 0.0, 0.0, 0.0, 0.0]}
                  },
                  "engine": {"kind": "forest_wave", "roots": [0, 5]},
                  "termination": {"kind": "rounds", "max": 200},
                  "seed": 7
                }"#,
            ),
        ),
    ]
}

#[test]
fn all_eight_adapters_emit_valid_dotted_metric_keys() {
    let specs = adapter_specs();
    assert_eq!(specs.len(), 8, "one spec per engine kind");
    for (name, spec) in specs {
        assert_eq!(spec.engine.kind(), name, "spec exercises the right engine");
        let outcome = run_one(&spec);
        assert!(!outcome.metrics.is_empty(), "{name} emits metrics");
        for (key, _) in &outcome.metrics {
            assert!(
                valid_metric_key(key),
                "{name}: metric key {key:?} violates the dotted-path scheme"
            );
        }
    }
}

#[test]
fn event_marker_metric_keys_follow_the_scheme() {
    let spec = packet_spec(r#"{"kind": "packet_sim"}"#, CHURN_EVENTS);
    let outcome = run_one(&spec);
    let event_keys: Vec<&String> = outcome
        .metrics
        .iter()
        .map(|(k, _)| k)
        .filter(|k| k.starts_with("event."))
        .collect();
    assert!(!event_keys.is_empty(), "churn run emits event markers");
    for key in event_keys {
        assert!(valid_metric_key(key), "event marker key {key:?} invalid");
    }
}

#[test]
fn metric_emission_order_is_stable_across_identical_runs() {
    // MetricSink consumers (the canonical renderer, the JSONL trace,
    // the golden tests) all depend on emission order, so it must be a
    // pure function of the run.
    let spec = packet_spec(r#"{"kind": "packet_sim"}"#, CHURN_EVENTS);
    let first: Vec<String> = run_one(&spec)
        .metrics
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    let second: Vec<String> = run_one(&spec)
        .metrics
        .iter()
        .map(|(k, _)| k.clone())
        .collect();
    assert!(!first.is_empty());
    assert_eq!(first, second, "metric emission order drifted between runs");
}

// ---------------------------------------------------------------------
// Observer error paths

#[test]
fn rejected_events_reach_the_observer_with_a_typed_error() {
    use std::cell::RefCell;
    use std::rc::Rc;
    use ww_scenario::{Event, EventError, Observer};

    // rate_wave has no documents, so doc_update must be rejected —
    // surfaced to the observer, never a panic.
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "observer-error-path",
          "topology": {"kind": "k_ary", "arity": 3, "depth": 2},
          "workload": {"rates": {"kind": "leaf_only", "rate": 4.0}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 6},
          "seed": 3,
          "events": {
            "schedule": [
              {"round": 2, "kind": "doc_update", "doc": 1},
              {"round": 3, "kind": "link_fail", "node": 1}
            ]
          }
        }"#,
    )
    .expect("spec parses");

    #[derive(Default)]
    struct Seen {
        events: Vec<(usize, String, Option<String>)>,
    }
    struct Recorder(Rc<RefCell<Seen>>);
    impl Observer for Recorder {
        fn on_event(
            &mut self,
            index: usize,
            _round: usize,
            event: &Event,
            error: Option<&EventError>,
        ) {
            self.0.borrow_mut().events.push((
                index,
                event.kind().to_string(),
                error.map(|e| e.to_string()),
            ));
        }
    }

    let seen = Rc::new(RefCell::new(Seen::default()));
    let mut recorder = Recorder(Rc::clone(&seen));
    let report = Runner::new()
        .run_with(&spec, &mut recorder)
        .expect("run survives the rejected event");

    let seen = seen.borrow();
    assert_eq!(seen.events.len(), 2, "both events reach the observer");
    let (index, kind, error) = &seen.events[0];
    assert_eq!((*index, kind.as_str()), (0, "doc_update"));
    let msg = error.as_ref().expect("doc_update is rejected");
    assert!(
        msg.contains("rate_wave") && msg.contains("doc_update"),
        "error names the engine and event: {msg}"
    );
    let (_, kind, error) = &seen.events[1];
    assert_eq!(kind.as_str(), "link_fail");
    assert!(error.is_none(), "link_fail is accepted: {error:?}");

    // The same rejection is visible in the run's markers.
    let row = &report.rows[0];
    assert!(!row.events[0].accepted());
    assert!(row.events[1].accepted());
}

#[test]
fn rejected_events_appear_in_the_jsonl_trace_as_not_accepted() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ww-telemetry-reject-{}.jsonl", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path").to_string();

    let mut spec = ScenarioSpec::from_json(
        r#"{
          "name": "trace-error-path",
          "topology": {"kind": "k_ary", "arity": 3, "depth": 2},
          "workload": {"rates": {"kind": "leaf_only", "rate": 4.0}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 6},
          "seed": 3,
          "events": {
            "schedule": [{"round": 2, "kind": "doc_update", "doc": 1}]
          }
        }"#,
    )
    .expect("spec parses");
    spec.telemetry.trace_out = Some(path_str);
    let _ = run_one(&spec);

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let event = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("line parses"))
        .find(|v: &serde_json::Value| {
            v.as_object()
                .and_then(|m| m.get("record"))
                .and_then(|r| r.as_str())
                == Some("event")
        })
        .expect("trace records the event");
    let map = event.as_object().unwrap();
    assert_eq!(map.get("accepted").and_then(|v| v.as_bool()), Some(false));
    let error = map
        .get("error")
        .and_then(|v| v.as_str())
        .expect("error string present");
    assert!(
        error.contains("doc_update"),
        "error is the typed message: {error}"
    );
}
