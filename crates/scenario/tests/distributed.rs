//! Spec-level pinning of the distributed packet engine: a
//! `packet_sim_dist` run — shards in worker processes or threads
//! speaking the wire protocol over TCP — reproduces the sequential
//! `packet_sim` run bit for bit at every worker count, event-free and
//! under churn.
//!
//! CI runs this file twice: under the default test threading and with
//! `RUST_TEST_THREADS=1`, so scheduler interleaving differences cannot
//! hide nondeterminism.

use ww_scenario::{EngineReport, EngineSpec, Runner, ScenarioSpec};

/// The sequential twin of a `packet_sim_dist` spec: identical in every
/// knob, engine swapped to `packet_sim`.
fn sequential_twin(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut twin = spec.clone();
    twin.engine = match &spec.engine {
        EngineSpec::PacketSimDist {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
            workers: _,
        } => EngineSpec::PacketSim {
            alpha: *alpha,
            tunneling: *tunneling,
            barrier_patience: *barrier_patience,
            link_delay: *link_delay,
            gossip_period: *gossip_period,
            diffusion_period: *diffusion_period,
            measure_window: *measure_window,
            gossip_loss: *gossip_loss,
            hysteresis: *hysteresis,
            noise_sigmas: *noise_sigmas,
        },
        other => panic!("not a packet_sim_dist spec: {other:?}"),
    };
    twin
}

/// The same spec with a different worker count.
fn with_workers(spec: &ScenarioSpec, w: usize) -> ScenarioSpec {
    let mut out = spec.clone();
    match &mut out.engine {
        EngineSpec::PacketSimDist { workers, .. } => *workers = w,
        other => panic!("not a packet_sim_dist spec: {other:?}"),
    }
    out
}

/// Renders an engine report into a canonical byte string: every metric
/// bit-exact, the trace and load vectors bit-exact.
fn canonical(report: &EngineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("rounds={}\n", report.rounds));
    if let Some(trace) = &report.trace {
        for x in trace {
            out.push_str(&format!("trace={:016x}\n", x.to_bits()));
        }
    }
    if let Some(load) = &report.load {
        for (node, x) in load.iter() {
            out.push_str(&format!("load[{node}]={:016x}\n", x.to_bits()));
        }
    }
    for (name, value) in &report.metrics {
        out.push_str(&format!("{name}={:016x}\n", value.to_bits()));
    }
    out
}

fn load_spec(name: &str) -> ScenarioSpec {
    let path = format!("{}/../../scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn run_one(spec: &ScenarioSpec) -> EngineReport {
    let report = Runner::new().run(spec).expect("spec runs");
    assert_eq!(report.rows.len(), 1, "unswept spec yields one row");
    report.rows.into_iter().next().unwrap().outcome
}

/// dist_smoke.json without its sweep — the base distributed spec.
fn dist_smoke_base() -> ScenarioSpec {
    let mut spec = load_spec("dist_smoke.json");
    spec.sweep = None;
    spec
}

#[test]
fn dist_smoke_matches_sequential_at_1_2_4_workers() {
    let base = dist_smoke_base();
    let seq = run_one(&sequential_twin(&base));
    let seq_canon = canonical(&seq);
    assert!(
        seq.trace.as_ref().is_some_and(|t| !t.is_empty()),
        "sequential run must produce a trace"
    );
    for workers in [1, 2, 4] {
        let outcome = run_one(&with_workers(&base, workers));
        assert_eq!(
            canonical(&outcome),
            seq_canon,
            "dist_smoke workers={workers} diverges from sequential packet_sim"
        );
    }
}

#[test]
fn dist_smoke_workers_sweep_rows_agree() {
    // The shipped spec's own shape: sweeping the workers knob is the
    // spec-level statement of the determinism claim.
    let report = Runner::new()
        .run(&load_spec("dist_smoke.json"))
        .expect("sweep runs");
    assert_eq!(report.rows.len(), 3);
    assert_eq!(report.rows[0].label, "workers=1");
    let first = canonical(&report.rows[0].outcome);
    for row in &report.rows[1..] {
        assert_eq!(canonical(&row.outcome), first, "row {} diverges", row.label);
    }
}

#[test]
fn rebalance_block_is_rejected_at_launch_with_a_typed_error() {
    // The distributed runtime cannot migrate node state between worker
    // processes, so a `rebalance` block must fail loudly — builder's
    // choice: a typed refusal, never a silently static run.
    let mut spec = dist_smoke_base();
    spec.rebalance = Some(ww_scenario::RebalanceSpec {
        trigger_imbalance: 1.2,
        min_epoch_gap: 2,
    });
    let err = Runner::new()
        .run(&spec)
        .expect_err("dist + rebalance must not launch");
    let msg = err.to_string();
    assert!(
        msg.contains("distributed launch failed"),
        "error {msg:?} should surface the launch failure"
    );
    assert!(
        msg.contains("unsupported on the distributed runtime"),
        "error {msg:?} should carry DistError::Unsupported"
    );
    assert!(
        msg.contains("packet_sim_par"),
        "error {msg:?} should point at the in-process alternative"
    );
}

/// A full-grammar dynamics spec on the distributed engine: churn, a
/// workload shift, a publish, an invalidation, and a link failure
/// cycle, every mutation broadcast to the worker processes.
fn churn_dynamics_spec() -> ScenarioSpec {
    ScenarioSpec::from_json(
        r#"{
          "name": "distributed-churn-determinism",
          "topology": {"kind": "k_ary", "arity": 3, "depth": 3},
          "workload": {
            "rates": {"kind": "leaf_only", "rate": 6.0},
            "doc_mix": {"kind": "shared_zipf", "docs": 6, "theta": 1.0}
          },
          "engine": {"kind": "packet_sim_dist", "workers": 4},
          "termination": {"kind": "rounds", "max": 8},
          "seed": 777,
          "events": {
            "recovery_threshold": 5.0,
            "schedule": [
              {"round": 1, "kind": "node_join", "parent": 4, "rate": 24.0},
              {"round": 2, "kind": "link_fail", "node": 2},
              {"round": 3, "kind": "workload_shift",
               "doc_mix": {"kind": "shared_zipf", "docs": 9, "theta": 0.4}},
              {"round": 4, "kind": "doc_publish", "doc": 50, "origin": 7, "rate": 18.0},
              {"round": 5, "kind": "link_heal", "node": 2},
              {"round": 6, "kind": "node_leave", "node": 40},
              {"round": 7, "kind": "doc_update", "doc": 50}
            ]
          }
        }"#,
    )
    .expect("churn dynamics spec parses")
}

#[test]
fn churn_dynamics_byte_identical_to_sequential_at_1_2_4_workers() {
    let base = churn_dynamics_spec();
    let seq_report = Runner::new()
        .run(&sequential_twin(&base))
        .expect("sequential churn spec runs");
    let seq_row = &seq_report.rows[0];
    assert_eq!(seq_row.events.len(), 7, "all seven events fire");
    assert!(
        seq_row.events.iter().all(|m| m.accepted()),
        "packet_sim accepts the full event grammar: {:?}",
        seq_row.events
    );
    let seq_canon = canonical(&seq_row.outcome);
    for workers in [1, 2, 4] {
        let spec = with_workers(&base, workers);
        let report = Runner::new().run(&spec).expect("churn spec runs");
        let row = &report.rows[0];
        assert!(
            row.events.iter().all(|m| m.accepted()),
            "packet_sim_dist accepts the full event grammar: {:?}",
            row.events
        );
        assert_eq!(
            canonical(&row.outcome),
            seq_canon,
            "churn dynamics diverge from sequential at workers={workers}"
        );
    }
}
