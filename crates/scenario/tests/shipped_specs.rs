//! Every shipped spec under `scenarios/` must parse, round-trip, and
//! smoke-run — checked-in specs can never rot.

use std::path::PathBuf;
use ww_scenario::{Runner, ScenarioSpec};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn shipped_specs() -> Vec<(String, String)> {
    let mut specs: Vec<(String, String)> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .map(|entry| entry.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable spec");
            (name, text)
        })
        .collect();
    specs.sort();
    specs
}

#[test]
fn the_twelve_advertised_specs_are_present() {
    let names: Vec<String> = shipped_specs().into_iter().map(|(n, _)| n).collect();
    for expected in [
        "fig2b.json",
        "flash_crowd.json",
        "planetary_cdn.json",
        "barrier_tunneling.json",
        "baseline_shootout.json",
        "scaling_100k.json",
        "staleness_sweep.json",
        "zipf_docmix_sweep.json",
        "churn_storm.json",
        "rolling_link_failures.json",
        "publish_then_invalidate.json",
        "hot_set_rotation.json",
        "flash_crowd_rebalance.json",
    ] {
        assert!(names.iter().any(|n| n == expected), "missing {expected}");
    }
}

#[test]
fn every_shipped_spec_parses_and_round_trips() {
    for (name, text) in shipped_specs() {
        let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let reparsed = ScenarioSpec::from_json(&spec.to_json())
            .unwrap_or_else(|e| panic!("{name} re-parse: {e}"));
        assert_eq!(reparsed, spec, "{name} does not round-trip");
    }
}

#[test]
fn every_shipped_spec_smoke_runs() {
    let runner = Runner::new().smoke(true);
    for (name, text) in shipped_specs() {
        let spec = ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = runner
            .run(&spec)
            .unwrap_or_else(|e| panic!("{name} smoke run: {e}"));
        assert!(!report.rows.is_empty(), "{name}: no runs");
        assert!(!report.report.is_empty(), "{name}: empty report");
        for row in &report.rows {
            assert!(row.outcome.rounds > 0, "{name}: engine never stepped");
        }
    }
}
