//! Spec-level pinning of the parallel packet engine:
//!
//! * **Golden traces** — for shipped specs, `packet_sim_par` at
//!   `workers ∈ {1, 2, 4, 8}` reproduces the sequential `packet_sim`
//!   run bit for bit (trace, load vector, every shared metric).
//! * **Cross-shard determinism** — a dynamics spec (link failures +
//!   invalidation mid-run) renders byte-identical reports and metric
//!   streams at every worker count.
//!
//! CI runs this file twice: under the default test threading and with
//! `RUST_TEST_THREADS=1`, so scheduler interleaving differences cannot
//! hide nondeterminism.

use ww_scenario::{EngineReport, EngineSpec, Runner, ScenarioSpec};

/// The sequential twin of a `packet_sim_par` spec: identical in every
/// knob, engine swapped to `packet_sim`.
fn sequential_twin(spec: &ScenarioSpec) -> ScenarioSpec {
    let mut twin = spec.clone();
    twin.engine = match &spec.engine {
        EngineSpec::PacketSimPar {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
            workers: _,
        } => EngineSpec::PacketSim {
            alpha: *alpha,
            tunneling: *tunneling,
            barrier_patience: *barrier_patience,
            link_delay: *link_delay,
            gossip_period: *gossip_period,
            diffusion_period: *diffusion_period,
            measure_window: *measure_window,
            gossip_loss: *gossip_loss,
            hysteresis: *hysteresis,
            noise_sigmas: *noise_sigmas,
        },
        other => panic!("not a packet_sim_par spec: {other:?}"),
    };
    twin
}

/// The same spec with a different worker count.
fn with_workers(spec: &ScenarioSpec, w: usize) -> ScenarioSpec {
    let mut out = spec.clone();
    match &mut out.engine {
        EngineSpec::PacketSimPar { workers, .. } => *workers = w,
        other => panic!("not a packet_sim_par spec: {other:?}"),
    }
    out
}

/// Renders an engine report into a canonical byte string: every metric
/// bit-exact, the trace and load vectors bit-exact.
fn canonical(report: &EngineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("rounds={}\n", report.rounds));
    if let Some(trace) = &report.trace {
        for x in trace {
            out.push_str(&format!("trace={:016x}\n", x.to_bits()));
        }
    }
    if let Some(load) = &report.load {
        for (node, x) in load.iter() {
            out.push_str(&format!("load[{node}]={:016x}\n", x.to_bits()));
        }
    }
    for (name, value) in &report.metrics {
        out.push_str(&format!("{name}={:016x}\n", value.to_bits()));
    }
    out
}

fn load_spec(name: &str) -> ScenarioSpec {
    let path = format!("{}/../../scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// flash_crowd.json is shipped with the sequential engine; its parallel
/// twin must replay it exactly.
fn parallel_twin_of_flash_crowd() -> ScenarioSpec {
    let spec = load_spec("flash_crowd.json");
    let mut par = spec.clone();
    par.engine = match &spec.engine {
        EngineSpec::PacketSim {
            alpha,
            tunneling,
            barrier_patience,
            link_delay,
            gossip_period,
            diffusion_period,
            measure_window,
            gossip_loss,
            hysteresis,
            noise_sigmas,
        } => EngineSpec::PacketSimPar {
            alpha: *alpha,
            tunneling: *tunneling,
            barrier_patience: *barrier_patience,
            link_delay: *link_delay,
            gossip_period: *gossip_period,
            diffusion_period: *diffusion_period,
            measure_window: *measure_window,
            gossip_loss: *gossip_loss,
            hysteresis: *hysteresis,
            noise_sigmas: *noise_sigmas,
            workers: 4,
        },
        other => panic!("flash_crowd should be packet_sim, found {other:?}"),
    };
    par
}

fn run_smoke(spec: &ScenarioSpec) -> EngineReport {
    let report = Runner::new().smoke(true).run(spec).expect("spec runs");
    assert_eq!(report.rows.len(), 1, "unswept spec yields one row");
    report.rows.into_iter().next().unwrap().outcome
}

#[test]
fn flash_crowd_golden_trace_matches_sequential_at_1_2_4_8_workers() {
    let par = parallel_twin_of_flash_crowd();
    let seq = run_smoke(&sequential_twin(&par));
    let seq_canon = canonical(&seq);
    assert!(
        seq.trace.as_ref().is_some_and(|t| !t.is_empty()),
        "sequential run must produce a trace"
    );
    for workers in [1, 2, 4, 8] {
        let outcome = run_smoke(&with_workers(&par, workers));
        assert_eq!(
            canonical(&outcome),
            seq_canon,
            "flash_crowd workers={workers} diverges from sequential packet_sim"
        );
    }
}

#[test]
fn scaling_1m_golden_trace_matches_sequential_at_1_2_4_8_workers() {
    // The shipped million-node spec, shrunk by smoke mode to CI size —
    // same engine path, same resolution pipeline.
    let par = load_spec("scaling_1m_parallel.json");
    let seq = run_smoke(&sequential_twin(&par));
    let seq_canon = canonical(&seq);
    for workers in [1, 2, 4, 8] {
        let outcome = run_smoke(&with_workers(&par, workers));
        assert_eq!(
            canonical(&outcome),
            seq_canon,
            "scaling_1m workers={workers} diverges from sequential packet_sim"
        );
    }
}

/// A dynamics spec for the determinism gate: a converging parallel run
/// suffers a control-link failure, a heal, and a flash invalidation.
fn dynamics_spec() -> ScenarioSpec {
    ScenarioSpec::from_json(
        r#"{
          "name": "parallel-dynamics-determinism",
          "topology": {"kind": "k_ary", "arity": 3, "depth": 3},
          "workload": {
            "rates": {"kind": "leaf_only", "rate": 8.0},
            "doc_mix": {"kind": "shared_zipf", "docs": 6, "theta": 1.0}
          },
          "engine": {"kind": "packet_sim_par", "workers": 4},
          "termination": {"kind": "rounds", "max": 8},
          "seed": 424242,
          "events": {
            "recovery_threshold": 5.0,
            "schedule": [
              {"round": 2, "kind": "link_fail", "node": 1},
              {"round": 4, "kind": "link_heal", "node": 1},
              {"round": 5, "kind": "doc_update", "doc": 1}
            ]
          }
        }"#,
    )
    .expect("dynamics spec parses")
}

#[test]
fn dynamics_run_is_byte_identical_at_1_2_4_workers() {
    let base = dynamics_spec();
    let mut renders = Vec::new();
    let mut canons = Vec::new();
    for workers in [1, 2, 4] {
        let spec = with_workers(&base, workers);
        let report = Runner::new().run(&spec).expect("dynamics spec runs");
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.events.len(), 3, "all three events fire");
        assert!(
            row.events.iter().all(|m| m.accepted()),
            "packet_sim_par supports link failures and invalidation: {:?}",
            row.events
        );
        canons.push(canonical(&row.outcome));
        renders.push(report.report);
    }
    assert_eq!(canons[0], canons[1], "metric stream differs at 2 workers");
    assert_eq!(canons[0], canons[2], "metric stream differs at 4 workers");
    assert_eq!(renders[0], renders[1], "report differs at 2 workers");
    assert_eq!(renders[0], renders[2], "report differs at 4 workers");
}

/// A full-grammar dynamics spec: churn, a workload shift, a publish,
/// an invalidation, and a link failure cycle, all on the parallel
/// packet engine.
fn churn_dynamics_spec() -> ScenarioSpec {
    ScenarioSpec::from_json(
        r#"{
          "name": "parallel-churn-determinism",
          "topology": {"kind": "k_ary", "arity": 3, "depth": 3},
          "workload": {
            "rates": {"kind": "leaf_only", "rate": 6.0},
            "doc_mix": {"kind": "shared_zipf", "docs": 6, "theta": 1.0}
          },
          "engine": {"kind": "packet_sim_par", "workers": 4},
          "termination": {"kind": "rounds", "max": 10},
          "seed": 777,
          "events": {
            "recovery_threshold": 5.0,
            "schedule": [
              {"round": 1, "kind": "node_join", "parent": 4, "rate": 24.0},
              {"round": 2, "kind": "link_fail", "node": 2},
              {"round": 3, "kind": "workload_shift",
               "doc_mix": {"kind": "shared_zipf", "docs": 9, "theta": 0.4}},
              {"round": 4, "kind": "doc_publish", "doc": 50, "origin": 7, "rate": 18.0},
              {"round": 5, "kind": "link_heal", "node": 2},
              {"round": 6, "kind": "node_leave", "node": 40},
              {"round": 7, "kind": "doc_update", "doc": 50}
            ]
          }
        }"#,
    )
    .expect("churn dynamics spec parses")
}

#[test]
fn churn_dynamics_accepted_and_byte_identical_to_sequential_at_1_2_4_workers() {
    // The tentpole claim at spec level: the packet engines honor the
    // full seven-kind event grammar, and the parallel engine replays
    // the sequential engine byte for byte while the world churns.
    let base = churn_dynamics_spec();
    let seq_report = Runner::new()
        .run(&sequential_twin(&base))
        .expect("sequential churn spec runs");
    let seq_row = &seq_report.rows[0];
    assert_eq!(seq_row.events.len(), 7, "all seven events fire");
    assert!(
        seq_row.events.iter().all(|m| m.accepted()),
        "packet_sim accepts the full event grammar: {:?}",
        seq_row.events
    );
    let seq_canon = canonical(&seq_row.outcome);
    // The sequential report header names a different engine; compare
    // everything below it.
    let seq_render: String = seq_report.report.lines().skip(1).collect();
    for workers in [1, 2, 4] {
        let spec = with_workers(&base, workers);
        let report = Runner::new().run(&spec).expect("churn spec runs");
        let row = &report.rows[0];
        assert!(
            row.events.iter().all(|m| m.accepted()),
            "packet_sim_par accepts the full event grammar: {:?}",
            row.events
        );
        assert_eq!(
            canonical(&row.outcome),
            seq_canon,
            "churn dynamics diverge from sequential at workers={workers}"
        );
        let render: String = report.report.lines().skip(1).collect();
        assert_eq!(
            render, seq_render,
            "rendered report diverges at workers={workers}"
        );
    }
}

/// The same spec with an adaptive-rebalancing block.
fn with_rebalance(spec: &ScenarioSpec, trigger: f64, gap: u64) -> ScenarioSpec {
    let mut out = spec.clone();
    out.rebalance = Some(ww_scenario::RebalanceSpec {
        trigger_imbalance: trigger,
        min_epoch_gap: gap,
    });
    out
}

#[test]
fn rebalancing_spec_is_byte_identical_to_static_partition() {
    // The spec-level determinism pin for adaptive rebalancing: the same
    // scenario with the block absent, eager, and conservative renders
    // identical canonical rows at several worker counts. Rebalancing is
    // an execution detail, not a semantic knob.
    let base = parallel_twin_of_flash_crowd();
    let static_canon = canonical(&run_smoke(&base));
    for workers in [2, 4, 8] {
        for (trigger, gap) in [(1.05, 1), (1.5, 3)] {
            let spec = with_rebalance(&with_workers(&base, workers), trigger, gap);
            assert_eq!(
                canonical(&run_smoke(&spec)),
                static_canon,
                "rebalance trigger={trigger} gap={gap} diverges at workers={workers}"
            );
        }
    }
}

#[test]
fn rebalancing_churn_spec_is_byte_identical_to_static_partition() {
    let base = churn_dynamics_spec();
    let report = Runner::new().run(&base).expect("churn spec runs");
    let static_canon = canonical(&report.rows[0].outcome);
    let spec = with_rebalance(&base, 1.05, 1);
    let report = Runner::new()
        .run(&spec)
        .expect("rebalancing churn spec runs");
    assert!(
        report.rows[0].events.iter().all(|m| m.accepted()),
        "rebalancing must not disturb the event grammar: {:?}",
        report.rows[0].events
    );
    assert_eq!(
        canonical(&report.rows[0].outcome),
        static_canon,
        "churn + rebalancing diverges from the static partition"
    );
}

#[test]
fn rebalance_block_round_trips_and_rejects_bad_values() {
    let spec = with_rebalance(&parallel_twin_of_flash_crowd(), 1.2, 2);
    let parsed = ScenarioSpec::from_json(&spec.to_json()).expect("rebalance spec round-trips");
    assert_eq!(parsed, spec);

    let reject = |engine: &str, rebalance: &str, needle: &str| {
        let text = format!(
            r#"{{
              "name": "bad-rebalance",
              "topology": {{"kind": "star", "nodes": 8}},
              "workload": {{
                "rates": {{"kind": "uniform", "rate": 4.0}},
                "doc_mix": {{"kind": "shared_zipf", "docs": 4, "theta": 1.0}}
              }},
              "engine": {engine},
              "termination": {{"kind": "rounds", "max": 2}},
              "rebalance": {rebalance}
            }}"#
        );
        let err = ScenarioSpec::from_json(&text).expect_err("bad rebalance spec must not parse");
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "error {msg:?} should mention {needle:?}"
        );
    };
    // Non-sharded engines have nothing to rebalance.
    reject(
        r#"{"kind": "packet_sim"}"#,
        r#"{"trigger_imbalance": 1.2}"#,
        "packet_sim_par",
    );
    // A sub-1 ratio or an empty window can never trigger meaningfully.
    reject(
        r#"{"kind": "packet_sim_par", "workers": 2}"#,
        r#"{"trigger_imbalance": 0.5}"#,
        "at least 1",
    );
    reject(
        r#"{"kind": "packet_sim_par", "workers": 2}"#,
        r#"{"trigger_imbalance": 1.2, "min_epoch_gap": 0}"#,
        "at least 1 epoch",
    );
    reject(
        r#"{"kind": "packet_sim_par", "workers": 2}"#,
        r#"{"trigger_imbalance": 1.2, "threshold": 3}"#,
        "threshold",
    );
}

#[test]
fn workers_sweep_runs_and_rows_agree() {
    // Sweeping the workers knob is the spec-level way to state the
    // determinism claim: every row of the sweep reports the same bits.
    let mut spec = parallel_twin_of_flash_crowd();
    spec.sweep = Some(ww_scenario::Sweep {
        param: ww_scenario::SweepParam::Workers,
        values: vec![1.0, 2.0, 8.0],
    });
    let report = Runner::new().smoke(true).run(&spec).expect("sweep runs");
    assert_eq!(report.rows.len(), 3);
    assert_eq!(report.rows[0].label, "workers=1");
    let first = canonical(&report.rows[0].outcome);
    for row in &report.rows[1..] {
        assert_eq!(canonical(&row.outcome), first, "row {} diverges", row.label);
    }
}
