//! The event-driven dynamics layer, end to end: static specs stay
//! bit-identical to their pre-dynamics traces, dynamic specs recover,
//! rejections are typed markers, and the metric stream carries the
//! per-event timeline.

use std::path::PathBuf;
use ww_scenario::{Event, EventError, Observer, Runner, ScenarioSpec};

fn load_spec(name: &str) -> ScenarioSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

fn bits(trace: &[f64]) -> Vec<u64> {
    trace.iter().map(|d| d.to_bits()).collect()
}

/// Golden static pinning: a spec with an *empty* events schedule must
/// take the classic drive path and produce bit-identical traces to the
/// same spec without an events block at all — pre-dynamics runs are
/// untouched.
#[test]
fn empty_schedule_is_bit_identical_to_no_events_field() {
    let static_spec = load_spec("fig2b.json");
    let mut with_empty = static_spec.clone();
    with_empty.events = Some(ww_scenario::EventsSpec {
        schedule: Vec::new(),
        recovery_threshold: 1e-3,
        batched_barriers: false,
    });
    let runner = Runner::new();
    let a = runner.run(&static_spec).expect("static run");
    let b = runner.run(&with_empty).expect("empty-schedule run");
    let ta = a.rows[0].outcome.trace.as_ref().expect("trace");
    let tb = b.rows[0].outcome.trace.as_ref().expect("trace");
    assert_eq!(bits(ta), bits(tb), "empty schedule must not perturb runs");
    assert!(b.rows[0].events.is_empty());
}

/// The acceptance scenario: the churn storm re-converges to TLB
/// (bounded distance) after the last `node_leave`.
#[test]
fn churn_storm_reconverges_after_the_last_leave() {
    let report = Runner::new()
        .smoke(true)
        .run(&load_spec("churn_storm.json"))
        .expect("churn storm runs");
    let row = &report.rows[0];
    assert_eq!(row.events.len(), 7, "all seven events fired");
    for m in &row.events {
        assert!(
            m.accepted(),
            "event[{}] rejected: {:?}",
            m.index,
            m.rejected
        );
    }
    let last_leave = row.events.last().expect("has events");
    assert_eq!(last_leave.kind, "node_leave");
    assert!(
        last_leave.recovery_rounds.is_some(),
        "the system must re-converge under the recovery threshold after the last leave"
    );
    // And the run as a whole reached its convergence threshold again.
    let final_distance = row.outcome.final_distance().expect("trace recorded");
    assert!(
        final_distance < 1e-2,
        "post-churn distance to TLB {final_distance} not bounded"
    );
    // The markers are also in the metric stream.
    assert!(row.outcome.metric("event.6.node_leave.round").is_some());
    assert!(row
        .outcome
        .metric("event.6.node_leave.recovery_rounds")
        .is_some());
}

/// Rolling link failures: load stays trapped upstream while the control
/// links are down and drains after each heal.
#[test]
fn rolling_link_failures_recover_after_each_heal() {
    let report = Runner::new()
        .smoke(true)
        .run(&load_spec("rolling_link_failures.json"))
        .expect("rolling failures run");
    let row = &report.rows[0];
    assert!(row.converged, "must re-converge after the last heal");
    let heals: Vec<_> = row
        .events
        .iter()
        .filter(|m| m.kind == "link_heal")
        .collect();
    assert_eq!(heals.len(), 3);
    for h in &heals {
        assert!(h.accepted());
        assert!(
            h.recovery_rounds.is_some(),
            "heal {} never recovered",
            h.index
        );
    }
    // Later heals recover faster: less load remains trapped.
    assert!(heals[0].recovery_rounds > heals[2].recovery_rounds);
}

/// Publish-then-invalidate on the document engine: the publish and both
/// updates each shock the system off TLB, and it recovers every time.
#[test]
fn publish_then_invalidate_recovers() {
    let report = Runner::new()
        .smoke(true)
        .run(&load_spec("publish_then_invalidate.json"))
        .expect("publish spec runs");
    let row = &report.rows[0];
    assert_eq!(row.events.len(), 3);
    for m in &row.events {
        assert!(
            m.accepted(),
            "event[{}] rejected: {:?}",
            m.index,
            m.rejected
        );
        assert!(
            m.recovery_rounds.is_some(),
            "event[{}] never recovered",
            m.index
        );
        // Every event creates a real shock before recovery.
        assert!(m.peak_distance.unwrap() > 50.0);
    }
}

/// Hot-set rotation: workload shifts resolve against the current
/// topology and the doc engine rebalances after each.
#[test]
fn hot_set_rotation_recovers() {
    let report = Runner::new()
        .smoke(true)
        .run(&load_spec("hot_set_rotation.json"))
        .expect("rotation spec runs");
    let row = &report.rows[0];
    assert_eq!(row.events.len(), 2);
    for m in &row.events {
        assert!(m.accepted());
        assert!(m.recovery_rounds.is_some());
    }
}

/// Engines reject events outside their semantics with a typed error —
/// recorded as a marker, never a panic — and the run continues.
#[test]
fn unsupported_events_become_rejected_markers() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "doc-events-on-rate-engine",
          "topology": {"kind": "paper", "figure": "fig6"},
          "workload": {"rates": {"kind": "paper"}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 40},
          "events": {"schedule": [
            {"round": 5, "kind": "doc_update", "doc": 1},
            {"round": 10, "kind": "link_fail", "node": 1},
            {"round": 20, "kind": "link_heal", "node": 1}
          ]}
        }"#,
    )
    .unwrap();
    let report = Runner::new().run(&spec).expect("run survives rejection");
    let row = &report.rows[0];
    assert_eq!(row.events.len(), 3);
    assert!(!row.events[0].accepted());
    let rejection = row.events[0].rejected.as_ref().unwrap();
    assert!(
        rejection.contains("does not support doc_update"),
        "got {rejection:?}"
    );
    // The rejection names what the engine *does* honor.
    assert!(
        rejection.contains("it supports:") && rejection.contains("workload_shift"),
        "rejection should list supported kinds, got {rejection:?}"
    );
    assert!(row.events[1].accepted());
    assert!(row.events[2].accepted());
    assert_eq!(row.outcome.rounds, 40, "the run continued to its budget");
    assert_eq!(row.outcome.metric("event.0.doc_update.accepted"), Some(0.0));
    assert!(report.report.contains("rejected"));
}

/// The packet engines honor the full seven-kind event grammar — the
/// support matrix in `docs/dynamics.md` has no "—" cells left in their
/// columns. (The parallel twin is pinned byte-identical to this run in
/// `tests/parallel.rs`.)
#[test]
fn packet_engine_accepts_all_seven_event_kinds() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "packet-full-grammar",
          "topology": {"kind": "two_level", "regions": 3, "leaves": 3},
          "workload": {
            "rates": {"kind": "leaf_only", "rate": 6.0},
            "doc_mix": {"kind": "shared_zipf", "docs": 5, "theta": 1.0}
          },
          "engine": {"kind": "packet_sim"},
          "termination": {"kind": "rounds", "max": 9},
          "events": {"schedule": [
            {"round": 1, "kind": "node_join", "parent": 2, "rate": 12.0},
            {"round": 2, "kind": "link_fail", "node": 3},
            {"round": 3, "kind": "workload_shift",
             "doc_mix": {"kind": "shared_zipf", "docs": 7, "theta": 0.5}},
            {"round": 4, "kind": "doc_publish", "doc": 40, "origin": 5, "rate": 9.0},
            {"round": 5, "kind": "link_heal", "node": 3},
            {"round": 6, "kind": "node_leave", "node": 13},
            {"round": 7, "kind": "doc_update", "doc": 40}
          ]}
        }"#,
    )
    .unwrap();
    let report = Runner::new().run(&spec).expect("packet dynamics run");
    let row = &report.rows[0];
    assert_eq!(row.events.len(), 7);
    for m in &row.events {
        assert!(
            m.accepted(),
            "event[{}] {} rejected: {:?}",
            m.index,
            m.kind,
            m.rejected
        );
    }
    // The run keeps serving after the churn storm.
    assert!(
        row.outcome
            .metric("served_requests")
            .is_some_and(|s| s > 100.0),
        "served_requests missing or tiny: {:?}",
        row.outcome.metric("served_requests")
    );
}

/// One-shot engines accept churn at round 0 (reshaping the world they
/// run on) and reject events after their single step.
#[test]
fn baselines_accept_round_zero_churn_only() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "baselines-churn",
          "topology": {"kind": "star", "nodes": 8},
          "workload": {"rates": {"kind": "uniform", "rate": 5.0}},
          "engine": {"kind": "baselines", "schemes": ["no-cache", "webfold-oracle"]},
          "termination": {"kind": "rounds", "max": 5},
          "events": {"schedule": [
            {"round": 0, "kind": "node_join", "parent": 0, "rate": 5.0},
            {"round": 0, "kind": "node_leave", "node": 3},
            {"round": 2, "kind": "node_join", "parent": 0, "rate": 5.0}
          ]}
        }"#,
    )
    .unwrap();
    let report = Runner::new().run(&spec).expect("baselines run");
    let row = &report.rows[0];
    // Round-0 churn reshapes the tree before the one-shot step...
    assert!(row.events[0].accepted());
    assert!(row.events[1].accepted());
    // 8 + 1 - 1 = 8 nodes in the final assignment.
    assert_eq!(row.outcome.schemes[0].load.len(), 8);
    // ...and the engine finishes in one step, so the round-2 event never
    // fires (one-shot runs end before it comes due).
    assert_eq!(row.events.len(), 2);
}

/// Structural schedule errors (out-of-range nodes) abort the run with a
/// SpecError naming the schedule entry.
#[test]
fn out_of_range_event_node_is_a_spec_error() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "bad-event-node",
          "topology": {"kind": "path", "nodes": 4},
          "workload": {"rates": {"kind": "uniform", "rate": 1.0}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 10},
          "events": {"schedule": [{"round": 1, "kind": "node_leave", "node": 77}]}
        }"#,
    )
    .unwrap();
    let err = Runner::new().run(&spec).expect_err("bad node must error");
    let rendered = err.to_string();
    assert!(rendered.contains("events.schedule[0].node"), "{rendered}");
    assert!(rendered.contains("outside"), "{rendered}");
}

/// A `converged` termination does not stop the run while events are
/// still pending: the fault injection happens even if the system has
/// already converged.
#[test]
fn convergence_waits_for_pending_events() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "late-event",
          "topology": {"kind": "paper", "figure": "fig2b"},
          "workload": {"rates": {"kind": "paper"}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "converged", "threshold": 1e-6, "max_rounds": 5000},
          "events": {
            "recovery_threshold": 1e-6,
            "schedule": [
              {"round": 3000, "kind": "node_join", "parent": 2, "rate": 25.0}
            ]
          }
        }"#,
    )
    .unwrap();
    let report = Runner::new().run(&spec).expect("late-event run");
    let row = &report.rows[0];
    // The static fig2b run converges in ~2k rounds; with the pending
    // round-3000 join the runner keeps going, fires it, and re-converges.
    assert!(row.outcome.rounds > 3000);
    assert!(row.converged);
    assert_eq!(row.events.len(), 1);
    assert!(row.events[0].accepted());
    assert!(row.events[0].recovery_rounds.is_some());
    // The grown tree has 6 nodes.
    assert_eq!(row.outcome.load.as_ref().unwrap().len(), 6);
}

/// The Observer sees every fired event.
#[test]
fn observer_receives_event_callbacks() {
    #[derive(Default)]
    struct Spy {
        events: Vec<(usize, usize, String, bool)>,
        rounds: usize,
    }
    impl Observer for Spy {
        fn on_round(&mut self, _round: usize, _c: Option<f64>) {
            self.rounds += 1;
        }
        fn on_event(
            &mut self,
            index: usize,
            round: usize,
            event: &Event,
            error: Option<&EventError>,
        ) {
            self.events
                .push((index, round, event.kind().to_string(), error.is_none()));
        }
    }
    let mut spy = Spy::default();
    let report = Runner::new()
        .smoke(true)
        .run_with(&load_spec("rolling_link_failures.json"), &mut spy)
        .expect("observed run");
    assert_eq!(spy.events.len(), 6);
    assert!(spy.events.iter().all(|&(_, _, _, accepted)| accepted));
    assert_eq!(spy.events[0].2, "link_fail");
    assert_eq!(spy.rounds, report.rows[0].outcome.rounds);
}

/// Batched barriers on the analytical engine: the churn-soak spec run
/// with `batched_barriers` on and off must accept every event and land
/// on the bit-identical final load vector. The only permitted
/// difference is trace density — one oracle sample per *barrier*
/// instead of one per *event* — so the batched trace is strictly
/// shorter while its final entry matches bit for bit.
#[test]
fn churn_soak_batched_barriers_match_unbatched_final_state() {
    let mut spec = load_spec("churn_soak.json");
    let runner = Runner::new().smoke(true);

    spec.events.as_mut().expect("events").batched_barriers = false;
    let unbatched = runner.run(&spec).expect("unbatched soak");
    spec.events.as_mut().expect("events").batched_barriers = true;
    let batched = runner.run(&spec).expect("batched soak");

    let (ru, rb) = (&unbatched.rows[0], &batched.rows[0]);
    for m in ru.events.iter().chain(rb.events.iter()) {
        assert!(
            m.accepted(),
            "event[{}] rejected: {:?}",
            m.index,
            m.rejected
        );
    }
    let lu = ru.outcome.load.as_ref().expect("unbatched load");
    let lb = rb.outcome.load.as_ref().expect("batched load");
    assert_eq!(
        bits(lu.as_slice()),
        bits(lb.as_slice()),
        "final load diverges between batched and unbatched barriers"
    );
    let tu = ru.outcome.trace.as_ref().expect("unbatched trace");
    let tb = rb.outcome.trace.as_ref().expect("batched trace");
    assert!(
        tb.len() < tu.len(),
        "batched trace ({}) must sample fewer oracle refreshes than unbatched ({})",
        tb.len(),
        tu.len()
    );
    assert_eq!(
        tu.last().unwrap().to_bits(),
        tb.last().unwrap().to_bits(),
        "final distance diverges"
    );
}

/// Batched barriers on the packet engine are *fully* bit-identical to
/// one-at-a-time application — traces included — because batching only
/// coalesces the oracle refresh and queue surgery, never the event
/// stream. Coalesce the whole storm into two same-round barriers so
/// each `barrier_commit` really covers several ops.
#[test]
fn packet_storm_batched_barriers_are_bit_identical_to_unbatched() {
    let mut spec = load_spec("packet_churn_storm.json");
    {
        let events = spec.events.as_mut().expect("events");
        for (i, e) in events.schedule.iter_mut().enumerate() {
            // Two joins, a workload shift, and both leaves share one
            // barrier; the publish/update pair shares the second.
            e.round = if i < 5 { 2 } else { 4 };
        }
    }
    let runner = Runner::new().smoke(true);

    spec.events.as_mut().expect("events").batched_barriers = false;
    let unbatched = runner.run(&spec).expect("unbatched storm");
    spec.events.as_mut().expect("events").batched_barriers = true;
    let batched = runner.run(&spec).expect("batched storm");

    let (ru, rb) = (&unbatched.rows[0], &batched.rows[0]);
    for m in ru.events.iter().chain(rb.events.iter()) {
        assert!(
            m.accepted(),
            "event[{}] rejected: {:?}",
            m.index,
            m.rejected
        );
    }
    let tu = ru.outcome.trace.as_ref().expect("unbatched trace");
    let tb = rb.outcome.trace.as_ref().expect("batched trace");
    assert_eq!(bits(tu), bits(tb), "packet traces diverge under batching");
    let lu = ru.outcome.load.as_ref().expect("unbatched load");
    let lb = rb.outcome.load.as_ref().expect("batched load");
    assert_eq!(
        bits(lu.as_slice()),
        bits(lb.as_slice()),
        "packet served rates diverge under batching"
    );
    assert_eq!(
        ru.outcome.metric("served_requests"),
        rb.outcome.metric("served_requests"),
        "served totals diverge under batching"
    );
}
