//! Property tests: `ScenarioSpec` round-trips through JSON exactly, and
//! malformed documents are rejected with a useful field path.

use proptest::prelude::*;
use ww_scenario::{
    BaselineScheme, DocMixSpec, EngineSpec, EventKindSpec, EventSpec, EventsSpec, PaperFigure,
    RatesSpec, RebalanceSpec, ScenarioSpec, Sweep, SweepParam, TelemetrySpec, Termination,
    TopologySpec, WorkloadSpec,
};
use ww_telemetry::Level;

/// Telemetry settings derived from the seed: exercises every level and
/// both trace_out shapes across the generated specs without another
/// strategy axis.
fn arb_telemetry_from_seed(seed: u64) -> TelemetrySpec {
    TelemetrySpec {
        level: match seed % 3 {
            0 => Level::Off,
            1 => Level::Counters,
            _ => Level::Full,
        },
        trace_out: (seed % 2 == 1).then(|| format!("trace-{}.jsonl", seed % 7)),
    }
}

fn arb_topology() -> BoxedStrategy<TopologySpec> {
    (0usize..9)
        .prop_flat_map(|choice| match choice {
            8 => proptest::collection::vec(0usize..12, 1..8)
                .prop_map(|raw| TopologySpec::Explicit {
                    parents: raw
                        .into_iter()
                        .map(|x| if x == 0 { None } else { Some(x - 1) })
                        .collect(),
                })
                .boxed(),
            0 => (0usize..5)
                .prop_map(|f| TopologySpec::Paper {
                    figure: [
                        PaperFigure::Fig2a,
                        PaperFigure::Fig2b,
                        PaperFigure::Fig4,
                        PaperFigure::Fig6,
                        PaperFigure::Fig7,
                    ][f],
                })
                .boxed(),
            1 => (1usize..200)
                .prop_map(|nodes| TopologySpec::Path { nodes })
                .boxed(),
            2 => (1usize..200)
                .prop_map(|nodes| TopologySpec::Star { nodes })
                .boxed(),
            3 => ((1usize..4), (0usize..5))
                .prop_map(|(arity, depth)| TopologySpec::KAry { arity, depth })
                .boxed(),
            4 => ((1usize..8), (1usize..8))
                .prop_map(|(regions, leaves)| TopologySpec::TwoLevel { regions, leaves })
                .boxed(),
            5 => ((1usize..16), (0usize..4))
                .prop_map(|(spine, legs)| TopologySpec::Caterpillar { spine, legs })
                .boxed(),
            6 => ((1usize..16), (0usize..16))
                .prop_map(|(handle, bristles)| TopologySpec::Broom { handle, bristles })
                .boxed(),
            _ => ((2usize..300), (1usize..9))
                .prop_map(|(nodes, depth)| TopologySpec::RandomDepth {
                    nodes: nodes.max(depth + 1),
                    depth,
                })
                .boxed(),
        })
        .boxed()
}

fn arb_rates() -> BoxedStrategy<RatesSpec> {
    (0usize..6)
        .prop_flat_map(|choice| match choice {
            0 => Just(RatesSpec::Paper).boxed(),
            1 => (0.0f64..500.0)
                .prop_map(|rate| RatesSpec::Uniform { rate })
                .boxed(),
            2 => (0.0f64..500.0)
                .prop_map(|rate| RatesSpec::LeafOnly { rate })
                .boxed(),
            3 => ((0.0f64..10.0), (10.0f64..500.0))
                .prop_map(|(lo, hi)| RatesSpec::RandomUniform { lo, hi })
                .boxed(),
            4 => ((1.0f64..10000.0), (0.1f64..2.0))
                .prop_map(|(total, theta)| RatesSpec::ZipfNodes { total, theta })
                .boxed(),
            _ => proptest::collection::vec(0.0f64..100.0, 0..6)
                .prop_map(|rates| RatesSpec::Explicit { rates })
                .boxed(),
        })
        .boxed()
}

fn arb_doc_mix() -> BoxedStrategy<Option<DocMixSpec>> {
    (0usize..3)
        .prop_flat_map(|choice| match choice {
            0 => Just(None).boxed(),
            1 => Just(Some(DocMixSpec::Paper)).boxed(),
            _ => ((1usize..64), (0.1f64..2.0))
                .prop_map(|(docs, theta)| Some(DocMixSpec::SharedZipf { docs, theta }))
                .boxed(),
        })
        .boxed()
}

fn arb_alpha() -> BoxedStrategy<Option<f64>> {
    (0usize..2)
        .prop_flat_map(|choice| match choice {
            0 => Just(None).boxed(),
            _ => (0.01f64..0.99).prop_map(Some).boxed(),
        })
        .boxed()
}

fn arb_engine() -> BoxedStrategy<EngineSpec> {
    (0usize..8)
        .prop_flat_map(|choice| match choice {
            7 => (
                arb_alpha(),
                0usize..2,
                1usize..8,
                (0.001f64..0.1, 0.1f64..2.0, 0.1f64..2.0),
                (0.0f64..0.5, 0.0f64..0.2, 0.0f64..5.0),
            )
                .prop_map(
                    |(
                        alpha,
                        t,
                        workers,
                        (link_delay, gossip_period, diffusion_period),
                        (gossip_loss, hysteresis, noise_sigmas),
                    )| {
                        EngineSpec::PacketSimDist {
                            alpha,
                            tunneling: t == 1,
                            barrier_patience: 2,
                            link_delay,
                            gossip_period,
                            diffusion_period,
                            measure_window: 1.0,
                            gossip_loss,
                            hysteresis,
                            noise_sigmas,
                            workers,
                        }
                    },
                )
                .boxed(),
            6 => (
                arb_alpha(),
                0usize..2,
                1usize..16,
                (0.001f64..0.1, 0.1f64..2.0, 0.1f64..2.0),
                (0.0f64..0.5, 0.0f64..0.2, 0.0f64..5.0),
            )
                .prop_map(
                    |(
                        alpha,
                        t,
                        workers,
                        (link_delay, gossip_period, diffusion_period),
                        (gossip_loss, hysteresis, noise_sigmas),
                    )| {
                        EngineSpec::PacketSimPar {
                            alpha,
                            tunneling: t == 1,
                            barrier_patience: 2,
                            link_delay,
                            gossip_period,
                            diffusion_period,
                            measure_window: 1.0,
                            gossip_loss,
                            hysteresis,
                            noise_sigmas,
                            workers,
                        }
                    },
                )
                .boxed(),
            0 => (arb_alpha(), 0usize..10)
                .prop_map(|(alpha, staleness)| EngineSpec::RateWave { alpha, staleness })
                .boxed(),
            1 => (arb_alpha(), 0usize..2, 0usize..6)
                .prop_map(|(alpha, t, barrier_patience)| EngineSpec::DocSim {
                    alpha,
                    tunneling: t == 1,
                    barrier_patience,
                })
                .boxed(),
            2 => (
                arb_alpha(),
                0usize..2,
                (0.001f64..0.1, 0.1f64..2.0, 0.1f64..2.0),
                (0.0f64..0.5, 0.0f64..0.2, 0.0f64..5.0),
            )
                .prop_map(
                    |(
                        alpha,
                        t,
                        (link_delay, gossip_period, diffusion_period),
                        (gossip_loss, hysteresis, noise_sigmas),
                    )| {
                        EngineSpec::PacketSim {
                            alpha,
                            tunneling: t == 1,
                            barrier_patience: 2,
                            link_delay,
                            gossip_period,
                            diffusion_period,
                            measure_window: 1.0,
                            gossip_loss,
                            hysteresis,
                            noise_sigmas,
                        }
                    },
                )
                .boxed(),
            3 => (
                arb_alpha(),
                0usize..2,
                proptest::collection::vec(0usize..50, 1..4),
            )
                .prop_map(|(alpha, c, roots)| EngineSpec::ForestWave {
                    alpha,
                    coupled: c == 1,
                    roots,
                })
                .boxed(),
            4 => (arb_alpha(), 1usize..5000, 8usize..2048)
                .prop_map(|(alpha, rounds, channel_capacity)| EngineSpec::Cluster {
                    alpha,
                    rounds,
                    channel_capacity,
                })
                .boxed(),
            _ => (
                0usize..64,
                (0.0f64..5.0),
                (1usize..3000, 1usize..5000),
                (0.1f64..10.0),
            )
                .prop_map(
                    |(mask, lookup_msgs, (gle_iterations, webwave_rounds), gossip_per_second)| {
                        let all = BaselineScheme::all();
                        let mut schemes: Vec<BaselineScheme> = all
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << i) != 0)
                            .map(|(_, &s)| s)
                            .collect();
                        if schemes.is_empty() {
                            schemes = all;
                        }
                        EngineSpec::Baselines {
                            schemes,
                            replicas: mask % 8,
                            lookup_msgs,
                            gle_iterations,
                            webwave_rounds,
                            gossip_per_second,
                        }
                    },
                )
                .boxed(),
        })
        .boxed()
}

fn arb_termination() -> BoxedStrategy<Termination> {
    (0usize..3)
        .prop_flat_map(|choice| match choice {
            0 => (1usize..50000)
                .prop_map(|max| Termination::Rounds { max })
                .boxed(),
            1 => ((0.0f64..10.0), 1usize..50000)
                .prop_map(|(threshold, max_rounds)| Termination::Converged {
                    threshold,
                    max_rounds,
                })
                .boxed(),
            _ => ((0.01f64..10.0), 1usize..50000)
                .prop_map(|(seconds, max_rounds)| Termination::WallClock {
                    seconds,
                    max_rounds,
                })
                .boxed(),
        })
        .boxed()
}

fn arb_sweep() -> BoxedStrategy<Option<Sweep>> {
    (0usize..8)
        .prop_flat_map(|choice| {
            if choice == 0 {
                Just(None).boxed()
            } else {
                let param = [
                    SweepParam::Staleness,
                    SweepParam::Alpha,
                    SweepParam::Tunneling,
                    SweepParam::GossipLoss,
                    SweepParam::Workers,
                    SweepParam::DocTheta,
                    SweepParam::Seed,
                ][choice - 1];
                proptest::collection::vec(0.0f64..10.0, 1..5)
                    .prop_map(move |values| Some(Sweep { param, values }))
                    .boxed()
            }
        })
        .boxed()
}

fn arb_event_kind() -> BoxedStrategy<EventKindSpec> {
    (0usize..7)
        .prop_flat_map(|choice| match choice {
            0 => ((0usize..40), (0.0f64..200.0))
                .prop_map(|(parent, rate)| EventKindSpec::NodeJoin { parent, rate })
                .boxed(),
            1 => (0usize..40)
                .prop_map(|node| EventKindSpec::NodeLeave { node })
                .boxed(),
            2 => (0usize..40)
                .prop_map(|node| EventKindSpec::LinkFail { node })
                .boxed(),
            3 => (0usize..40)
                .prop_map(|node| EventKindSpec::LinkHeal { node })
                .boxed(),
            4 => ((0u64..1000), (0usize..40), (0.0f64..300.0))
                .prop_map(|(doc, origin, rate)| EventKindSpec::DocPublish { doc, origin, rate })
                .boxed(),
            5 => (0u64..1000)
                .prop_map(|doc| EventKindSpec::DocUpdate { doc })
                .boxed(),
            _ => (
                (0usize..3),
                (0.0f64..100.0),
                (1usize..32, 0.1f64..2.0),
                proptest::option::of(0u64..(1 << 53)),
            )
                .prop_map(|(mode, rate, (docs, theta), seed)| {
                    // At least one of rates/doc_mix must be present — the
                    // parser rejects empty shifts.
                    let rates = (mode != 1).then_some(RatesSpec::Uniform { rate });
                    let doc_mix = (mode != 0).then_some(DocMixSpec::SharedZipf { docs, theta });
                    EventKindSpec::WorkloadShift {
                        rates,
                        doc_mix,
                        seed,
                    }
                })
                .boxed(),
        })
        .boxed()
}

fn arb_events() -> BoxedStrategy<Option<EventsSpec>> {
    proptest::option::of((
        proptest::collection::vec((0usize..30, arb_event_kind()), 0..6),
        0.0f64..10.0,
        proptest::prelude::any::<bool>(),
    ))
    .prop_map(|maybe| {
        maybe.map(|(raw, recovery_threshold, batched_barriers)| {
            // The parser requires non-decreasing rounds: prefix-sum the
            // generated deltas.
            let mut round = 0;
            let schedule = raw
                .into_iter()
                .map(|(delta, kind)| {
                    round += delta;
                    EventSpec { round, kind }
                })
                .collect();
            EventsSpec {
                schedule,
                recovery_threshold,
                batched_barriers,
            }
        })
    })
    .boxed()
}

fn arb_rebalance() -> BoxedStrategy<Option<RebalanceSpec>> {
    proptest::option::of(
        (1.0f64..4.0, 1u64..20).prop_map(|(trigger_imbalance, min_epoch_gap)| RebalanceSpec {
            trigger_imbalance,
            min_epoch_gap,
        }),
    )
    .boxed()
}

fn arb_spec() -> BoxedStrategy<ScenarioSpec> {
    (
        arb_topology(),
        (arb_rates(), arb_doc_mix()),
        arb_engine(),
        arb_termination(),
        // JSON numbers are f64; the parser rejects seeds above 2^53.
        0u64..(1u64 << 53),
        arb_sweep(),
        (arb_events(), arb_rebalance()),
    )
        .prop_map(
            |(
                topology,
                (rates, doc_mix),
                engine,
                termination,
                seed,
                sweep,
                (events, rebalance),
            )| {
                // The parser only accepts a rebalance block on the sharded
                // engines; gate the generated one the same way so every
                // rendered spec parses back.
                let rebalance = rebalance.filter(|_| {
                    matches!(
                        engine,
                        EngineSpec::PacketSimPar { .. } | EngineSpec::PacketSimDist { .. }
                    )
                });
                ScenarioSpec {
                    name: "prop-spec".to_string(),
                    topology,
                    workload: WorkloadSpec { rates, doc_mix },
                    engine,
                    termination,
                    seed,
                    sweep,
                    events,
                    telemetry: arb_telemetry_from_seed(seed),
                    rebalance,
                }
            },
        )
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize → parse must reproduce the spec exactly (field-for-field,
    /// bit-for-bit on floats).
    #[test]
    fn json_round_trip_is_identity(spec in arb_spec()) {
        let json = spec.to_json();
        let parsed = ScenarioSpec::from_json(&json)
            .unwrap_or_else(|e| panic!("own output must parse: {e}\n{json}"));
        prop_assert_eq!(parsed, spec);
    }

    /// Rendering is deterministic: same spec, same bytes.
    #[test]
    fn rendering_is_deterministic(spec in arb_spec()) {
        prop_assert_eq!(spec.to_json(), spec.to_json());
    }
}

const VALID: &str = r#"{
  "name": "x",
  "topology": {"kind": "paper", "figure": "fig6"},
  "workload": {"rates": {"kind": "paper"}},
  "engine": {"kind": "rate_wave"},
  "termination": {"kind": "rounds", "max": 10}
}"#;

fn expect_error(mutation: impl Fn(&str) -> String, path_fragment: &str, msg_fragment: &str) {
    let doc = mutation(VALID);
    let err = ScenarioSpec::from_json(&doc).expect_err("mutated doc must be rejected");
    let rendered = err.to_string();
    assert!(
        rendered.contains(path_fragment),
        "error {rendered:?} should name path {path_fragment:?}"
    );
    assert!(
        rendered.contains(msg_fragment),
        "error {rendered:?} should mention {msg_fragment:?}"
    );
}

#[test]
fn valid_document_parses() {
    let spec = ScenarioSpec::from_json(VALID).unwrap();
    assert_eq!(spec.name, "x");
    assert_eq!(spec.seed, ww_scenario::DEFAULT_SEED);
    assert!(spec.sweep.is_none());
}

#[test]
fn unknown_top_level_field_is_rejected_with_path() {
    expect_error(
        |doc| doc.replacen("\"name\"", "\"extra\": 1, \"name\"", 1),
        "extra",
        "unknown field",
    );
}

#[test]
fn unknown_topology_field_is_rejected_with_path() {
    expect_error(
        |doc| doc.replacen("\"figure\"", "\"figre\"", 1),
        "topology.figre",
        "unknown field",
    );
}

#[test]
fn unknown_engine_kind_is_rejected_with_path() {
    expect_error(
        |doc| doc.replacen("rate_wave", "warp_drive", 1),
        "engine.kind",
        "unknown engine",
    );
}

#[test]
fn missing_required_field_is_rejected_with_path() {
    expect_error(
        |doc| doc.replacen(", \"max\": 10", "", 1),
        "termination.max",
        "missing required field",
    );
}

#[test]
fn wrong_type_is_rejected_with_path() {
    expect_error(
        |doc| doc.replacen("\"max\": 10", "\"max\": \"ten\"", 1),
        "termination.max",
        "expected a number",
    );
}

#[test]
fn out_of_range_alpha_is_rejected_with_path() {
    expect_error(
        |doc| {
            doc.replacen(
                "\"kind\": \"rate_wave\"",
                "\"kind\": \"rate_wave\", \"alpha\": 1.5",
                1,
            )
        },
        "engine.alpha",
        "alpha must lie in (0, 1)",
    );
}

#[test]
fn bad_sweep_param_is_rejected_with_path() {
    expect_error(
        |doc| {
            doc.replacen(
                "\"termination\"",
                "\"sweep\": {\"param\": \"warp\", \"values\": [1]}, \"termination\"",
                1,
            )
        },
        "sweep.param",
        "unknown sweep parameter",
    );
}

#[test]
fn syntax_errors_carry_positions() {
    let err = ScenarioSpec::from_json("{\"name\": }").expect_err("syntax error");
    assert!(err.to_string().contains("line 1"), "{err}");
}

#[test]
fn explicit_rates_length_checked_at_resolution() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "bad-rates",
          "topology": {"kind": "paper", "figure": "fig6"},
          "workload": {"rates": {"kind": "explicit", "rates": [1, 2, 3]}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 1}
        }"#,
    )
    .unwrap();
    let err = ww_scenario::Runner::new()
        .run(&spec)
        .expect_err("wrong length");
    assert!(err.to_string().contains("workload.rates.rates"), "{err}");
    assert!(err.to_string().contains("one per node"), "{err}");
}

#[test]
fn doc_engine_without_mix_is_rejected_at_resolution() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "no-mix",
          "topology": {"kind": "paper", "figure": "fig6"},
          "workload": {"rates": {"kind": "paper"}},
          "engine": {"kind": "doc_sim"},
          "termination": {"kind": "rounds", "max": 1}
        }"#,
    )
    .unwrap();
    let err = ww_scenario::Runner::new()
        .run(&spec)
        .expect_err("missing mix");
    assert!(err.to_string().contains("workload.doc_mix"), "{err}");
}

#[test]
fn out_of_range_sweep_values_are_rejected_not_panicked() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "bad-alpha-sweep",
          "topology": {"kind": "paper", "figure": "fig6"},
          "workload": {"rates": {"kind": "paper"}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 1},
          "sweep": {"param": "alpha", "values": [0.5, 1.5]}
        }"#,
    )
    .unwrap();
    let err = ww_scenario::Runner::new()
        .run(&spec)
        .expect_err("alpha 1.5 must be a SpecError, not an engine panic");
    assert!(err.to_string().contains("sweep.values"), "{err}");
    assert!(
        err.to_string().contains("alpha must lie in (0, 1)"),
        "{err}"
    );

    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "bad-staleness-sweep",
          "topology": {"kind": "paper", "figure": "fig6"},
          "workload": {"rates": {"kind": "paper"}},
          "engine": {"kind": "rate_wave"},
          "termination": {"kind": "rounds", "max": 1},
          "sweep": {"param": "staleness", "values": [-1]}
        }"#,
    )
    .unwrap();
    let err = ww_scenario::Runner::new()
        .run(&spec)
        .expect_err("negative staleness must be rejected");
    assert!(err.to_string().contains("sweep.values"), "{err}");
}

#[test]
fn incompatible_sweep_is_rejected_at_resolution() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "bad-sweep",
          "topology": {"kind": "paper", "figure": "fig6"},
          "workload": {"rates": {"kind": "paper"}},
          "engine": {"kind": "cluster"},
          "termination": {"kind": "rounds", "max": 1},
          "sweep": {"param": "staleness", "values": [0, 1]}
        }"#,
    )
    .unwrap();
    let err = ww_scenario::Runner::new()
        .run(&spec)
        .expect_err("bad sweep");
    assert!(err.to_string().contains("sweep.param"), "{err}");
}

#[test]
fn packet_sim_par_parses_with_defaults_and_round_trips() {
    let spec = ScenarioSpec::from_json(
        r#"{
          "name": "par",
          "topology": {"kind": "k_ary", "arity": 2, "depth": 3},
          "workload": {
            "rates": {"kind": "leaf_only", "rate": 10.0},
            "doc_mix": {"kind": "shared_zipf", "docs": 4, "theta": 1.0}
          },
          "engine": {"kind": "packet_sim_par", "workers": 3},
          "termination": {"kind": "rounds", "max": 2}
        }"#,
    )
    .unwrap();
    match &spec.engine {
        EngineSpec::PacketSimPar {
            workers,
            link_delay,
            ..
        } => {
            assert_eq!(*workers, 3);
            assert_eq!(*link_delay, 0.005);
        }
        other => panic!("parsed {other:?}"),
    }
    let reparsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(reparsed, spec);
}

#[test]
fn packet_sim_par_rejects_zero_workers_and_zero_link_delay() {
    let base = |engine: &str| {
        format!(
            r#"{{
              "name": "par",
              "topology": {{"kind": "k_ary", "arity": 2, "depth": 2}},
              "workload": {{"rates": {{"kind": "uniform", "rate": 1.0}}}},
              "engine": {engine},
              "termination": {{"kind": "rounds", "max": 1}}
            }}"#
        )
    };
    let err = ScenarioSpec::from_json(&base(r#"{"kind": "packet_sim_par", "workers": 0}"#))
        .expect_err("zero workers");
    assert!(err.to_string().contains("engine.workers"), "{err}");
    let err = ScenarioSpec::from_json(&base(r#"{"kind": "packet_sim_par", "link_delay": 0}"#))
        .expect_err("zero link delay");
    assert!(err.to_string().contains("engine.link_delay"), "{err}");
    assert!(err.to_string().contains("lookahead"), "{err}");
}

#[test]
fn unknown_engine_error_lists_packet_sim_par() {
    let err = ScenarioSpec::from_json(&VALID.replacen("rate_wave", "warp_drive", 1))
        .expect_err("unknown engine");
    assert!(err.to_string().contains("packet_sim_par"), "{err}");
}

// ---------------------------------------------------------------------
// Event grammar
// ---------------------------------------------------------------------

fn with_events(events_json: &str) -> String {
    VALID.replacen(
        "\"termination\"",
        &format!("\"events\": {events_json}, \"termination\""),
        1,
    )
}

#[test]
fn events_block_parses_and_round_trips() {
    let doc = with_events(
        r#"{"recovery_threshold": 0.5, "schedule": [
            {"round": 2, "kind": "node_join", "parent": 0, "rate": 10.0},
            {"round": 5, "kind": "link_fail", "node": 1},
            {"round": 5, "kind": "doc_update", "doc": 7},
            {"round": 9, "kind": "workload_shift",
             "rates": {"kind": "uniform", "rate": 3.0}}
        ]}"#,
    );
    let spec = ScenarioSpec::from_json(&doc).unwrap();
    let events = spec.events.as_ref().expect("events parsed");
    assert_eq!(events.schedule.len(), 4);
    assert_eq!(events.recovery_threshold, 0.5);
    assert_eq!(events.schedule[0].kind.kind(), "node_join");
    let reparsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
    assert_eq!(reparsed, spec);
}

#[test]
fn unknown_event_kind_is_rejected_with_path() {
    let doc = with_events(r#"{"schedule": [{"round": 1, "kind": "meteor_strike"}]}"#);
    let err = ScenarioSpec::from_json(&doc).expect_err("unknown event kind");
    let rendered = err.to_string();
    assert!(rendered.contains("events.schedule[0].kind"), "{rendered}");
    assert!(rendered.contains("unknown event"), "{rendered}");
}

#[test]
fn unsorted_schedule_is_rejected_with_path() {
    let doc = with_events(
        r#"{"schedule": [
            {"round": 9, "kind": "link_fail", "node": 1},
            {"round": 3, "kind": "link_heal", "node": 1}
        ]}"#,
    );
    let err = ScenarioSpec::from_json(&doc).expect_err("unsorted schedule");
    let rendered = err.to_string();
    assert!(rendered.contains("events.schedule[1].round"), "{rendered}");
    assert!(rendered.contains("sorted"), "{rendered}");
}

#[test]
fn empty_workload_shift_is_rejected_with_path() {
    let doc = with_events(r#"{"schedule": [{"round": 1, "kind": "workload_shift"}]}"#);
    let err = ScenarioSpec::from_json(&doc).expect_err("empty shift");
    let rendered = err.to_string();
    assert!(rendered.contains("events.schedule[0]"), "{rendered}");
    assert!(rendered.contains("rates, doc_mix, or both"), "{rendered}");
}

#[test]
fn unknown_event_field_is_rejected_with_path() {
    let doc = with_events(
        r#"{"schedule": [{"round": 1, "kind": "node_leave", "node": 1, "notify": true}]}"#,
    );
    let err = ScenarioSpec::from_json(&doc).expect_err("unknown field");
    let rendered = err.to_string();
    assert!(rendered.contains("events.schedule[0].notify"), "{rendered}");
    assert!(rendered.contains("unknown field"), "{rendered}");
}

#[test]
fn negative_event_rate_is_rejected_with_path() {
    let doc = with_events(
        r#"{"schedule": [{"round": 1, "kind": "node_join", "parent": 0, "rate": -3.0}]}"#,
    );
    let err = ScenarioSpec::from_json(&doc).expect_err("negative rate");
    let rendered = err.to_string();
    assert!(rendered.contains("events.schedule[0].rate"), "{rendered}");
}
