//! Golden equivalence: spec-driven runs must be **bit-identical** to the
//! direct-constructor runs they replace.
//!
//! The shipped `scenarios/fig2b.json` and `scenarios/staleness_sweep.json`
//! files are loaded from disk and driven through the `Runner`; their
//! convergence traces are compared bit-for-bit against `RateWave` built
//! and stepped by hand with the same configuration. Likewise the
//! `barrier_tunneling` spec against `DocSim`.

use std::path::PathBuf;
use ww_core::docsim::{DocSim, DocSimConfig};
use ww_core::wave::{RateWave, WaveConfig};
use ww_scenario::{Runner, ScenarioSpec};
use ww_topology::paper;

fn load_spec(name: &str) -> ScenarioSpec {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("parse {name}: {e}"))
}

fn bits(trace: &[f64]) -> Vec<u64> {
    trace.iter().map(|d| d.to_bits()).collect()
}

#[test]
fn fig2b_spec_trace_is_bit_identical_to_direct_run() {
    let spec = load_spec("fig2b.json");
    let report = Runner::new().run(&spec).expect("fig2b spec runs");
    assert_eq!(report.rows.len(), 1);
    let spec_trace = report.rows[0].outcome.trace.clone().expect("trace");

    let s = paper::fig2b();
    let mut direct = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
    direct.run_until(1e-6, 5000);

    assert_eq!(
        bits(&spec_trace),
        bits(direct.trace().distances()),
        "spec-driven fig2b trace must equal the direct-constructor trace bit for bit"
    );
    assert!(report.rows[0].converged);
    assert_eq!(
        report.rows[0].outcome.load.as_ref().unwrap().as_slice(),
        direct.load().as_slice()
    );
}

#[test]
fn staleness_sweep_traces_are_bit_identical_to_direct_runs() {
    let spec = load_spec("staleness_sweep.json");
    let report = Runner::new().run(&spec).expect("staleness sweep runs");
    let staleness_values = [0usize, 1, 2, 4, 8];
    assert_eq!(report.rows.len(), staleness_values.len());

    let s = paper::fig6();
    for (row, &staleness) in report.rows.iter().zip(&staleness_values) {
        let mut direct = RateWave::new(
            &s.tree,
            &s.spontaneous,
            WaveConfig {
                alpha: None,
                staleness,
            },
        );
        direct.run_until(0.5, 20_000);
        let spec_trace = row.outcome.trace.clone().expect("trace");
        assert_eq!(
            bits(&spec_trace),
            bits(direct.trace().distances()),
            "staleness={staleness}: spec-driven trace diverges from direct run"
        );
        assert_eq!(row.label, format!("staleness={staleness}"));
    }
}

#[test]
fn barrier_spec_matches_direct_docsim_runs() {
    let spec = load_spec("barrier_tunneling.json");
    let report = Runner::new().run(&spec).expect("barrier spec runs");
    assert_eq!(report.rows.len(), 2, "tunneling off/on");

    let b = paper::fig7();
    for (row, tunneling) in report.rows.iter().zip([false, true]) {
        let mut direct = DocSim::from_barrier_scenario(
            &b,
            DocSimConfig {
                alpha: None,
                tunneling,
                barrier_patience: 2,
            },
        );
        direct.run(1500);
        let spec_trace = row.outcome.trace.clone().expect("trace");
        assert_eq!(
            bits(&spec_trace),
            bits(direct.trace().distances()),
            "tunneling={tunneling}: spec-driven trace diverges from direct run"
        );
        assert_eq!(
            row.outcome.metric("tunnel_fetches").unwrap(),
            direct.stats().tunnel_fetches as f64
        );
    }
}
