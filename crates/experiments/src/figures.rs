//! One runner per paper figure/table (the experiment index of DESIGN.md).
//!
//! Every function returns a structured result plus a rendered text report
//! so the `webwave-exp` binary, the integration tests and `EXPERIMENTS.md`
//! all read from the same code path.

use crate::table::{f3, f6, Table};
use ww_core::fold::webfold;
use ww_diffusion::{
    hypercube_alpha, k_ary_n_cube_alpha, ring_alpha, DiffusionMatrix, SyncDiffusion,
};
use ww_model::{NodeId, RateVector};
use ww_scenario::{
    EngineSpec, PaperFigure, RatesSpec, Runner, ScenarioSpec, Sweep, SweepParam, TelemetrySpec,
    Termination, TopologySpec, WorkloadSpec, DEFAULT_SEED,
};
use ww_stats::{fit_exponential, ExponentialFit};
use ww_topology::{self as topology, paper, Graph};

/// A spec skeleton every engine-driven figure shares: named scenario,
/// rate workload, no sweep, default seed. Figure runners fill in the
/// topology, engine, and termination — and then *every* run goes through
/// the unified [`Runner`], never a hand-rolled loop.
fn figure_spec(
    name: &str,
    topology: TopologySpec,
    engine: EngineSpec,
    termination: Termination,
) -> ScenarioSpec {
    ScenarioSpec {
        name: name.to_string(),
        topology,
        workload: WorkloadSpec {
            rates: RatesSpec::Paper,
            doc_mix: None,
        },
        engine,
        termination,
        seed: DEFAULT_SEED,
        sweep: None,
        events: None,
        telemetry: TelemetrySpec::default(),
        rebalance: None,
    }
}

/// Result of the Figure 2 experiment: TLB vs GLE on the two rate vectors.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// TLB assignment for Figure 2(a).
    pub tlb_a: RateVector,
    /// Whether (a)'s TLB achieves GLE (the paper says yes).
    pub a_is_gle: bool,
    /// TLB assignment for Figure 2(b).
    pub tlb_b: RateVector,
    /// Whether (b)'s TLB achieves GLE (the paper says no).
    pub b_is_gle: bool,
    /// Rendered report.
    pub report: String,
}

/// Reproduces Figure 2: one tree, two spontaneous-rate vectors, one TLB
/// assignment that is GLE and one that is not.
pub fn fig2() -> Fig2Result {
    let a = paper::fig2a();
    let b = paper::fig2b();
    let fa = webfold(&a.tree, &a.spontaneous);
    let fb = webfold(&b.tree, &b.spontaneous);
    let mut t = Table::new(vec!["scenario", "E", "TLB load", "folds", "GLE?"]);
    for (s, f) in [(&a, &fa), (&b, &fb)] {
        t.row(vec![
            s.name.clone(),
            format!("{}", s.spontaneous),
            format!("{}", f.load()),
            f.fold_count().to_string(),
            if f.is_gle() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    Fig2Result {
        a_is_gle: fa.is_gle(),
        b_is_gle: fb.is_gle(),
        tlb_a: fa.into_load(),
        tlb_b: fb.into_load(),
        report: format!("Figure 2 — TLB vs GLE\n{}", t.render()),
    }
}

/// Result of the Figure 4 experiment: the complete folding sequence.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// `(child_root, parent_root, merged per-node load)` per fold event.
    pub fold_sequence: Vec<(usize, usize, f64)>,
    /// Final TLB assignment.
    pub tlb: RateVector,
    /// Rendered report.
    pub report: String,
}

/// Reproduces Figure 4: WebFold's fold-by-fold execution trace.
pub fn fig4() -> Fig4Result {
    let s = paper::fig4();
    let f = webfold(&s.tree, &s.spontaneous);
    let mut t = Table::new(vec!["step", "fold", "into", "merged load/node"]);
    let mut seq = Vec::new();
    for (i, e) in f.trace().iter().enumerate() {
        seq.push((e.child_root.index(), e.parent_root.index(), e.merged_load));
        t.row(vec![
            (i + 1).to_string(),
            format!("n{}", e.child_root.index()),
            format!("n{}", e.parent_root.index()),
            f3(e.merged_load),
        ]);
    }
    let report = format!(
        "Figure 4 — WebFold folding sequence (E = {})\n{}\nfinal TLB: {}  (GLE share would be {:.3})\n",
        s.spontaneous,
        t.render(),
        f.load(),
        s.total_demand() / s.tree.len() as f64,
    );
    Fig4Result {
        fold_sequence: seq,
        tlb: f.into_load(),
        report,
    }
}

/// Result of the Figure 6(a) experiment.
#[derive(Debug, Clone)]
pub struct Fig6aResult {
    /// The TLB assignment on the hand-crafted tree.
    pub tlb: RateVector,
    /// Fold membership, `(fold root, members)`.
    pub folds: Vec<(usize, Vec<usize>)>,
    /// Rendered report.
    pub report: String,
}

/// Reproduces Figure 6(a): the hand-crafted tree, its spontaneous rates
/// and the fold structure WebFold computes.
pub fn fig6a() -> Fig6aResult {
    let s = paper::fig6();
    let f = webfold(&s.tree, &s.spontaneous);
    let mut t = Table::new(vec!["fold root", "members", "load/node"]);
    let mut folds = Vec::new();
    for (root, members) in f.folds() {
        let ids: Vec<usize> = members.iter().map(|m| m.index()).collect();
        t.row(vec![
            format!("n{}", root.index()),
            format!("{ids:?}"),
            f3(f.load()[root]),
        ]);
        folds.push((root.index(), ids));
    }
    Fig6aResult {
        tlb: f.load().clone(),
        folds,
        report: format!(
            "Figure 6(a) — hand-crafted tree, E = {}\n{}",
            s.spontaneous,
            t.render()
        ),
    }
}

/// Result of a convergence experiment (Figure 6(b)).
#[derive(Debug, Clone)]
pub struct ConvergenceResult {
    /// Distance to TLB per iteration.
    pub distances: Vec<f64>,
    /// The fitted `a * gamma^t` bound.
    pub fit: Option<ExponentialFit>,
    /// Iterations until distance fell below 1% of its initial value.
    pub iterations_to_1pct: Option<usize>,
    /// Rendered report.
    pub report: String,
}

/// Reproduces Figure 6(b): WebWave's Euclidean distance to TLB per
/// iteration on the Figure 6(a) tree, with the exponential fit.
pub fn fig6b(rounds: usize) -> ConvergenceResult {
    let spec = figure_spec(
        "fig6b",
        TopologySpec::Paper {
            figure: PaperFigure::Fig6,
        },
        EngineSpec::RateWave {
            alpha: None,
            staleness: 0,
        },
        Termination::Rounds { max: rounds },
    );
    let report = Runner::new().run(&spec).expect("fig6b spec resolves");
    let distances = report.rows[0]
        .outcome
        .trace
        .clone()
        .expect("trace recorded");
    let initial = distances[0];
    let fit = fit_exponential(&distances, initial * 1e-12).ok();
    let to_1pct = distances.iter().position(|&d| d <= initial * 0.01);
    let mut t = Table::new(vec!["iteration", "distance to TLB"]);
    for (i, d) in distances.iter().enumerate() {
        if i <= 10 || (i % (rounds / 20).max(1) == 0) {
            t.row(vec![i.to_string(), format!("{d:.6e}")]);
        }
    }
    let fit_line = match &fit {
        Some(f) => format!(
            "fit a*gamma^t: gamma = {} (stderr {}), a = {:.3}",
            f6(f.gamma),
            f6(f.gamma_stderr),
            f.a
        ),
        None => "fit failed".into(),
    };
    ConvergenceResult {
        iterations_to_1pct: to_1pct,
        report: format!(
            "Figure 6(b) — WebWave convergence on the fig6 tree\n{}\n{}\n",
            t.render(),
            fit_line
        ),
        distances,
        fit,
    }
}

/// One row of the gamma regression study (Section 5.1).
#[derive(Debug, Clone)]
pub struct GammaRow {
    /// Tree depth used.
    pub depth: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Fitted convergence rate (mean over trials).
    pub gamma: f64,
    /// Mean per-fit standard error.
    pub stderr: f64,
    /// Smallest gamma across trials.
    pub gamma_min: f64,
    /// Largest gamma across trials.
    pub gamma_max: f64,
}

/// Result of the gamma study.
#[derive(Debug, Clone)]
pub struct GammaStudy {
    /// One row per depth.
    pub rows: Vec<GammaRow>,
    /// Rendered report.
    pub report: String,
}

/// Reproduces the Section 5.1 regression: for random trees of each depth,
/// run WebWave, fit `a * gamma^t` to the distance trace and report
/// `gamma` with its standard error (the paper's depth-9 example:
/// `gamma = 0.830734`, stderr `0.005786`). Averages over five random
/// trees per depth to smooth instance noise.
pub fn gamma_study(depths: &[usize], nodes: usize, rounds: usize, seed: u64) -> GammaStudy {
    const TRIALS: usize = 5;
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "depth",
        "nodes",
        "gamma (mean)",
        "stderr",
        "gamma min..max",
    ]);
    for &depth in depths {
        let mut gammas = Vec::new();
        let mut stderrs = Vec::new();
        for trial in 0..TRIALS {
            // The derived seed drives tree and rates from one generator
            // inside the resolver, reproducing the original construction
            // stream exactly.
            let mut spec = figure_spec(
                "gamma-trial",
                TopologySpec::RandomDepth { nodes, depth },
                EngineSpec::RateWave {
                    alpha: None,
                    staleness: 0,
                },
                Termination::Rounds { max: rounds },
            );
            spec.workload.rates = RatesSpec::RandomUniform { lo: 0.0, hi: 10.0 };
            spec.seed = seed ^ ((depth as u64) << 8) ^ ((trial as u64) << 20);
            let report = Runner::new().run(&spec).expect("gamma spec resolves");
            let distances = report.rows[0]
                .outcome
                .trace
                .clone()
                .expect("trace recorded");
            let initial = distances.first().copied().unwrap_or(1.0);
            let fit = fit_exponential(&distances, initial * 1e-10).expect("convergence trace fits");
            gammas.push(fit.gamma);
            stderrs.push(fit.gamma_stderr);
        }
        let mean = gammas.iter().sum::<f64>() / TRIALS as f64;
        let stderr = stderrs.iter().sum::<f64>() / TRIALS as f64;
        let min = gammas.iter().copied().fold(f64::INFINITY, f64::min);
        let max = gammas.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        t.row(vec![
            depth.to_string(),
            nodes.to_string(),
            f6(mean),
            f6(stderr),
            format!("{}..{}", f6(min), f6(max)),
        ]);
        rows.push(GammaRow {
            depth,
            nodes,
            gamma: mean,
            stderr,
            gamma_min: min,
            gamma_max: max,
        });
    }
    GammaStudy {
        report: format!(
            "Section 5.1 — gamma regression on random trees, 5 trees per depth (paper: depth 9 -> gamma = 0.830734 +/- 0.005786)\n{}",
            t.render()
        ),
        rows,
    }
}

/// Result of the Figure 7 barrier experiment.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Final loads without tunneling (the stall).
    pub stalled: RateVector,
    /// Final loads with tunneling.
    pub tunneled: RateVector,
    /// Distance to TLB without tunneling.
    pub stalled_distance: f64,
    /// Distance to TLB with tunneling.
    pub tunneled_distance: f64,
    /// Tunnel fetches performed in the tunneling run.
    pub tunnel_fetches: u64,
    /// Rendered report.
    pub report: String,
}

/// Reproduces Figure 7: the potential barrier stalls WebWave without
/// tunneling and is cured by it (every node ends at 90 req/s).
pub fn fig7(rounds: usize) -> Fig7Result {
    let b = paper::fig7();
    let mut spec = figure_spec(
        "fig7",
        TopologySpec::Paper {
            figure: PaperFigure::Fig7,
        },
        EngineSpec::DocSim {
            alpha: None,
            tunneling: true,
            barrier_patience: 2,
        },
        Termination::Rounds { max: rounds },
    );
    spec.workload.doc_mix = Some(ww_scenario::DocMixSpec::Paper);
    spec.sweep = Some(Sweep {
        param: SweepParam::Tunneling,
        values: vec![0.0, 1.0],
    });
    let report = Runner::new().run(&spec).expect("fig7 spec resolves");
    let [stalled_row, tunneled_row] = &report.rows[..] else {
        panic!("tunneling sweep yields two rows");
    };
    let stalled = stalled_row.outcome.load.clone().expect("loads");
    let tunneled = tunneled_row.outcome.load.clone().expect("loads");
    let stalled_distance = stalled_row.outcome.final_distance().expect("distance");
    let tunneled_distance = tunneled_row.outcome.final_distance().expect("distance");
    let tunnel_fetches = tunneled_row
        .outcome
        .metric("tunnel_fetches")
        .expect("tunnel_fetches metric") as u64;
    let mut t = Table::new(vec!["node", "TLB", "no tunneling", "with tunneling"]);
    for i in 0..4 {
        let u = NodeId::new(i);
        t.row(vec![
            format!("n{i}"),
            f3(b.tlb[u]),
            f3(stalled[u]),
            f3(tunneled[u]),
        ]);
    }
    Fig7Result {
        report: format!(
            "Figure 7 — potential barrier and tunneling ({} rounds)\n{}\nno-tunneling distance to TLB: {:.3}; with tunneling: {:.3}; tunnel fetches: {}\n",
            rounds,
            t.render(),
            stalled_distance,
            tunneled_distance,
            tunnel_fetches,
        ),
        stalled,
        tunneled,
        stalled_distance,
        tunneled_distance,
        tunnel_fetches,
    }
}

/// One row of the GLE diffusion study (Section 2 claims).
#[derive(Debug, Clone)]
pub struct GleRow {
    /// Topology label.
    pub topology: String,
    /// Predicted contraction factor from the spectrum.
    pub predicted_gamma: f64,
    /// Gamma fitted from the measured distance trace.
    pub measured_gamma: f64,
    /// Iterations to shrink the distance by 1e6x.
    pub iterations: usize,
}

/// Result of the GLE study.
#[derive(Debug, Clone)]
pub struct GleStudy {
    /// One row per topology.
    pub rows: Vec<GleRow>,
    /// Rendered report.
    pub report: String,
}

/// Verifies Section 2's background claims: synchronous diffusion with the
/// Xu-Lau optimal alpha converges to uniform load at exactly the
/// spectrum-predicted rate on the classic topologies.
pub fn gle_study() -> GleStudy {
    let cases: Vec<(String, Graph, f64)> = vec![
        ("ring-16".into(), topology::ring(16), ring_alpha(16).gamma),
        (
            "hypercube-4".into(),
            topology::hypercube(4),
            hypercube_alpha(4).gamma,
        ),
        (
            "4-ary-2-cube".into(),
            topology::k_ary_n_cube(4, 2),
            k_ary_n_cube_alpha(4, 2).gamma,
        ),
    ];
    let alphas = [
        ring_alpha(16).alpha,
        hypercube_alpha(4).alpha,
        k_ary_n_cube_alpha(4, 2).alpha,
    ];
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "topology",
        "predicted gamma",
        "measured gamma",
        "iters to 1e-6x",
    ]);
    for ((name, graph, predicted), alpha) in cases.into_iter().zip(alphas) {
        let n = graph.len();
        let matrix = DiffusionMatrix::uniform_alpha(&graph, alpha).expect("valid alpha");
        let mut x = RateVector::zeros(n);
        x[NodeId::new(0)] = n as f64;
        let initial = x.distance_to_uniform();
        let mut run = SyncDiffusion::new(matrix, x);
        let iters = run.run_until(initial * 1e-6, 100_000);
        // The spectrum predicts the *asymptotic* rate; early iterations
        // decay faster while the fast eigenmodes die off, so measure the
        // geometric-mean contraction over the trace's tail.
        let ds = run.distances();
        let tail = &ds[ds.len().saturating_sub(12)..];
        let ratios: Vec<f64> = tail
            .windows(2)
            .filter(|w| w[0] > 0.0 && w[1] > 0.0)
            .map(|w| w[1] / w[0])
            .collect();
        let measured = if ratios.is_empty() {
            0.0
        } else {
            (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
        };
        t.row(vec![
            name.clone(),
            f6(predicted),
            f6(measured),
            iters.to_string(),
        ]);
        rows.push(GleRow {
            topology: name,
            predicted_gamma: predicted,
            measured_gamma: measured,
            iterations: iters,
        });
    }
    GleStudy {
        report: format!(
            "Section 2 — GLE diffusion: predicted vs measured contraction\n{}",
            t.render()
        ),
        rows,
    }
}

/// Result of the baseline comparison (experiment A1).
#[derive(Debug, Clone)]
pub struct BaselineStudy {
    /// One report per scheme.
    pub rows: Vec<ww_baselines::SchemeReport>,
    /// Rendered report.
    pub report: String,
}

/// Runs every baseline scheme against the Figure 6 workload and a larger
/// Zipf-skewed random tree.
pub fn baseline_study(seed: u64) -> BaselineStudy {
    let mut all_rows = Vec::new();
    let mut out = String::new();
    let baselines_engine = EngineSpec::Baselines {
        schemes: ww_scenario::BaselineScheme::all(),
        replicas: 0,
        lookup_msgs: 2.0,
        gle_iterations: 2000,
        webwave_rounds: 4000,
        gossip_per_second: 2.0,
    };
    let fig6_spec = figure_spec(
        "baselines-fig6",
        TopologySpec::Paper {
            figure: PaperFigure::Fig6,
        },
        baselines_engine.clone(),
        Termination::Rounds { max: 1 },
    );
    let mut big_spec = figure_spec(
        "baselines-random-64",
        TopologySpec::RandomDepth {
            nodes: 64,
            depth: 6,
        },
        baselines_engine,
        Termination::Rounds { max: 1 },
    );
    big_spec.workload.rates = RatesSpec::ZipfNodes {
        total: 6400.0,
        theta: 1.0,
    };
    big_spec.seed = seed;
    let workloads = vec![
        ("fig6".to_string(), fig6_spec),
        ("random-64/zipf".to_string(), big_spec),
    ];
    for (name, spec) in workloads {
        let report = Runner::new().run(&spec).expect("baseline spec resolves");
        let rows = report.rows[0].outcome.schemes.clone();
        let mut t = Table::new(vec![
            "scheme",
            "max load",
            "dist to GLE",
            "ctrl msgs/req",
            "data hops/req",
            "needs directory",
        ]);
        for r in &rows {
            t.row(vec![
                r.name.clone(),
                f3(r.max_load),
                f3(r.distance_to_gle),
                f3(r.control_msgs_per_request),
                f3(r.data_hops_per_request),
                if r.violates_nss {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]);
        }
        out.push_str(&format!(
            "A1 — baseline comparison on {name}\n{}\n",
            t.render()
        ));
        all_rows.extend(rows);
    }
    BaselineStudy {
        rows: all_rows,
        report: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_matches_paper_claims() {
        let r = fig2();
        assert!(r.a_is_gle);
        assert!(!r.b_is_gle);
        assert_eq!(r.tlb_b.as_slice(), paper::fig2b_tlb().as_slice());
        assert!(r.report.contains("fig2a"));
    }

    #[test]
    fn fig4_trace_has_five_folds() {
        let r = fig4();
        assert_eq!(r.fold_sequence.len(), 5);
        assert_eq!(r.fold_sequence[0].0, 3); // first fold: n3 into n1
        assert!(r.report.contains("folding sequence"));
    }

    #[test]
    fn fig6a_partitions_fourteen_nodes() {
        let r = fig6a();
        let covered: usize = r.folds.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(covered, 14);
    }

    #[test]
    fn fig6b_converges_exponentially() {
        let r = fig6b(400);
        let fit = r.fit.expect("fit succeeds");
        assert!(fit.gamma > 0.0 && fit.gamma < 1.0);
        assert!(r.iterations_to_1pct.is_some());
        let d = &r.distances;
        assert!(d[d.len() - 1] < d[0] * 1e-3);
    }

    #[test]
    fn gamma_study_produces_rates_below_one() {
        let s = gamma_study(&[3, 5], 64, 300, 42);
        assert_eq!(s.rows.len(), 2);
        for row in &s.rows {
            assert!(row.gamma > 0.0 && row.gamma < 1.0, "gamma {}", row.gamma);
            assert!(row.stderr >= 0.0);
        }
    }

    #[test]
    fn fig7_stalls_without_tunneling_and_heals_with_it() {
        let r = fig7(800);
        assert!(r.stalled_distance > 50.0);
        assert!(r.tunneled_distance < 5.0);
        assert!(r.tunnel_fetches >= 1);
        assert_eq!(r.stalled[NodeId::new(2)], 0.0);
    }

    #[test]
    fn gle_study_matches_predictions() {
        let s = gle_study();
        for row in &s.rows {
            assert!(
                (row.predicted_gamma - row.measured_gamma).abs() < 0.02,
                "{}: predicted {} measured {}",
                row.topology,
                row.predicted_gamma,
                row.measured_gamma
            );
        }
    }

    #[test]
    fn baseline_study_covers_both_workloads() {
        let s = baseline_study(7);
        assert_eq!(s.rows.len(), 12); // 6 schemes x 2 workloads
        assert!(s.report.contains("fig6"));
        assert!(s.report.contains("random-64"));
    }
}
