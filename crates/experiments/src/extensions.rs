//! Extension experiments beyond the paper's published evaluation —
//! the studies its future-work section announces (erratic rates, the
//! forest of overlapping trees) plus the throughput claim of the
//! abstract, quantified.

use crate::table::{f3, Table};
use ww_core::throughput::{saturation_capacity, throughput_at_capacity};
use ww_core::tracking::{track, TrackingConfig};
use ww_core::wave::WaveConfig;
use ww_model::{NodeId, RateVector};
use ww_scenario::{
    BaselineScheme, EngineSpec, PaperFigure, RatesSpec, Runner, ScenarioSpec, TelemetrySpec,
    Termination, TopologySpec, WorkloadSpec, DEFAULT_SEED,
};
use ww_topology::paper;
use ww_workload::{DiurnalDrift, RandomWalkRates, StepChange};

/// One row of the erratic-rates study.
#[derive(Debug, Clone)]
pub struct ErraticRow {
    /// Regime label.
    pub regime: String,
    /// Mean distance to the moving TLB oracle, relative to total demand.
    pub mean_relative_error: f64,
    /// Worst epoch's relative error.
    pub max_relative_error: f64,
}

/// Result of the erratic-rates study (experiment A5).
#[derive(Debug, Clone)]
pub struct ErraticStudy {
    /// One row per demand regime.
    pub rows: Vec<ErraticRow>,
    /// Rendered report.
    pub report: String,
}

/// Experiment A5 — "the dynamics of WebWave under erratic request rates"
/// (the paper's announced follow-up): tracking error of the protocol
/// against a moving TLB oracle under step, diurnal-drift and random-walk
/// demand.
pub fn erratic_study(seed: u64) -> ErraticStudy {
    let s = paper::fig6();
    let cfg = TrackingConfig {
        rounds_per_epoch: 60,
        epochs: 50,
        epoch_secs: 1.0,
        wave: WaveConfig::default(),
    };
    let mut rows = Vec::new();
    let mut t = Table::new(vec!["regime", "mean rel. error", "max rel. error"]);

    let flipped = {
        // Reverse the demand profile across the node order.
        let mut v: Vec<f64> = s.spontaneous.as_slice().to_vec();
        v.reverse();
        RateVector::from(v)
    };
    let mut step = StepChange::new(s.spontaneous.clone(), flipped, 25.0);
    let step_result = track(&s.tree, &mut step, cfg);

    let mut drift = DiurnalDrift::new(s.spontaneous.clone(), 0.4, 30.0);
    let drift_result = track(&s.tree, &mut drift, cfg);

    use rand::SeedableRng;
    let rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut walk = RandomWalkRates::new(s.spontaneous.clone(), 0.15, rng);
    let walk_result = track(&s.tree, &mut walk, cfg);

    for (name, r) in [
        ("step change", step_result),
        ("diurnal drift", drift_result),
        ("random walk", walk_result),
    ] {
        t.row(vec![
            name.into(),
            format!("{:.4}", r.mean_relative_error),
            format!("{:.4}", r.max_relative_error),
        ]);
        rows.push(ErraticRow {
            regime: name.into(),
            mean_relative_error: r.mean_relative_error,
            max_relative_error: r.max_relative_error,
        });
    }
    ErraticStudy {
        report: format!(
            "A5 — WebWave under erratic request rates (fig6 tree, 60 rounds/epoch)\n{}",
            t.render()
        ),
        rows,
    }
}

/// One row of the throughput study.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Scheme label.
    pub scheme: String,
    /// Smallest uniform capacity that serves the whole demand.
    pub saturation_capacity: f64,
    /// Goodput fraction at the TLB saturation capacity.
    pub goodput_at_tlb_capacity: f64,
}

/// Result of the throughput study (experiment A6).
#[derive(Debug, Clone)]
pub struct ThroughputStudy {
    /// One row per scheme.
    pub rows: Vec<ThroughputRow>,
    /// Rendered report.
    pub report: String,
}

/// Experiment A6 — the abstract's claim, quantified: balancing to TLB
/// "minimizes server idle time and maximizes aggregate throughput".
/// Reports the capacity each scheme needs to serve the fig6 demand and
/// the goodput each achieves when capacity is provisioned exactly for
/// TLB.
pub fn throughput_study() -> ThroughputStudy {
    let spec = ScenarioSpec {
        name: "throughput-fig6".to_string(),
        topology: TopologySpec::Paper {
            figure: PaperFigure::Fig6,
        },
        workload: WorkloadSpec {
            rates: RatesSpec::Paper,
            doc_mix: None,
        },
        engine: EngineSpec::Baselines {
            schemes: BaselineScheme::all(),
            replicas: 0,
            lookup_msgs: 2.0,
            gle_iterations: 2000,
            webwave_rounds: 4000,
            gossip_per_second: 2.0,
        },
        termination: Termination::Rounds { max: 1 },
        seed: DEFAULT_SEED,
        sweep: None,
        events: None,
        telemetry: TelemetrySpec::default(),
        rebalance: None,
    };
    let report = Runner::new().run(&spec).expect("throughput spec resolves");
    let schemes = report.rows[0].outcome.schemes.clone();
    let tlb_cap = schemes
        .iter()
        .find(|r| r.name == "webfold-oracle")
        .map(|r| saturation_capacity(&r.load))
        .expect("oracle present");
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "scheme",
        "saturation capacity",
        "goodput @ TLB capacity",
    ]);
    for r in &schemes {
        let sat = saturation_capacity(&r.load);
        let good = throughput_at_capacity(&r.load, tlb_cap).goodput_fraction;
        t.row(vec![
            r.name.clone(),
            f3(sat),
            format!("{:.1}%", 100.0 * good),
        ]);
        rows.push(ThroughputRow {
            scheme: r.name.clone(),
            saturation_capacity: sat,
            goodput_at_tlb_capacity: good,
        });
    }
    ThroughputStudy {
        report: format!(
            "A6 — throughput & idle capacity on fig6 (TLB saturation capacity {:.3} req/s)\n{}",
            tlb_cap,
            t.render()
        ),
        rows,
    }
}

/// Result of the forest study (experiment A7).
#[derive(Debug, Clone)]
pub struct ForestStudy {
    /// Max total load with uncoupled (per-tree) gossip.
    pub uncoupled_max: f64,
    /// Max total load with coupled (total-load) gossip.
    pub coupled_max: f64,
    /// Rendered report.
    pub report: String,
}

/// Experiment A7 — the paper's future work: WebWave on a forest of
/// overlapping routing trees. Two home servers at opposite ends of a
/// path, both demands entering at the same interior node; coupled gossip
/// (servers report total load) vs the naive per-tree composition.
pub fn forest_study() -> ForestStudy {
    // Declaratively: a 6-node path topology taken as an undirected
    // graph, re-rooted at both ends, with the same 60 req/s demand (at
    // n1) offered to each tree.
    let run = |coupled: bool| {
        let spec = ScenarioSpec {
            name: "forest-overlap".to_string(),
            topology: TopologySpec::Path { nodes: 6 },
            workload: WorkloadSpec {
                rates: RatesSpec::Explicit {
                    rates: vec![0.0, 60.0, 0.0, 0.0, 0.0, 0.0],
                },
                doc_mix: None,
            },
            engine: EngineSpec::ForestWave {
                alpha: None,
                coupled,
                roots: vec![0, 5],
            },
            termination: Termination::Rounds { max: 8000 },
            seed: DEFAULT_SEED,
            sweep: None,
            events: None,
            telemetry: TelemetrySpec::default(),
            rebalance: None,
        };
        let report = Runner::new().run(&spec).expect("forest spec resolves");
        report.rows[0].outcome.load.clone().expect("total load")
    };
    let uncoupled = run(false);
    let coupled = run(true);
    let mut t = Table::new(vec!["node", "uncoupled total", "coupled total"]);
    for i in 0..6 {
        t.row(vec![
            format!("n{i}"),
            f3(uncoupled[NodeId::new(i)]),
            f3(coupled[NodeId::new(i)]),
        ]);
    }
    ForestStudy {
        uncoupled_max: uncoupled.max(),
        coupled_max: coupled.max(),
        report: format!(
            "A7 — forest of overlapping trees (path 0..5, roots 0 and 5, both demands at n1)\n{}\nmax total load: uncoupled {:.3}, coupled {:.3}\n",
            t.render(),
            uncoupled.max(),
            coupled.max()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erratic_study_tracks_all_regimes() {
        let s = erratic_study(5);
        assert_eq!(s.rows.len(), 3);
        for row in &s.rows {
            assert!(
                row.mean_relative_error < 0.25,
                "{}: mean error {}",
                row.regime,
                row.mean_relative_error
            );
            assert!(row.max_relative_error >= row.mean_relative_error);
        }
    }

    #[test]
    fn throughput_study_ranks_schemes() {
        let s = throughput_study();
        let get = |n: &str| s.rows.iter().find(|r| r.scheme.starts_with(n)).unwrap();
        // TLB-capacity provisioning serves everything under WebWave...
        assert!((get("webwave").goodput_at_tlb_capacity - 1.0).abs() < 1e-9);
        // ...but almost nothing under no-cache.
        assert!(get("no-cache").goodput_at_tlb_capacity < 0.2);
        assert!(get("no-cache").saturation_capacity > get("webwave").saturation_capacity);
    }

    #[test]
    fn forest_study_shows_coupling_benefit() {
        let s = forest_study();
        assert!(
            s.coupled_max < s.uncoupled_max - 1.0,
            "coupled {} vs uncoupled {}",
            s.coupled_max,
            s.uncoupled_max
        );
    }
}
