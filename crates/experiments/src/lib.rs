//! # ww-experiments — regenerating every figure and table of the paper
//!
//! One runner per experiment id from `DESIGN.md`:
//!
//! | id | function | paper artifact |
//! |----|----------|----------------|
//! | F2 | [`fig2`] | Figure 2 — TLB vs GLE on two rate vectors |
//! | F4 | [`fig4`] | Figure 4 — the complete WebFold folding sequence |
//! | F6a | [`fig6a`] | Figure 6(a) — hand-crafted tree and its folds |
//! | F6b | [`fig6b`] | Figure 6(b) — WebWave distance-to-TLB per iteration |
//! | G9 | [`gamma_study`] | Section 5.1 — `gamma` regression on random trees |
//! | F7 | [`fig7`] | Figure 7 — potential barrier and tunneling |
//! | S2 | [`gle_study`] | Section 2 — GLE diffusion background claims |
//! | A1 | [`baseline_study`] | ablation — WebWave vs directory/DNS/no-cache |
//! | A5 | [`erratic_study`] | future work — erratic request rates |
//! | A6 | [`throughput_study`] | abstract's claim — throughput & idle capacity |
//! | A7 | [`forest_study`] | future work — forest of overlapping trees |
//!
//! The `webwave-exp` binary prints any subset:
//! `cargo run -p ww-experiments --bin webwave-exp -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extensions;
pub mod figures;
pub mod table;

pub use extensions::{
    erratic_study, forest_study, throughput_study, ErraticRow, ErraticStudy, ForestStudy,
    ThroughputRow, ThroughputStudy,
};
pub use figures::{
    baseline_study, fig2, fig4, fig6a, fig6b, fig7, gamma_study, gle_study, BaselineStudy,
    ConvergenceResult, Fig2Result, Fig4Result, Fig6aResult, Fig7Result, GammaRow, GammaStudy,
    GleRow, GleStudy,
};
