//! Minimal text-table and CSV rendering for experiment output.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use ww_experiments::table::Table;
/// let mut t = Table::new(vec!["node", "load"]);
/// t.row(vec!["n0".into(), "90.0".into()]);
/// let s = t.render();
/// assert!(s.contains("node"));
/// assert!(s.contains("n0"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with six decimals (for gamma estimates).
pub fn f6(x: f64) -> String {
    format!("{x:.6}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\na,1\n");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f6(0.830734), "0.830734");
    }
}
