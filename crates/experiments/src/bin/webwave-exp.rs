//! Command-line experiment runner.
//!
//! Two modes:
//!
//! * **Spec mode** — `webwave-exp run <spec.json>... [--smoke]
//!   [--telemetry off|counters|full] [--trace-out <path>]` resolves
//!   each declarative scenario file through the unified
//!   `ww-scenario` Runner and prints its report. `--smoke` shrinks
//!   every spec to CI size first (same resolution and engine paths,
//!   seconds-scale budgets). `--telemetry` and `--trace-out` override
//!   the spec's `telemetry` block (observation only — no level changes
//!   simulated output). `webwave-exp list <dir>` lists the specs in a
//!   directory (default `scenarios/`).
//! * **Figure mode** — `webwave-exp [fig2|fig4|fig6a|fig6b|gamma|fig7|
//!   gle|baselines|erratic|throughput|forest|all]...` regenerates the
//!   paper's figures/tables (all engine-driven figures run through the
//!   same Runner).

use std::process::ExitCode;
use ww_experiments as exp;
use ww_scenario::{Runner, ScenarioSpec};
use ww_telemetry::Level;

const RUN_USAGE: &str = "usage: webwave-exp run <spec.json>... [--smoke] \
     [--telemetry off|counters|full] [--trace-out <path>]";

/// Flags for spec mode, parsed out of the `run` argument tail.
struct RunFlags {
    paths: Vec<String>,
    smoke: bool,
    telemetry: Option<Level>,
    trace_out: Option<String>,
}

fn parse_run_flags(rest: &[String]) -> Result<RunFlags, String> {
    let mut flags = RunFlags {
        paths: Vec::new(),
        smoke: false,
        telemetry: None,
        trace_out: None,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => flags.smoke = true,
            "--telemetry" => {
                let value = it.next().ok_or("--telemetry requires a value")?;
                flags.telemetry = Some(Level::parse(value).ok_or_else(|| {
                    format!("--telemetry {value}: expected off, counters, or full")
                })?);
            }
            "--trace-out" => {
                let value = it.next().ok_or("--trace-out requires a value")?;
                flags.trace_out = Some(value.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}"));
            }
            _ => flags.paths.push(arg.clone()),
        }
    }
    Ok(flags)
}

fn run_specs(flags: &RunFlags) -> ExitCode {
    if flags.paths.is_empty() {
        eprintln!("{RUN_USAGE}");
        return ExitCode::FAILURE;
    }
    let runner = Runner::new().smoke(flags.smoke);
    let mut failed = false;
    for path in &flags.paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("webwave-exp: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let mut spec = match ScenarioSpec::from_json(&text) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("webwave-exp: {path}: {e}");
                failed = true;
                continue;
            }
        };
        if let Some(level) = flags.telemetry {
            spec.telemetry.level = level;
        }
        if let Some(out) = &flags.trace_out {
            spec.telemetry.trace_out = Some(out.clone());
        }
        match runner.run(&spec) {
            Ok(report) => print!("{}", report.report),
            Err(e) => {
                eprintln!("webwave-exp: {path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn list_specs(dir: &str) -> ExitCode {
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("webwave-exp: {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    entries.sort();
    for path in entries {
        match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| ScenarioSpec::from_json(&text).map_err(|e| e.to_string()))
        {
            Ok(spec) => {
                let sweep = match &spec.sweep {
                    Some(s) => format!(", sweep {} x{}", s.param.as_str(), s.values.len()),
                    None => String::new(),
                };
                println!(
                    "{}: {} (engine {}{})",
                    path.display(),
                    spec.name,
                    spec.engine.kind(),
                    sweep
                );
            }
            Err(e) => println!("{}: INVALID — {e}", path.display()),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    match args.first().map(String::as_str) {
        Some("run") => {
            let rest = &args[1..];
            return match parse_run_flags(rest) {
                Ok(flags) => run_specs(&flags),
                Err(e) => {
                    eprintln!("webwave-exp: {e}\n{RUN_USAGE}");
                    ExitCode::FAILURE
                }
            };
        }
        Some("list") => {
            let dir = args.get(1).map(String::as_str).unwrap_or("scenarios");
            return list_specs(dir);
        }
        _ => {}
    }

    let wanted: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let all = wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    if want("fig2") {
        println!("{}", exp::fig2().report);
    }
    if want("fig4") {
        println!("{}", exp::fig4().report);
    }
    if want("fig6a") {
        println!("{}", exp::fig6a().report);
    }
    if want("fig6b") {
        println!("{}", exp::fig6b(400).report);
    }
    if want("gamma") {
        println!(
            "{}",
            exp::gamma_study(&[3, 4, 5, 6, 7, 8, 9], 256, 600, 1997).report
        );
    }
    if want("fig7") {
        println!("{}", exp::fig7(1500).report);
    }
    if want("gle") {
        println!("{}", exp::gle_study().report);
    }
    if want("baselines") {
        println!("{}", exp::baseline_study(1997).report);
    }
    if want("erratic") {
        println!("{}", exp::erratic_study(1997).report);
    }
    if want("throughput") {
        println!("{}", exp::throughput_study().report);
    }
    if want("forest") {
        println!("{}", exp::forest_study().report);
    }
    ExitCode::SUCCESS
}
