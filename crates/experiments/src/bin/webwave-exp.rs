//! Command-line experiment runner: regenerates the paper's figures/tables.
//!
//! Usage: `webwave-exp [fig2|fig4|fig6a|fig6b|gamma|fig7|gle|baselines|erratic|throughput|forest|all]...`

use ww_experiments as exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() {
        vec!["all"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let all = wanted.contains(&"all");
    let want = |name: &str| all || wanted.contains(&name);

    if want("fig2") {
        println!("{}", exp::fig2().report);
    }
    if want("fig4") {
        println!("{}", exp::fig4().report);
    }
    if want("fig6a") {
        println!("{}", exp::fig6a().report);
    }
    if want("fig6b") {
        println!("{}", exp::fig6b(400).report);
    }
    if want("gamma") {
        println!(
            "{}",
            exp::gamma_study(&[3, 4, 5, 6, 7, 8, 9], 256, 600, 1997).report
        );
    }
    if want("fig7") {
        println!("{}", exp::fig7(1500).report);
    }
    if want("gle") {
        println!("{}", exp::gle_study().report);
    }
    if want("baselines") {
        println!("{}", exp::baseline_study(1997).report);
    }
    if want("erratic") {
        println!("{}", exp::erratic_study(1997).report);
    }
    if want("throughput") {
        println!("{}", exp::throughput_study().report);
    }
    if want("forest") {
        println!("{}", exp::forest_study().report);
    }
}
