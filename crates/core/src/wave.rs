//! WebWave — the fully distributed diffusion protocol (paper, Figure 5),
//! at the rate level.
//!
//! This engine is the paper's own evaluation vehicle (Section 5.1): load is
//! a divisible rate, rounds are synchronous, and gossip is instantaneous by
//! default ("communication delay is negligible ... `L_ik = L_k`"); an
//! optional staleness parameter relaxes that assumption for the
//! asynchronous-gossip ablation. Every round each node `i`:
//!
//! * shifts load **to a child `j`** bounded by what that child forwards:
//!   `min{ A_j, alpha * (L_i - L_ij) }` — the no-sibling-sharing bound,
//! * shifts load **to its parent** freely (requests already flow up),
//! * and gossips its new load to its tree neighbors.
//!
//! The root serves everything that still reaches it (Constraint 1). The
//! per-round Euclidean distance to the WebFold (TLB) oracle is recorded,
//! reproducing Figure 6(b) and the `gamma` regression.
//!
//! # Performance
//!
//! Diffusion rounds are **zero-allocation** and run over a **BFS-permuted
//! dense layout**:
//!
//! * The load/forwarded vectors are double-buffered (swapped, never
//!   cloned) and the staleness window recycles a fixed ring of buffers.
//! * Internally nodes live at their BFS positions, so the per-edge
//!   transfer pass walks a contiguous child range with monotone parent
//!   positions, and the bottom-up repair pass is a strict reverse scan
//!   whose per-node children are a contiguous slice — streaming access
//!   instead of pointer chasing.
//!
//! The arithmetic — including every floating-point accumulation order —
//! is identical to the naive clone-per-round formulation
//! ([`crate::reference::NaiveRateWave`]): siblings are always combined in
//! ascending-id order, and the public id-ordered vectors are rebuilt each
//! round before the distance is taken. The golden-trace tests hold the
//! two engines bit-for-bit equal.

use crate::fold::IncrementalFold;
use std::collections::VecDeque;
use ww_diffusion::safe_alpha;
use ww_model::{LeafRemoval, ModelError, NodeId, RateVector, Tree};
use ww_stats::ConvergenceTrace;

/// Configuration of a rate-level WebWave run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WaveConfig {
    /// Diffusion parameter; `None` selects the safe default
    /// `1 / (max_tree_degree + 1)` (paper Figure 5, step 1:
    /// "other values of `alpha_i` are possible").
    pub alpha: Option<f64>,
    /// Gossip staleness in rounds: each node sees neighbor loads as of
    /// `staleness` rounds ago. `0` is the paper's instantaneous-exchange
    /// assumption.
    pub staleness: usize,
}

/// A rate-level WebWave simulation.
///
/// # Example
///
/// ```
/// use ww_topology::paper;
/// use ww_core::wave::{RateWave, WaveConfig};
///
/// let s = paper::fig6();
/// let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
/// wave.run(500);
/// // Converged to the TLB assignment computed by WebFold.
/// assert!(wave.distance_to_tlb() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct RateWave {
    tree: Tree,
    spontaneous: RateVector,
    /// Served rates in **id order** — the public view, rebuilt from the
    /// permuted state at the end of every round.
    load: RateVector,
    /// Forwarded rates in **id order** — the public view.
    forwarded: RateVector,
    alpha: f64,
    /// The explicit alpha from the config, if any; rebuilds after churn
    /// events re-derive the safe default only when this is `None`.
    alpha_override: Option<f64>,
    staleness: usize,

    // ---- BFS-permuted dense state (hot path) -------------------------
    /// Node id at each BFS position (`tree.bfs_order()`).
    order: Vec<u32>,
    /// BFS position of each node id (inverse of `order`).
    pos_of: Vec<u32>,
    /// Parent position of each position; position 0 is the root.
    parent_pos: Vec<u32>,
    /// Children of position `u` occupy positions
    /// `child_start[u]..child_start[u + 1]` — contiguous by the BFS
    /// property, in ascending-id order.
    child_start: Vec<u32>,
    /// `true` when every parent id is smaller than all of its children's
    /// ids. Then the position-order scan applies each cell's operations
    /// in exactly the naive engine's ascending-edge-id order, so the fast
    /// streaming path is bit-identical.
    id_order_sorted: bool,
    /// Fallback for irregular numberings (e.g. Prüfer trees): all
    /// `(child_pos, parent_pos)` edges sorted by ascending child *id*,
    /// which replays the naive accumulation order exactly. Empty when
    /// `id_order_sorted`.
    edges_by_id: Vec<(u32, u32)>,
    /// Spontaneous rates at BFS positions.
    spont_pos: Vec<f64>,
    /// Served rates at BFS positions (current round).
    load_pos: Vec<f64>,
    /// Forwarded rates at BFS positions (current round).
    fwd_pos: Vec<f64>,
    /// Double buffer for the next load vector (swapped with `load_pos`).
    next_buf: Vec<f64>,
    /// Double buffer for the next forwarded vector (swapped with
    /// `fwd_pos`).
    fwd_buf: Vec<f64>,
    /// Past load vectors (BFS positions), oldest first; holds at most
    /// `staleness` buffers, recycled once the window fills so steady-state
    /// rounds never allocate.
    history: VecDeque<Vec<f64>>,
    /// Per node **id**: `true` when the control link to its parent is
    /// failed (no diffusion/gossip crosses it; requests still flow).
    failed_up: Vec<bool>,
    /// `failed_up` permuted to BFS positions (the hot-path view).
    failed_up_pos: Vec<bool>,
    /// Fast guard: when `false`, rounds take the original unmasked loops,
    /// so static runs stay bit-identical to the reference engine.
    any_failed: bool,

    oracle: RateVector,
    /// Summary cache behind `oracle`: churn re-folds only the touched
    /// root paths instead of sweeping the whole tree.
    fold: IncrementalFold,
    /// `true` between [`RateWave::begin_batch`] and
    /// [`RateWave::end_batch`]: oracle refolds and the per-event trace
    /// sample are deferred to the batch commit.
    batched: bool,
    /// Whether a batched barrier deferred at least one oracle refresh.
    batch_dirty: bool,
    trace: ConvergenceTrace,
    round: usize,
}

/// The BFS-permuted dense layout of one tree, shared by construction and
/// the post-churn rebuilds.
struct Layout {
    order: Vec<u32>,
    pos_of: Vec<u32>,
    parent_pos: Vec<u32>,
    child_start: Vec<u32>,
    id_order_sorted: bool,
    edges_by_id: Vec<(u32, u32)>,
}

impl Layout {
    fn of(tree: &Tree) -> Layout {
        let n = tree.len();
        // BFS permutation: position -> id, and per-position structure.
        let order: Vec<u32> = tree.bfs_order().iter().map(|u| u.index() as u32).collect();
        let mut pos_of = vec![0u32; n];
        for (pos, &id) in order.iter().enumerate() {
            pos_of[id as usize] = pos as u32;
        }
        let parent_pos: Vec<u32> = order
            .iter()
            .map(|&id| {
                tree.parent(NodeId::new(id as usize))
                    .map_or(u32::MAX, |p| pos_of[p.index()])
            })
            .collect();
        // Children of position u are the contiguous run of positions whose
        // parent is u; runs appear in position order by the BFS property
        // (node u's children are enqueued, in ascending-id order, when u
        // is dequeued). The first child of position u therefore sits right
        // after all children of positions < u.
        let mut child_start = vec![0u32; n + 1];
        let mut next_child = 1u32; // position 0 is the root, nobody's child
        for u in 0..n {
            child_start[u] = next_child.min(n as u32);
            next_child += tree.children(NodeId::new(order[u] as usize)).len() as u32;
        }
        child_start[n] = n as u32;
        debug_assert!((0..n).all(|u| {
            let (lo, hi) = (child_start[u] as usize, child_start[u + 1] as usize);
            (lo..hi).all(|v| parent_pos[v] as usize == u)
        }));
        // Fast path applies when no child id precedes its parent's id;
        // otherwise fall back to an edge list in ascending child-id order
        // (the naive engine's scan order).
        let id_order_sorted = (1..n).all(|c| order[parent_pos[c] as usize] < order[c]);
        let edges_by_id: Vec<(u32, u32)> = if id_order_sorted {
            Vec::new()
        } else {
            let mut edges: Vec<(u32, u32)> = (1..n).map(|c| (c as u32, parent_pos[c])).collect();
            edges.sort_by_key(|&(c, _)| order[c as usize]);
            edges
        };
        Layout {
            order,
            pos_of,
            parent_pos,
            child_start,
            id_order_sorted,
            edges_by_id,
        }
    }
}

impl RateWave {
    /// Starts a run from the *cold* state: no cache copies exist, so the
    /// home server serves the entire demand.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against `tree`, or if a
    /// provided `alpha` is outside `(0, 1)`.
    pub fn new(tree: &Tree, spontaneous: &RateVector, config: WaveConfig) -> Self {
        let mut initial = RateVector::zeros(tree.len());
        initial[tree.root()] = spontaneous.total();
        Self::with_initial(tree, spontaneous, initial, config)
    }

    /// Starts a run from an explicit initial served-rate vector, which
    /// must be feasible (NSS + root constraint).
    ///
    /// # Panics
    ///
    /// Panics if vectors do not validate against `tree`, if the initial
    /// assignment is infeasible, or if `alpha` is outside `(0, 1)`.
    pub fn with_initial(
        tree: &Tree,
        spontaneous: &RateVector,
        initial: RateVector,
        config: WaveConfig,
    ) -> Self {
        spontaneous
            .validate_for(tree)
            .expect("spontaneous rates must match the tree");
        let assignment = ww_model::LoadAssignment::new(tree, spontaneous, initial.clone())
            .expect("initial load must match the tree");
        assert!(
            assignment.check_feasible(1e-6).is_ok(),
            "initial load assignment must be feasible"
        );
        let alpha = config.alpha.unwrap_or_else(|| safe_alpha(tree));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        let mut fold = IncrementalFold::new(tree, spontaneous);
        let oracle = fold.refold_path(tree, spontaneous).into_load();
        let forwarded = assignment.forwarded().clone();
        let mut trace = ConvergenceTrace::new();
        trace.push(initial.euclidean_distance(&oracle));

        let n = tree.len();
        let layout = Layout::of(tree);
        let permute = |v: &RateVector| -> Vec<f64> {
            layout
                .order
                .iter()
                .map(|&id| v.as_slice()[id as usize])
                .collect()
        };
        let spont_pos = permute(spontaneous);
        let load_pos = permute(&initial);
        let fwd_pos = permute(&forwarded);

        RateWave {
            tree: tree.clone(),
            spontaneous: spontaneous.clone(),
            load: initial,
            forwarded,
            alpha,
            alpha_override: config.alpha,
            staleness: config.staleness,
            order: layout.order,
            pos_of: layout.pos_of,
            parent_pos: layout.parent_pos,
            child_start: layout.child_start,
            id_order_sorted: layout.id_order_sorted,
            edges_by_id: layout.edges_by_id,
            spont_pos,
            load_pos,
            fwd_pos,
            next_buf: vec![0.0; n],
            fwd_buf: vec![0.0; n],
            history: VecDeque::with_capacity(config.staleness),
            failed_up: vec![false; n],
            failed_up_pos: vec![false; n],
            any_failed: false,
            oracle,
            fold,
            batched: false,
            batch_dirty: false,
            trace,
            round: 0,
        }
    }

    /// Rebuilds the public id-ordered `load`/`forwarded` vectors from the
    /// permuted state.
    fn unpermute(&mut self) {
        let load = self.load.as_mut_slice();
        let fwd = self.forwarded.as_mut_slice();
        for (pos, &id) in self.order.iter().enumerate() {
            load[id as usize] = self.load_pos[pos];
            fwd[id as usize] = self.fwd_pos[pos];
        }
    }

    /// Rebuilds the public vectors and returns the Euclidean distance to
    /// the oracle in one fused pass, accumulating in ascending-id order —
    /// the same order `RateVector::euclidean_distance` uses.
    fn unpermute_and_distance(&mut self) -> f64 {
        let load = self.load.as_mut_slice();
        let fwd = self.forwarded.as_mut_slice();
        let oracle = self.oracle.as_slice();
        let pos_of = &self.pos_of;
        let mut sum_sq = 0.0;
        for id in 0..load.len() {
            let pos = pos_of[id] as usize;
            let l = self.load_pos[pos];
            load[id] = l;
            fwd[id] = self.fwd_pos[pos];
            let d = l - oracle[id];
            sum_sq += d * d;
        }
        sum_sq.sqrt()
    }

    /// Executes one synchronous WebWave round (Figure 5, steps 2.1-2.4).
    ///
    /// The round is allocation-free: all buffers are reused, and once the
    /// staleness window fills, history buffers are recycled instead of
    /// cloned.
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.tree.len();
        let alpha = self.alpha;
        let stale = self.staleness > 0 && !self.history.is_empty();
        let load: &[f64] = &self.load_pos;
        let fwd_prev: &[f64] = &self.fwd_pos;
        let parent_pos: &[u32] = &self.parent_pos;
        let next: &mut [f64] = &mut self.next_buf;
        next.copy_from_slice(load);

        // Per-edge net transfers, computed once per (parent, child) pair.
        //
        // Float addition is not associative, so each cell's accumulation
        // must replay the naive engine's ascending-edge-id scan order.
        // When every parent id precedes its children's ids
        // (`id_order_sorted` — all regular generators and the paper
        // trees), the position scan already does: a cell's own `+=`
        // lands before its children's `-=`s, and siblings are adjacent
        // in ascending-id order. Then parents are monotone nondecreasing
        // (BFS), so the scan streams. Irregular numberings (e.g. Prüfer
        // trees) take the `edges_by_id` fallback, which walks the same
        // arithmetic in explicit ascending child-id order.
        //
        // `(alpha * (lp - ec)).min(bound).max(0.0)` equals the guarded
        // `if lp > ec { (alpha * (lp - ec)).min(bound) } else { 0.0 }`
        // bit for bit: when `lp <= ec` the product is `<= 0.0` and the
        // final `.max(0.0)` restores exactly `0.0` (`x - x == +0.0` in
        // IEEE 754, and the branchless form is `minsd`/`maxsd`, not a
        // mispredictable branch).
        let est: &[f64] = if stale { &self.history[0] } else { load };
        if self.any_failed {
            // Dynamic regime: some control links are severed, so those
            // edges move nothing this round (requests still flow — the
            // repair pass below is untouched). Static runs never reach
            // this branch, keeping them bit-identical to the reference
            // engine. With instantaneous gossip `est` aliases `load`, so
            // one masked loop covers both staleness regimes exactly.
            let failed = &self.failed_up_pos;
            if self.id_order_sorted {
                for c in 1..n {
                    if failed[c] {
                        continue;
                    }
                    let p = parent_pos[c] as usize;
                    let (lp, lc) = (load[p], load[c]);
                    let (ep, ec) = (est[p], est[c]);
                    let down = (alpha * (lp - ec)).min(fwd_prev[c]).max(0.0);
                    let up = (alpha * (lc - ep)).min(lc).max(0.0);
                    let net = down - up;
                    next[p] -= net;
                    next[c] += net;
                }
            } else {
                for &(c, p) in &self.edges_by_id {
                    if failed[c as usize] {
                        continue;
                    }
                    let (c, p) = (c as usize, p as usize);
                    let (lp, lc) = (load[p], load[c]);
                    let (ep, ec) = (est[p], est[c]);
                    let down = (alpha * (lp - ec)).min(fwd_prev[c]).max(0.0);
                    let up = (alpha * (lc - ep)).min(lc).max(0.0);
                    let net = down - up;
                    next[p] -= net;
                    next[c] += net;
                }
            }
        } else if self.id_order_sorted {
            if stale {
                // Stale gossip: decisions use the lagged estimate vector.
                for c in 1..n {
                    let p = parent_pos[c] as usize;
                    let (lp, lc) = (load[p], load[c]);
                    let (ep, ec) = (est[p], est[c]);
                    // Parent pushes down, bounded by the child's forwarded
                    // rate (NSS: a child can only absorb load its own
                    // subtree emits); child pushes up freely, bounded by
                    // its own load.
                    let down = (alpha * (lp - ec)).min(fwd_prev[c]).max(0.0);
                    let up = (alpha * (lc - ep)).min(lc).max(0.0);
                    let net = down - up;
                    next[p] -= net;
                    next[c] += net;
                }
            } else {
                // Instantaneous gossip: estimates are the loads
                // themselves, so skip the second pair of loads entirely.
                for c in 1..n {
                    let p = parent_pos[c] as usize;
                    let (lp, lc) = (load[p], load[c]);
                    let down = (alpha * (lp - lc)).min(fwd_prev[c]).max(0.0);
                    let up = (alpha * (lc - lp)).min(lc).max(0.0);
                    let net = down - up;
                    next[p] -= net;
                    next[c] += net;
                }
            }
        } else {
            for &(c, p) in &self.edges_by_id {
                let (c, p) = (c as usize, p as usize);
                let (lp, lc) = (load[p], load[c]);
                let (ep, ec) = (est[p], est[c]);
                let down = (alpha * (lp - ec)).min(fwd_prev[c]).max(0.0);
                let up = (alpha * (lc - ep)).min(lc).max(0.0);
                let net = down - up;
                next[p] -= net;
                next[c] += net;
            }
        }

        // Repair pass: re-impose flow feasibility bottom-up. A node may
        // not serve more than flows through it; surplus climbs toward the
        // root, which absorbs everything that remains (Constraint 1).
        // Reverse position order *is* the bottom-up traversal, and each
        // node's children are a contiguous ascending-id slice.
        let forwarded: &mut [f64] = &mut self.fwd_buf;
        let spont: &[f64] = &self.spont_pos;
        let child_start: &[u32] = &self.child_start;
        for u in (0..n).rev() {
            let mut through = spont[u];
            let (lo, hi) = (child_start[u] as usize, child_start[u + 1] as usize);
            for f in &forwarded[lo..hi] {
                through += *f;
            }
            if u == 0 {
                next[u] = through;
                forwarded[u] = 0.0;
            } else {
                // Clamp to [0, through]: a node cannot serve a negative
                // rate nor more than flows through it. Whatever it cannot
                // serve stays in the stream and is absorbed upstream
                // (ultimately by the root), so totals are conserved.
                next[u] = next[u].clamp(0.0, through);
                forwarded[u] = through - next[u];
            }
        }

        // Gossip (step 2.4): append the *previous* load to the history so
        // estimates lag by `staleness` rounds. Once the window is full the
        // oldest buffer is recycled as the newest — no allocation.
        if self.staleness > 0 {
            if self.history.len() >= self.staleness {
                let mut recycled = self.history.pop_front().expect("non-empty history");
                recycled.copy_from_slice(&self.load_pos);
                self.history.push_back(recycled);
            } else {
                self.history.push_back(self.load_pos.clone());
            }
        }

        std::mem::swap(&mut self.load_pos, &mut self.next_buf);
        std::mem::swap(&mut self.fwd_pos, &mut self.fwd_buf);
        let distance = self.unpermute_and_distance();
        self.trace.push(distance);
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until the distance to TLB drops to `threshold` or the round
    /// cap is reached; returns the rounds taken by this call.
    pub fn run_until(&mut self, threshold: f64, max_rounds: usize) -> usize {
        let mut taken = 0;
        while self.distance_to_tlb() > threshold && taken < max_rounds {
            self.step();
            taken += 1;
        }
        taken
    }

    /// Current served-rate vector `L`.
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// Current forwarded-rate vector `A`.
    pub fn forwarded(&self) -> &RateVector {
        &self.forwarded
    }

    /// The TLB oracle (WebFold output) this run converges toward.
    pub fn oracle(&self) -> &RateVector {
        &self.oracle
    }

    /// Euclidean distance from the current loads to the TLB oracle — the
    /// paper's convergence metric.
    pub fn distance_to_tlb(&self) -> f64 {
        self.load.euclidean_distance(&self.oracle)
    }

    /// The per-round distance trace (index = round).
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The effective diffusion parameter in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Changes the spontaneous demand mid-run — the "erratic request
    /// rates" regime of the paper's future work (Section 5.1/7).
    ///
    /// The TLB oracle is recomputed for the new demand, and the current
    /// load vector is re-projected onto the new feasible region (clamped
    /// to the new through rates; the root absorbs the residual), exactly
    /// as the running protocol would experience a demand shift.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against the tree.
    pub fn set_spontaneous(&mut self, spontaneous: &RateVector) {
        spontaneous
            .validate_for(&self.tree)
            .expect("spontaneous rates must match the tree");
        self.spontaneous = spontaneous.clone();
        for (pos, &id) in self.order.iter().enumerate() {
            self.spont_pos[pos] = spontaneous.as_slice()[id as usize];
        }
        // Re-impose feasibility under the new flows.
        let n = self.tree.len();
        for u in (0..n).rev() {
            let mut through = self.spont_pos[u];
            let (lo, hi) = (
                self.child_start[u] as usize,
                self.child_start[u + 1] as usize,
            );
            for v in lo..hi {
                through += self.fwd_pos[v];
            }
            if u == 0 {
                self.load_pos[u] = through;
                self.fwd_pos[u] = 0.0;
            } else {
                self.load_pos[u] = self.load_pos[u].clamp(0.0, through);
                self.fwd_pos[u] = through - self.load_pos[u];
            }
        }
        self.unpermute();
        // Old gossip describes the old regime; drop it.
        self.history.clear();
        self.refresh_oracle();
    }

    /// The routing tree this run currently operates on.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Whether the control link from `node` to its parent is currently
    /// failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn link_failed(&self, node: NodeId) -> bool {
        self.failed_up[node.index()]
    }

    /// Fails the control link between `node` and its parent: no
    /// diffusion transfer or gossip crosses the edge until
    /// [`RateWave::heal_link`]. The *data* path is unaffected — requests
    /// keep flowing up the tree (WebWave's control plane rides on top of
    /// the existing HTTP routing substrate), so the subtree's demand is
    /// still served, just no longer balanced across the cut.
    ///
    /// Returns `false` when the link was already failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root (which has no
    /// uplink).
    pub fn fail_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.tree.parent(node).is_some(),
            "the root has no uplink to fail"
        );
        let fresh = !self.failed_up[node.index()];
        self.failed_up[node.index()] = true;
        self.failed_up_pos[self.pos_of[node.index()] as usize] = true;
        self.any_failed = true;
        fresh
    }

    /// Restores the control link between `node` and its parent. Returns
    /// `false` when the link was not failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn heal_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.tree.parent(node).is_some(),
            "the root has no uplink to heal"
        );
        let was = self.failed_up[node.index()];
        self.failed_up[node.index()] = false;
        self.failed_up_pos[self.pos_of[node.index()] as usize] = false;
        self.any_failed = self.failed_up.iter().any(|&f| f);
        was
    }

    /// A cache server joins as a new leaf under `parent`, bringing `rate`
    /// req/s of spontaneous demand. The newcomer starts cold (serving
    /// nothing; its demand flows upward), the TLB oracle is recomputed
    /// for the grown tree, and the dense layout is rebuilt.
    ///
    /// Returns the new node's id (`== old len`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NodeOutOfRange`] for an unknown parent or
    /// [`ModelError::InvalidRate`] for a negative/non-finite rate.
    pub fn add_leaf(&mut self, parent: NodeId, rate: f64) -> Result<NodeId, ModelError> {
        if !rate.is_finite() || rate < 0.0 {
            return Err(ModelError::InvalidRate {
                node: parent,
                value: rate,
            });
        }
        let id = self.tree.add_leaf(parent)?;
        self.fold.on_join(&self.tree, id);
        let mut spont = self.spontaneous.clone().into_inner();
        spont.push(rate);
        self.spontaneous = RateVector::from(spont);
        let mut load = self.load.clone().into_inner();
        load.push(0.0);
        self.load = RateVector::from(load);
        self.failed_up.push(false);
        self.rebuild();
        Ok(id)
    }

    /// A leaf cache server departs. Its clients re-route to the next
    /// cache up the tree, so its spontaneous demand re-homes to its
    /// parent (total demand is conserved); the load it served reappears
    /// upstream and is re-balanced over the following rounds. Ids are
    /// compacted exactly as [`Tree::remove_leaf`] describes (swap-remove).
    ///
    /// # Errors
    ///
    /// As [`Tree::remove_leaf`]: unknown id, root, or interior node.
    pub fn remove_leaf(&mut self, node: NodeId) -> Result<LeafRemoval, ModelError> {
        let removal = self.tree.remove_leaf(node)?;
        self.fold.on_leave(&self.tree, &removal);
        let mut spont = self.spontaneous.clone().into_inner();
        removal.rehome(&mut spont);
        self.spontaneous = RateVector::from(spont);
        let mut load = self.load.clone().into_inner();
        load.swap_remove(node.index());
        self.load = RateVector::from(load);
        self.failed_up.swap_remove(node.index());
        self.rebuild();
        Ok(removal)
    }

    /// Rebuilds every derived structure after a topology event: dense
    /// layout, safe alpha (unless overridden), TLB oracle, feasibility of
    /// the carried-over load, failed-link mask, and the public vectors.
    /// Gossip history is dropped (it describes the old regime) and the
    /// post-event distance is appended to the trace.
    fn rebuild(&mut self) {
        let n = self.tree.len();
        let layout = Layout::of(&self.tree);
        self.alpha = self
            .alpha_override
            .unwrap_or_else(|| safe_alpha(&self.tree));
        self.spont_pos = layout
            .order
            .iter()
            .map(|&id| self.spontaneous.as_slice()[id as usize])
            .collect();
        self.load_pos = layout
            .order
            .iter()
            .map(|&id| self.load.as_slice()[id as usize])
            .collect();
        self.fwd_pos = vec![0.0; n];
        self.next_buf = vec![0.0; n];
        self.fwd_buf = vec![0.0; n];
        self.failed_up_pos = layout
            .order
            .iter()
            .map(|&id| self.failed_up[id as usize])
            .collect();
        self.any_failed = self.failed_up.iter().any(|&f| f);
        self.order = layout.order;
        self.pos_of = layout.pos_of;
        self.parent_pos = layout.parent_pos;
        self.child_start = layout.child_start;
        self.id_order_sorted = layout.id_order_sorted;
        self.edges_by_id = layout.edges_by_id;
        self.history.clear();
        // Re-impose flow feasibility bottom-up under the new topology.
        for u in (0..n).rev() {
            let mut through = self.spont_pos[u];
            let (lo, hi) = (
                self.child_start[u] as usize,
                self.child_start[u + 1] as usize,
            );
            for v in lo..hi {
                through += self.fwd_pos[v];
            }
            if u == 0 {
                self.load_pos[u] = through;
                self.fwd_pos[u] = 0.0;
            } else {
                self.load_pos[u] = self.load_pos[u].clamp(0.0, through);
                self.fwd_pos[u] = through - self.load_pos[u];
            }
        }
        self.forwarded = RateVector::zeros(n);
        self.unpermute();
        self.refresh_oracle();
    }

    /// Re-folds the TLB oracle along the dirty root paths and samples
    /// the post-event distance into the trace — or, inside a batched
    /// barrier, defers both to [`RateWave::end_batch`].
    fn refresh_oracle(&mut self) {
        if self.batched {
            self.batch_dirty = true;
        } else {
            self.oracle = self
                .fold
                .refold_path(&self.tree, &self.spontaneous)
                .into_load();
            self.trace.push(self.load.euclidean_distance(&self.oracle));
        }
    }

    /// Opens a batched barrier: subsequent churn events apply their
    /// structural effects eagerly but defer the oracle refold and the
    /// trace sample until [`RateWave::end_batch`], which pays them once
    /// for the whole barrier.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already open.
    pub fn begin_batch(&mut self) {
        assert!(!self.batched, "batch already open");
        self.batched = true;
    }

    /// Closes a batched barrier: one oracle refold and one trace
    /// sample, regardless of how many events the batch held. A batch of
    /// exactly one oracle-touching event is bit-identical to applying
    /// that event unbatched.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn end_batch(&mut self) {
        assert!(self.batched, "no batch open");
        self.batched = false;
        if std::mem::take(&mut self.batch_dirty) {
            self.refresh_oracle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_model::LoadAssignment;
    use ww_topology::paper;

    fn converge(scenario: &ww_topology::paper::Scenario, rounds: usize) -> RateWave {
        let mut w = RateWave::new(&scenario.tree, &scenario.spontaneous, WaveConfig::default());
        w.run(rounds);
        w
    }

    #[test]
    fn fig2a_converges_to_gle() {
        let s = paper::fig2a();
        let w = converge(&s, 2000);
        assert!(
            w.distance_to_tlb() < 1e-6,
            "distance {}",
            w.distance_to_tlb()
        );
        for &l in w.load().as_slice() {
            assert!((l - 20.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fig2b_converges_to_non_gle_tlb() {
        let s = paper::fig2b();
        let w = converge(&s, 3000);
        assert!(
            w.distance_to_tlb() < 1e-6,
            "distance {}",
            w.distance_to_tlb()
        );
        for (got, want) in w
            .load()
            .as_slice()
            .iter()
            .zip(paper::fig2b_tlb().as_slice())
        {
            assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn fig4_and_fig6_converge() {
        for s in [paper::fig4(), paper::fig6()] {
            let w = converge(&s, 5000);
            assert!(
                w.distance_to_tlb() < 1e-6,
                "{}: distance {}",
                s.name,
                w.distance_to_tlb()
            );
        }
    }

    #[test]
    fn every_round_is_feasible() {
        let s = paper::fig6();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        for _ in 0..200 {
            w.step();
            let a = LoadAssignment::new(&s.tree, &s.spontaneous, w.load().clone()).unwrap();
            assert!(
                a.check_feasible(1e-6).is_ok(),
                "round {} infeasible",
                w.round()
            );
        }
    }

    #[test]
    fn total_served_equals_demand_every_round() {
        let s = paper::fig4();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        for _ in 0..100 {
            w.step();
            assert!((w.load().total() - s.total_demand()).abs() < 1e-6);
        }
    }

    #[test]
    fn distance_trace_decays_roughly_geometrically() {
        let s = paper::fig6();
        let w = converge(&s, 400);
        let fit = w.trace().fit_gamma(1e-9).unwrap();
        assert!(fit.gamma > 0.0 && fit.gamma < 1.0, "gamma {}", fit.gamma);
    }

    #[test]
    fn stale_gossip_still_converges() {
        let s = paper::fig6();
        let cfg = WaveConfig {
            alpha: None,
            staleness: 3,
        };
        let mut w = RateWave::new(&s.tree, &s.spontaneous, cfg);
        w.run(8000);
        assert!(
            w.distance_to_tlb() < 1e-4,
            "distance {}",
            w.distance_to_tlb()
        );
    }

    #[test]
    fn staleness_slows_convergence() {
        let s = paper::fig6();
        let rounds_to = |staleness: usize| {
            let cfg = WaveConfig {
                alpha: None,
                staleness,
            };
            let mut w = RateWave::new(&s.tree, &s.spontaneous, cfg);
            w.run_until(0.5, 20_000)
        };
        assert!(rounds_to(5) > rounds_to(0));
    }

    #[test]
    fn custom_alpha_and_accessors() {
        let s = paper::fig2a();
        let cfg = WaveConfig {
            alpha: Some(0.1),
            staleness: 0,
        };
        let w = RateWave::new(&s.tree, &s.spontaneous, cfg);
        assert_eq!(w.alpha(), 0.1);
        assert_eq!(w.round(), 0);
        assert_eq!(w.trace().len(), 1); // initial distance recorded
    }

    #[test]
    fn warm_start_from_feasible_assignment() {
        let s = paper::fig2b();
        let w = RateWave::with_initial(
            &s.tree,
            &s.spontaneous,
            paper::fig2b_tlb(),
            WaveConfig::default(),
        );
        // Starting at TLB: already converged, and stays there.
        let mut w = w;
        w.run(50);
        assert!(w.distance_to_tlb() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be feasible")]
    fn infeasible_warm_start_rejected() {
        let s = paper::fig2b();
        let gle = RateVector::uniform(5, 20.0); // violates NSS for fig2b
        let _ = RateWave::with_initial(&s.tree, &s.spontaneous, gle, WaveConfig::default());
    }

    #[test]
    fn root_only_tree_is_trivially_converged() {
        let tree = Tree::from_parents(&[None]).unwrap();
        let e = RateVector::from(vec![5.0]);
        let mut w = RateWave::new(&tree, &e, WaveConfig::default());
        w.run(10);
        assert_eq!(w.load().as_slice(), &[5.0]);
        assert!(w.distance_to_tlb() < 1e-12);
    }

    #[test]
    fn node_join_reconverges_to_the_grown_tlb() {
        let s = paper::fig6();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        w.run(2000);
        assert!(w.distance_to_tlb() < 1e-6);
        let id = w.add_leaf(NodeId::new(2), 40.0).unwrap();
        assert_eq!(id.index(), s.tree.len());
        // The shock moves the system off the (new) oracle...
        assert!(w.distance_to_tlb() > 1.0);
        assert!((w.load().total() - (s.total_demand() + 40.0)).abs() < 1e-6);
        // ...and diffusion recovers.
        w.run(3000);
        assert!(
            w.distance_to_tlb() < 1e-6,
            "distance {}",
            w.distance_to_tlb()
        );
    }

    #[test]
    fn node_leave_rehomes_demand_and_reconverges() {
        let s = paper::fig6();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        w.run(2000);
        let total = s.total_demand();
        let leaf = s
            .tree
            .nodes()
            .find(|&u| s.tree.is_leaf(u))
            .expect("a leaf exists");
        w.remove_leaf(leaf).unwrap();
        assert_eq!(w.load().len(), s.tree.len() - 1);
        // Demand conserved: the departed clients re-route upstream.
        assert!((w.load().total() - total).abs() < 1e-6);
        w.run(3000);
        assert!(
            w.distance_to_tlb() < 1e-6,
            "distance {}",
            w.distance_to_tlb()
        );
    }

    #[test]
    fn failed_link_freezes_the_edge_until_healed() {
        // Path 0-1-2, all demand at the far leaf.
        let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
        let e = RateVector::from(vec![0.0, 0.0, 90.0]);
        let mut w = RateWave::new(&tree, &e, WaveConfig::default());
        // Sever the 1-2 link before any balancing: node 2's demand flows
        // up (data plane), but no load diffuses back down to node 2.
        assert!(w.fail_link(NodeId::new(2)));
        w.run(4000);
        assert_eq!(w.load()[NodeId::new(2)], 0.0);
        // Nodes 0 and 1 still balance the 0-1 edge between themselves.
        assert!(w.load()[NodeId::new(1)] > 1.0);
        assert!(w.distance_to_tlb() > 1.0);
        // Healing restores full convergence to the 30/30/30 TLB.
        assert!(w.heal_link(NodeId::new(2)));
        w.run(4000);
        assert!(
            w.distance_to_tlb() < 1e-6,
            "distance {}",
            w.distance_to_tlb()
        );
    }

    #[test]
    fn churn_under_stale_gossip_still_recovers() {
        let s = paper::fig6();
        let cfg = WaveConfig {
            alpha: None,
            staleness: 2,
        };
        let mut w = RateWave::new(&s.tree, &s.spontaneous, cfg);
        w.run(100);
        w.add_leaf(NodeId::new(0), 25.0).unwrap();
        w.run(12000);
        assert!(
            w.distance_to_tlb() < 1e-4,
            "distance {}",
            w.distance_to_tlb()
        );
    }

    /// The BFS-permuted layout must agree with the tree structure: every
    /// position's children slice covers exactly its children.
    #[test]
    fn permuted_layout_preserves_forwarded_semantics() {
        let s = paper::fig6();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        w.run(50);
        // forwarded() must satisfy flow conservation against load().
        let a = LoadAssignment::new(&s.tree, &s.spontaneous, w.load().clone()).unwrap();
        for u in s.tree.nodes() {
            assert!(
                (a.forwarded()[u] - w.forwarded()[u]).abs() < 1e-9,
                "forwarded mismatch at {u}"
            );
        }
    }
}
