//! WebWave — the fully distributed diffusion protocol (paper, Figure 5),
//! at the rate level.
//!
//! This engine is the paper's own evaluation vehicle (Section 5.1): load is
//! a divisible rate, rounds are synchronous, and gossip is instantaneous by
//! default ("communication delay is negligible ... `L_ik = L_k`"); an
//! optional staleness parameter relaxes that assumption for the
//! asynchronous-gossip ablation. Every round each node `i`:
//!
//! * shifts load **to a child `j`** bounded by what that child forwards:
//!   `min{ A_j, alpha * (L_i - L_ij) }` — the no-sibling-sharing bound,
//! * shifts load **to its parent** freely (requests already flow up),
//! * and gossips its new load to its tree neighbors.
//!
//! The root serves everything that still reaches it (Constraint 1). The
//! per-round Euclidean distance to the WebFold (TLB) oracle is recorded,
//! reproducing Figure 6(b) and the `gamma` regression.

use crate::fold::webfold;
use std::collections::VecDeque;
use ww_model::{NodeId, RateVector, Tree};
use ww_stats::ConvergenceTrace;

/// Configuration of a rate-level WebWave run.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub struct WaveConfig {
    /// Diffusion parameter; `None` selects the safe default
    /// `1 / (max_tree_degree + 1)` (paper Figure 5, step 1:
    /// "other values of `alpha_i` are possible").
    pub alpha: Option<f64>,
    /// Gossip staleness in rounds: each node sees neighbor loads as of
    /// `staleness` rounds ago. `0` is the paper's instantaneous-exchange
    /// assumption.
    pub staleness: usize,
}


/// A rate-level WebWave simulation.
///
/// # Example
///
/// ```
/// use ww_topology::paper;
/// use ww_core::wave::{RateWave, WaveConfig};
///
/// let s = paper::fig6();
/// let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
/// wave.run(500);
/// // Converged to the TLB assignment computed by WebFold.
/// assert!(wave.distance_to_tlb() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct RateWave {
    tree: Tree,
    spontaneous: RateVector,
    load: RateVector,
    forwarded: RateVector,
    alpha: f64,
    staleness: usize,
    /// Load vectors of past rounds, oldest first; used for stale gossip.
    history: VecDeque<RateVector>,
    oracle: RateVector,
    trace: ConvergenceTrace,
    round: usize,
}

impl RateWave {
    /// Starts a run from the *cold* state: no cache copies exist, so the
    /// home server serves the entire demand.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against `tree`, or if a
    /// provided `alpha` is outside `(0, 1)`.
    pub fn new(tree: &Tree, spontaneous: &RateVector, config: WaveConfig) -> Self {
        let mut initial = RateVector::zeros(tree.len());
        initial[tree.root()] = spontaneous.total();
        Self::with_initial(tree, spontaneous, initial, config)
    }

    /// Starts a run from an explicit initial served-rate vector, which
    /// must be feasible (NSS + root constraint).
    ///
    /// # Panics
    ///
    /// Panics if vectors do not validate against `tree`, if the initial
    /// assignment is infeasible, or if `alpha` is outside `(0, 1)`.
    pub fn with_initial(
        tree: &Tree,
        spontaneous: &RateVector,
        initial: RateVector,
        config: WaveConfig,
    ) -> Self {
        spontaneous
            .validate_for(tree)
            .expect("spontaneous rates must match the tree");
        let assignment =
            ww_model::LoadAssignment::new(tree, spontaneous, initial.clone())
                .expect("initial load must match the tree");
        assert!(
            assignment.check_feasible(1e-6).is_ok(),
            "initial load assignment must be feasible"
        );
        let max_deg = tree
            .nodes()
            .map(|u| tree.children(u).len() + usize::from(tree.parent(u).is_some()))
            .max()
            .unwrap_or(0)
            .max(1); // a single-node tree has no edges; any alpha works
        let alpha = config.alpha.unwrap_or(1.0 / (max_deg as f64 + 1.0));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        let oracle = webfold(tree, spontaneous).into_load();
        let forwarded = assignment.forwarded().clone();
        let mut trace = ConvergenceTrace::new();
        trace.push(initial.euclidean_distance(&oracle));
        RateWave {
            tree: tree.clone(),
            spontaneous: spontaneous.clone(),
            load: initial,
            forwarded,
            alpha,
            staleness: config.staleness,
            history: VecDeque::new(),
            oracle,
            trace,
            round: 0,
        }
    }

    /// The estimate a node has of loads this round: the load vector from
    /// `staleness` rounds ago (or the oldest available early on).
    fn estimates(&self) -> &RateVector {
        if self.staleness == 0 || self.history.is_empty() {
            &self.load
        } else {
            // history holds up to `staleness` past vectors, oldest first.
            &self.history[0]
        }
    }

    /// Executes one synchronous WebWave round (Figure 5, steps 2.1-2.4).
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.tree.len();
        let est = self.estimates().clone();
        let mut next = self.load.clone();

        // Per-edge net transfers, computed once per (parent, child) pair.
        for c_idx in 0..n {
            let c = NodeId::new(c_idx);
            let Some(p) = self.tree.parent(c) else { continue };
            // Parent pushes down, bounded by the child's forwarded rate
            // (NSS: a child can only absorb load its own subtree emits).
            let down = if self.load[p] > est[c] {
                (self.alpha * (self.load[p] - est[c])).min(self.forwarded[c])
            } else {
                0.0
            };
            // Child pushes up freely (requests already travel upward),
            // bounded by its own current load.
            let up = if self.load[c] > est[p] {
                (self.alpha * (self.load[c] - est[p])).min(self.load[c])
            } else {
                0.0
            };
            let net = down - up;
            next[p] -= net;
            next[c] += net;
        }

        // Repair pass: re-impose flow feasibility bottom-up. A node may
        // not serve more than flows through it; surplus climbs toward the
        // root, which absorbs everything that remains (Constraint 1).
        let mut forwarded = RateVector::zeros(n);
        for u in self.tree.bottom_up() {
            let mut through = self.spontaneous[u];
            for &ch in self.tree.children(u) {
                through += forwarded[ch];
            }
            if self.tree.parent(u).is_none() {
                next[u] = through;
                forwarded[u] = 0.0;
            } else {
                // Clamp to [0, through]: a node cannot serve a negative
                // rate nor more than flows through it. Whatever it cannot
                // serve stays in the stream and is absorbed upstream
                // (ultimately by the root), so totals are conserved.
                next[u] = next[u].clamp(0.0, through);
                forwarded[u] = through - next[u];
            }
        }

        // Gossip (step 2.4): append the *previous* load to the history so
        // estimates lag by `staleness` rounds.
        if self.staleness > 0 {
            self.history.push_back(self.load.clone());
            while self.history.len() > self.staleness {
                self.history.pop_front();
            }
        }

        self.load = next;
        self.forwarded = forwarded;
        self.trace.push(self.load.euclidean_distance(&self.oracle));
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Runs until the distance to TLB drops to `threshold` or the round
    /// cap is reached; returns the rounds taken by this call.
    pub fn run_until(&mut self, threshold: f64, max_rounds: usize) -> usize {
        let mut taken = 0;
        while self.distance_to_tlb() > threshold && taken < max_rounds {
            self.step();
            taken += 1;
        }
        taken
    }

    /// Current served-rate vector `L`.
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// Current forwarded-rate vector `A`.
    pub fn forwarded(&self) -> &RateVector {
        &self.forwarded
    }

    /// The TLB oracle (WebFold output) this run converges toward.
    pub fn oracle(&self) -> &RateVector {
        &self.oracle
    }

    /// Euclidean distance from the current loads to the TLB oracle — the
    /// paper's convergence metric.
    pub fn distance_to_tlb(&self) -> f64 {
        self.load.euclidean_distance(&self.oracle)
    }

    /// The per-round distance trace (index = round).
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The effective diffusion parameter in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Changes the spontaneous demand mid-run — the "erratic request
    /// rates" regime of the paper's future work (Section 5.1/7).
    ///
    /// The TLB oracle is recomputed for the new demand, and the current
    /// load vector is re-projected onto the new feasible region (clamped
    /// to the new through rates; the root absorbs the residual), exactly
    /// as the running protocol would experience a demand shift.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against the tree.
    pub fn set_spontaneous(&mut self, spontaneous: &RateVector) {
        spontaneous
            .validate_for(&self.tree)
            .expect("spontaneous rates must match the tree");
        self.spontaneous = spontaneous.clone();
        self.oracle = webfold(&self.tree, spontaneous).into_load();
        // Re-impose feasibility under the new flows.
        let n = self.tree.len();
        let mut forwarded = RateVector::zeros(n);
        let mut next = self.load.clone();
        for u in self.tree.bottom_up() {
            let mut through = self.spontaneous[u];
            for &ch in self.tree.children(u) {
                through += forwarded[ch];
            }
            if self.tree.parent(u).is_none() {
                next[u] = through;
                forwarded[u] = 0.0;
            } else {
                next[u] = next[u].clamp(0.0, through);
                forwarded[u] = through - next[u];
            }
        }
        self.load = next;
        self.forwarded = forwarded;
        // Old gossip describes the old regime; drop it.
        self.history.clear();
        self.trace.push(self.load.euclidean_distance(&self.oracle));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_model::LoadAssignment;
    use ww_topology::paper;

    fn converge(scenario: &ww_topology::paper::Scenario, rounds: usize) -> RateWave {
        let mut w = RateWave::new(&scenario.tree, &scenario.spontaneous, WaveConfig::default());
        w.run(rounds);
        w
    }

    #[test]
    fn fig2a_converges_to_gle() {
        let s = paper::fig2a();
        let w = converge(&s, 2000);
        assert!(w.distance_to_tlb() < 1e-6, "distance {}", w.distance_to_tlb());
        for &l in w.load().as_slice() {
            assert!((l - 20.0).abs() < 1e-6);
        }
    }

    #[test]
    fn fig2b_converges_to_non_gle_tlb() {
        let s = paper::fig2b();
        let w = converge(&s, 3000);
        assert!(w.distance_to_tlb() < 1e-6, "distance {}", w.distance_to_tlb());
        for (got, want) in w.load().as_slice().iter().zip(paper::fig2b_tlb().as_slice()) {
            assert!((got - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn fig4_and_fig6_converge() {
        for s in [paper::fig4(), paper::fig6()] {
            let w = converge(&s, 5000);
            assert!(
                w.distance_to_tlb() < 1e-6,
                "{}: distance {}",
                s.name,
                w.distance_to_tlb()
            );
        }
    }

    #[test]
    fn every_round_is_feasible() {
        let s = paper::fig6();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        for _ in 0..200 {
            w.step();
            let a = LoadAssignment::new(&s.tree, &s.spontaneous, w.load().clone()).unwrap();
            assert!(a.check_feasible(1e-6).is_ok(), "round {} infeasible", w.round());
        }
    }

    #[test]
    fn total_served_equals_demand_every_round() {
        let s = paper::fig4();
        let mut w = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        for _ in 0..100 {
            w.step();
            assert!((w.load().total() - s.total_demand()).abs() < 1e-6);
        }
    }

    #[test]
    fn distance_trace_decays_roughly_geometrically() {
        let s = paper::fig6();
        let w = converge(&s, 400);
        let fit = w.trace().fit_gamma(1e-9).unwrap();
        assert!(fit.gamma > 0.0 && fit.gamma < 1.0, "gamma {}", fit.gamma);
    }

    #[test]
    fn stale_gossip_still_converges() {
        let s = paper::fig6();
        let cfg = WaveConfig {
            alpha: None,
            staleness: 3,
        };
        let mut w = RateWave::new(&s.tree, &s.spontaneous, cfg);
        w.run(8000);
        assert!(w.distance_to_tlb() < 1e-4, "distance {}", w.distance_to_tlb());
    }

    #[test]
    fn staleness_slows_convergence() {
        let s = paper::fig6();
        let rounds_to = |staleness: usize| {
            let cfg = WaveConfig { alpha: None, staleness };
            let mut w = RateWave::new(&s.tree, &s.spontaneous, cfg);
            w.run_until(0.5, 20_000)
        };
        assert!(rounds_to(5) > rounds_to(0));
    }

    #[test]
    fn custom_alpha_and_accessors() {
        let s = paper::fig2a();
        let cfg = WaveConfig {
            alpha: Some(0.1),
            staleness: 0,
        };
        let w = RateWave::new(&s.tree, &s.spontaneous, cfg);
        assert_eq!(w.alpha(), 0.1);
        assert_eq!(w.round(), 0);
        assert_eq!(w.trace().len(), 1); // initial distance recorded
    }

    #[test]
    fn warm_start_from_feasible_assignment() {
        let s = paper::fig2b();
        let w = RateWave::with_initial(
            &s.tree,
            &s.spontaneous,
            paper::fig2b_tlb(),
            WaveConfig::default(),
        );
        // Starting at TLB: already converged, and stays there.
        let mut w = w;
        w.run(50);
        assert!(w.distance_to_tlb() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be feasible")]
    fn infeasible_warm_start_rejected() {
        let s = paper::fig2b();
        let gle = RateVector::uniform(5, 20.0); // violates NSS for fig2b
        let _ = RateWave::with_initial(&s.tree, &s.spontaneous, gle, WaveConfig::default());
    }

    #[test]
    fn root_only_tree_is_trivially_converged() {
        let tree = Tree::from_parents(&[None]).unwrap();
        let e = RateVector::from(vec![5.0]);
        let mut w = RateWave::new(&tree, &e, WaveConfig::default());
        w.run(10);
        assert_eq!(w.load().as_slice(), &[5.0]);
        assert!(w.distance_to_tlb() < 1e-12);
    }
}
