//! # ww-core — WebWave: tree load balance, WebFold, and the WebWave protocol
//!
//! This crate is the paper's primary contribution, in code:
//!
//! * [`tlb`] — formal definitions of **Tree Load Balance** (Definitions
//!   1-2), Constraints 1 (root forwards nothing) and 2 (*no sibling
//!   sharing*), plus checkers for every lemma,
//! * [`fold`] — **WebFold**, the provably optimal off-line algorithm that
//!   computes the TLB assignment by folding the routing tree (Figure 3),
//! * [`wave`] — **WebWave**, the fully distributed diffusion protocol at
//!   the paper's rate level (Figure 5), converging to TLB,
//! * [`docsim`] — the document-level engine with cache copies, *potential
//!   barriers* and **tunneling** (Section 5.2, Figure 7),
//! * [`packetsim`] — the packet-level event-driven system: Poisson request
//!   streams, routers with injected filters, gossip and diffusion timers.
//!
//! # Quickstart
//!
//! ```
//! use ww_topology::paper;
//! use ww_core::fold::webfold;
//! use ww_core::wave::{RateWave, WaveConfig};
//!
//! // Off-line optimum.
//! let s = paper::fig2b();
//! let tlb = webfold(&s.tree, &s.spontaneous);
//! assert_eq!(tlb.load().as_slice(), &[30.0, 30.0, 5.0, 30.0, 5.0]);
//!
//! // The distributed protocol converges to it using local information only.
//! let mut wave = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
//! wave.run(2000);
//! assert!(wave.distance_to_tlb() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docsim;
pub mod fold;
pub mod packet;
pub mod packetsim;
pub mod reference;
pub mod throughput;
pub mod tlb;
pub mod tracking;
pub mod wave;

pub use docsim::{DocSim, DocSimConfig, DocSimStats};
pub use fold::{webfold, webfold_with_order, FoldEvent, FoldOrder, FoldedTree};
pub use packetsim::{GenericPacketSim, HeapPacketSim, PacketSim, PacketSimConfig, PacketSimReport};
pub use throughput::{
    capacity_sweep, saturation_capacity, throughput_at_capacity, ThroughputReport,
};
pub use tlb::{
    check_feasibility, check_monotone_non_increasing, check_zero_interfold_flow, gle_feasible,
    is_tlb, potential_barrier_nodes, random_feasible_assignment, tlb_report, Feasibility,
    TlbReport, DEFAULT_TOL,
};
pub use tracking::{reconvergence_after_step, track, TrackingConfig, TrackingResult};
pub use wave::{RateWave, WaveConfig};
