//! WebWave under *erratic request rates* — the paper's announced
//! follow-up study ("the dynamics of WebWave under erratic request rates
//! is the subject of an ongoing simulation study", Section 5.1).
//!
//! [`track`] drives a [`RateWave`] while the spontaneous demand evolves
//! under any [`RateProcess`] (step changes, diurnal drift, random walks,
//! from `ww-workload`), re-deriving the TLB oracle each epoch and
//! recording how closely the protocol *tracks* the moving optimum.

use crate::wave::{RateWave, WaveConfig};
use ww_model::{RateVector, Tree};
use ww_workload::RateProcess;

/// Configuration of a tracking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingConfig {
    /// Protocol rounds executed per epoch (between demand re-samples).
    pub rounds_per_epoch: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Wall-clock seconds of simulated time per epoch (the argument fed
    /// to the rate process).
    pub epoch_secs: f64,
    /// Underlying protocol configuration.
    pub wave: WaveConfig,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig {
            rounds_per_epoch: 50,
            epochs: 40,
            epoch_secs: 1.0,
            wave: WaveConfig::default(),
        }
    }
}

/// Outcome of a tracking run.
#[derive(Debug, Clone)]
pub struct TrackingResult {
    /// Distance to the *current* TLB oracle at the end of each epoch.
    pub epoch_errors: Vec<f64>,
    /// The same errors normalized by each epoch's total demand.
    pub relative_errors: Vec<f64>,
    /// Mean relative error across epochs (the headline tracking metric).
    pub mean_relative_error: f64,
    /// Worst relative error across epochs.
    pub max_relative_error: f64,
}

/// Runs WebWave against time-varying demand and measures tracking error.
///
/// Each epoch: sample the demand process at the epoch's start time,
/// re-target the protocol (recomputing the TLB oracle), run
/// `rounds_per_epoch` protocol rounds, then record the distance to the
/// current oracle.
///
/// # Panics
///
/// Panics if the process produces rate vectors that do not validate
/// against `tree`, or if `epochs == 0`.
pub fn track<P: RateProcess>(
    tree: &Tree,
    process: &mut P,
    config: TrackingConfig,
) -> TrackingResult {
    assert!(config.epochs > 0, "need at least one epoch");
    let initial = process.rates_at(0.0);
    let mut wave = RateWave::new(tree, &initial, config.wave);
    let mut epoch_errors = Vec::with_capacity(config.epochs);
    let mut relative_errors = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let t = epoch as f64 * config.epoch_secs;
        let rates = process.rates_at(t);
        wave.set_spontaneous(&rates);
        wave.run(config.rounds_per_epoch);
        let err = wave.distance_to_tlb();
        epoch_errors.push(err);
        let total = rates.total().max(1e-12);
        relative_errors.push(err / total);
    }
    let mean_relative_error = relative_errors.iter().sum::<f64>() / relative_errors.len() as f64;
    let max_relative_error = relative_errors
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    TrackingResult {
        epoch_errors,
        relative_errors,
        mean_relative_error,
        max_relative_error,
    }
}

/// Convenience: measure how many rounds WebWave needs to re-converge
/// after a single step change in demand (the simplest erratic regime).
///
/// Returns `(rounds_to_threshold, residual_distance)`.
///
/// # Panics
///
/// Panics if the vectors do not validate against `tree`.
pub fn reconvergence_after_step(
    tree: &Tree,
    before: &RateVector,
    after: &RateVector,
    threshold_fraction: f64,
    max_rounds: usize,
) -> (usize, f64) {
    let mut wave = RateWave::new(tree, before, WaveConfig::default());
    wave.run_until(threshold_fraction * before.total(), max_rounds);
    wave.set_spontaneous(after);
    let rounds = wave.run_until(threshold_fraction * after.total(), max_rounds);
    (rounds, wave.distance_to_tlb())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_topology::paper;
    use ww_workload::{ConstantRates, DiurnalDrift, StepChange};

    #[test]
    fn constant_demand_tracks_perfectly() {
        let s = paper::fig6();
        let mut process = ConstantRates::new(s.spontaneous.clone());
        let result = track(
            &s.tree,
            &mut process,
            TrackingConfig {
                rounds_per_epoch: 200,
                epochs: 10,
                ..TrackingConfig::default()
            },
        );
        // After the first few epochs the error is essentially zero.
        assert!(result.epoch_errors[9] < 1e-6);
        assert!(result.mean_relative_error < 0.2);
    }

    #[test]
    fn step_change_recovers_quickly() {
        let s = paper::fig2b();
        let flipped = RateVector::from(vec![0.0, 0.0, 0.0, 10.0, 90.0]);
        let (rounds, residual) =
            reconvergence_after_step(&s.tree, &s.spontaneous, &flipped, 0.001, 50_000);
        assert!(rounds < 50_000, "never reconverged");
        assert!(residual <= 0.001 * flipped.total() + 1e-9);
    }

    #[test]
    fn step_process_tracking_error_spikes_then_decays() {
        let s = paper::fig2b();
        let flipped = RateVector::from(vec![0.0, 0.0, 0.0, 10.0, 90.0]);
        let mut process = StepChange::new(s.spontaneous.clone(), flipped, 10.0);
        let result = track(
            &s.tree,
            &mut process,
            TrackingConfig {
                rounds_per_epoch: 30,
                epochs: 40,
                epoch_secs: 1.0,
                wave: WaveConfig::default(),
            },
        );
        // Error right after the flip (only 30 rounds in) exceeds the
        // settled error 30 epochs later.
        let spike = result.epoch_errors[10];
        let settled = result.epoch_errors[39];
        assert!(
            settled < spike * 0.2,
            "settled {settled} should be well below spike {spike}"
        );
    }

    #[test]
    fn drift_is_tracked_within_a_bounded_error() {
        let s = paper::fig6();
        let mut process = DiurnalDrift::new(s.spontaneous.clone(), 0.3, 40.0);
        let result = track(
            &s.tree,
            &mut process,
            TrackingConfig {
                rounds_per_epoch: 120,
                epochs: 40,
                epoch_secs: 1.0,
                wave: WaveConfig::default(),
            },
        );
        assert!(
            result.mean_relative_error < 0.05,
            "mean relative error {}",
            result.mean_relative_error
        );
        assert!(result.max_relative_error < 0.5);
    }

    #[test]
    fn faster_diffusion_tracks_drift_better() {
        let s = paper::fig6();
        let run = |rounds_per_epoch: usize| {
            let mut process = DiurnalDrift::new(s.spontaneous.clone(), 0.4, 40.0);
            track(
                &s.tree,
                &mut process,
                TrackingConfig {
                    rounds_per_epoch,
                    epochs: 40,
                    epoch_secs: 1.0,
                    wave: WaveConfig::default(),
                },
            )
            .mean_relative_error
        };
        let slow = run(5);
        let fast = run(100);
        assert!(
            fast < slow,
            "more rounds per epoch must track better: fast {fast} vs slow {slow}"
        );
    }
}
