//! Document-level WebWave: cache copies, potential barriers, tunneling.
//!
//! The rate-level engine ([`crate::wave`]) treats load as a fungible
//! fluid. Real WebWave load is *per document*: a node can only pick up
//! load for a document it holds a copy of, and a parent can only delegate
//! load for documents it serves. That granularity creates the *potential
//! barrier* of Section 5.2 — a loaded node `j` whose underloaded child `k`
//! requests only documents `j` does not cache, so diffusion stalls — and
//! its cure, **tunneling**: after remaining underloaded for more than two
//! periods with no action from the parent, `k` requests hot documents
//! directly from across the barrier and caches them.
//!
//! This engine reproduces Figure 7 exactly: without tunneling the system
//! stalls off-TLB; with tunneling every node converges to 90 req/s.
//!
//! # Performance
//!
//! All per-(node, document) state — demand, serve allocations, served and
//! forwarded flows — lives in flat `Vec<f64>` slabs addressed as
//! `node * doc_count + doc_index`, with dense indices assigned by a
//! [`DocTable`]; per-node copy sets are [`DocSet`] bitsets. Rounds reuse
//! preallocated scratch buffers, so the steady state allocates nothing but
//! the (amortized) trace. Decisions are computed in ascending dense-index
//! order, which equals ascending [`DocId`] order, so results are
//! deterministic and bit-identical to the hash-table reference engine
//! ([`crate::reference::NaiveDocSim`]) — the golden-trace tests assert
//! exactly that.

use crate::fold::IncrementalFold;
use ww_cache::{plan_push_dense, plan_shed_dense, DenseRateSlice};
use ww_diffusion::safe_alpha;
use ww_model::{DocId, DocSet, DocTable, LeafRemoval, ModelError, NodeId, RateVector, Tree};
use ww_stats::ConvergenceTrace;
use ww_workload::DocMix;

/// Configuration of a document-level WebWave run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocSimConfig {
    /// Diffusion parameter; `None` selects `1 / (max_degree + 1)`.
    pub alpha: Option<f64>,
    /// Enable tunneling across potential barriers (Section 5.2).
    pub tunneling: bool,
    /// How many consecutive underloaded-with-no-action periods a node
    /// tolerates before tunneling. The paper uses "more than two periods".
    pub barrier_patience: usize,
}

impl Default for DocSimConfig {
    fn default() -> Self {
        DocSimConfig {
            alpha: None,
            tunneling: true,
            barrier_patience: 2,
        }
    }
}

/// Counters describing protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DocSimStats {
    /// Cache copies pushed from a parent to a child.
    pub copy_pushes: u64,
    /// Cache copies deleted after their load was fully shed upward.
    pub copy_deletions: u64,
    /// Documents fetched via tunneling.
    pub tunnel_fetches: u64,
    /// Rounds in which some node suspected a barrier.
    pub barrier_suspicions: u64,
}

/// A document-level WebWave simulation over dense per-document slabs.
///
/// # Example
///
/// ```
/// use ww_topology::paper;
/// use ww_core::docsim::{DocSim, DocSimConfig};
///
/// let b = paper::fig7();
/// let mut sim = DocSim::from_barrier_scenario(&b, DocSimConfig::default());
/// sim.run(600);
/// // With tunneling, every node converges to the TLB rate of 90 req/s.
/// assert!(sim.distance_to_tlb() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DocSim {
    tree: Tree,
    /// Dense index <-> id bijection over the fixed document universe.
    table: DocTable,
    /// Document universe size (slab row width).
    m: usize,
    /// Spontaneous demand per (node, doc): `demand[i * m + k]`.
    demand: Vec<f64>,
    /// Which documents each node holds a copy of (root holds all).
    copies: Vec<DocSet>,
    /// Desired serve rate per (node, doc); root has no allocations (it
    /// absorbs everything that reaches it).
    alloc: Vec<f64>,
    /// Served rates per (node, doc) from the latest flow computation.
    served: Vec<f64>,
    /// Forwarded rate per (node, doc) from the latest flow computation.
    forwarded: Vec<f64>,
    /// Aggregate served rate per node.
    load: RateVector,
    /// Snapshot of `load` at the start of the round (double buffer).
    load_snapshot: RateVector,
    alpha: f64,
    config: DocSimConfig,
    /// Consecutive underloaded-no-action periods per node.
    underload_streak: Vec<usize>,
    /// Per node: `true` when the control link to its parent is failed —
    /// no diffusion decisions, copy pushes, or tunneling cross the edge
    /// (requests still flow; see the dynamics docs).
    failed_up: Vec<bool>,
    oracle: RateVector,
    /// Summary cache behind `oracle`: churn re-folds only the touched
    /// root paths instead of sweeping the whole tree.
    fold: IncrementalFold,
    /// `true` between [`DocSim::begin_batch`] and [`DocSim::end_batch`]:
    /// oracle/flow refreshes and the per-event trace sample are deferred
    /// to the batch commit.
    batched: bool,
    /// Whether a batched barrier deferred at least one refresh.
    batch_dirty: bool,
    trace: ConvergenceTrace,
    stats: DocSimStats,
    round: usize,
    /// Reusable scratch: candidate (index, rate) lists.
    cand_buf: Vec<(u32, f64)>,
    /// Reusable scratch: plan sorting buffer.
    sort_buf: Vec<(u32, f64)>,
    /// Reusable scratch: planned slices.
    plan_buf: Vec<DenseRateSlice>,
}

impl DocSim {
    /// Builds a simulation from a tree and per-node document demand.
    ///
    /// The root (home server) initially holds every document; no other
    /// copies exist, so the home server starts serving the entire demand.
    ///
    /// # Panics
    ///
    /// Panics if `mix` does not cover `tree`, or `alpha` is outside
    /// `(0, 1)`.
    pub fn new(tree: &Tree, mix: &DocMix, config: DocSimConfig) -> Self {
        assert_eq!(mix.len(), tree.len(), "doc mix must cover the tree");
        let n = tree.len();
        let table = DocTable::from_ids(mix.documents());
        let m = table.len();
        let mut demand = vec![0.0; n * m];
        for u in tree.nodes() {
            for &(d, r) in mix.demands_of(u) {
                if r > 0.0 {
                    let k = table.index_of(d).expect("demand doc in universe") as usize;
                    demand[u.index() * m + k] = r;
                }
            }
        }
        let mut copies: Vec<DocSet> = (0..n).map(|_| table.empty_set()).collect();
        copies[tree.root().index()] = table.full_set();

        let alpha = config.alpha.unwrap_or_else(|| safe_alpha(tree));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");

        let spontaneous = mix.spontaneous();
        let mut fold = IncrementalFold::new(tree, &spontaneous);
        let oracle = fold.refold_path(tree, &spontaneous).into_load();

        let mut sim = DocSim {
            tree: tree.clone(),
            table,
            m,
            demand,
            copies,
            alloc: vec![0.0; n * m],
            served: vec![0.0; n * m],
            forwarded: vec![0.0; n * m],
            load: RateVector::zeros(n),
            load_snapshot: RateVector::zeros(n),
            alpha,
            config,
            underload_streak: vec![0; n],
            failed_up: vec![false; n],
            oracle,
            fold,
            batched: false,
            batch_dirty: false,
            trace: ConvergenceTrace::new(),
            stats: DocSimStats::default(),
            round: 0,
            cand_buf: Vec::with_capacity(m),
            sort_buf: Vec::with_capacity(m),
            plan_buf: Vec::with_capacity(m),
        };
        sim.recompute_flows();
        sim.trace.push(sim.distance_to_tlb());
        sim
    }

    /// Builds the Figure 7 barrier scenario directly.
    pub fn from_barrier_scenario(
        scenario: &ww_topology::paper::BarrierScenario,
        config: DocSimConfig,
    ) -> Self {
        let mut mix = DocMix::new(scenario.tree.len());
        for d in &scenario.demands {
            mix.set(d.origin, d.doc, d.rate);
        }
        DocSim::new(&scenario.tree, &mix, config)
    }

    #[inline]
    fn cell(&self, node: usize, k: u32) -> usize {
        node * self.m + k as usize
    }

    /// Recomputes per-document flows bottom-up from current allocations:
    /// `served_i(d) = min(alloc_i(d), through_i(d))` for non-root nodes
    /// holding a copy, and the root serves everything that reaches it.
    ///
    /// Documents iterate in ascending dense-index (= ascending id) order,
    /// so per-node load accumulates in a fixed deterministic order.
    fn recompute_flows(&mut self) {
        let m = self.m;
        self.served.fill(0.0);
        self.forwarded.fill(0.0);
        self.load.fill(0.0);
        for k in 0..m as u32 {
            for u in self.tree.bottom_up() {
                let i = u.index();
                let cell = i * m + k as usize;
                let mut through = self.demand[cell];
                for &c in self.tree.children(u) {
                    through += self.forwarded[c.index() * m + k as usize];
                }
                if through <= 0.0 {
                    continue;
                }
                let served = if self.tree.parent(u).is_none() {
                    through
                } else if self.copies[i].contains(k) {
                    self.alloc[cell].min(through)
                } else {
                    0.0
                };
                if served > 0.0 {
                    self.served[cell] = served;
                    self.load[u] += served;
                }
                let fwd = through - served;
                if fwd > 0.0 {
                    self.forwarded[cell] = fwd;
                }
            }
        }
    }

    /// Executes one protocol round: diffusion decisions against current
    /// loads, copy pushes, shedding, barrier detection and (optionally)
    /// tunneling, then a flow recomputation.
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.tree.len();

        // Decisions are made against the loads at the start of the round
        // (synchronous gossip), applied to allocations, then flows are
        // recomputed once. The snapshot buffer is reused every round.
        self.load_snapshot.copy_from(&self.load);

        for c_idx in 0..n {
            let c = NodeId::new(c_idx);
            let Some(p) = self.tree.parent(c) else {
                continue;
            };
            if self.failed_up[c_idx] {
                // The control link is down: no diffusion decision, copy
                // push, shed, or tunnel crosses this edge (requests still
                // flow through it and are served upstream).
                continue;
            }
            let (lp, lc) = (self.load_snapshot[p], self.load_snapshot[c]);
            if lp > lc {
                // The child is underloaded: it should take over
                // `alpha * (L_p - L_c)` of the load passing through it.
                let want = self.alpha * (lp - lc);
                let taken = self.child_take(c, want);
                let remaining = want - taken;
                let pushed = if remaining > 1e-12 {
                    self.parent_push(p, c, remaining)
                } else {
                    0.0
                };
                if taken + pushed <= 1e-9 && self.forwarded_total(c) > 1e-9 {
                    // Underloaded, forwarding real demand, and no load
                    // moved: the parent may be a potential barrier.
                    self.underload_streak[c_idx] += 1;
                    self.stats.barrier_suspicions += 1;
                    if self.config.tunneling
                        && self.underload_streak[c_idx] > self.config.barrier_patience
                    {
                        self.tunnel(c, want);
                        self.underload_streak[c_idx] = 0;
                    }
                } else {
                    self.underload_streak[c_idx] = 0;
                }
            } else if lc > lp {
                // The child is overloaded relative to its parent: shed
                // load upward by reducing its own serve allocations.
                let shed = self.alpha * (lc - lp);
                self.child_shed(c, shed);
                self.underload_streak[c_idx] = 0;
            } else {
                self.underload_streak[c_idx] = 0;
            }
        }

        self.recompute_flows();
        self.trace.push(self.distance_to_tlb());
    }

    /// The child unilaterally raises allocations on documents it already
    /// holds, bounded by what still flows past it. Returns the rate taken.
    fn child_take(&mut self, c: NodeId, want: f64) -> f64 {
        let i = c.index();
        if want <= 0.0 {
            return 0.0;
        }
        // Candidate docs: held copies with nonzero passing (forwarded)
        // rate, hottest first with ascending-index (= ascending-id)
        // tie-break.
        let m = self.m;
        let cand = &mut self.cand_buf;
        cand.clear();
        for k in self.copies[i].iter() {
            let f = self.forwarded[i * m + k as usize];
            if f > 0.0 {
                cand.push((k, f));
            }
        }
        cand.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut taken = 0.0;
        for &(k, avail) in cand.iter() {
            if taken >= want {
                break;
            }
            let grab = avail.min(want - taken);
            self.alloc[i * m + k as usize] += grab;
            taken += grab;
        }
        taken
    }

    /// The parent delegates up to `target` req/s to child `c` by pushing
    /// copies of documents it *serves* and the child *forwards*. Returns
    /// the rate actually delegated.
    fn parent_push(&mut self, p: NodeId, c: NodeId, target: f64) -> f64 {
        let (pi, ci) = (p.index(), c.index());
        let m = self.m;
        // Pushable: docs the parent serves that the child forwards.
        let caps = &mut self.cand_buf;
        caps.clear();
        for k in 0..m {
            let sp = self.served[pi * m + k];
            if sp <= 0.0 {
                continue;
            }
            let fc = self.forwarded[ci * m + k];
            let cap = sp.min(fc);
            if cap > 0.0 {
                caps.push((k as u32, cap));
            }
        }
        plan_push_dense(caps, target, &mut self.sort_buf, &mut self.plan_buf);
        let mut pushed = 0.0;
        let parent_is_root = self.tree.parent(p).is_none();
        for slice in &self.plan_buf {
            let k = slice.index;
            if self.copies[ci].insert(k) {
                self.stats.copy_pushes += 1;
            }
            self.alloc[ci * m + k as usize] += slice.rate;
            if !parent_is_root {
                // The root's service is implicit (it absorbs the stream);
                // other parents explicitly give up allocation.
                let a = &mut self.alloc[pi * m + k as usize];
                *a = (*a - slice.rate).max(0.0);
            }
            pushed += slice.rate;
        }
        pushed
    }

    /// The child reduces its serve allocations by `target` req/s, coldest
    /// documents first; the load climbs back toward the root. A copy whose
    /// allocation is shed entirely is *deleted* ("an imbalance in the
    /// opposite direction causes a child to delete some of its cached
    /// documents", Section 1) — unless this node is the document's origin
    /// of demand, where keeping the copy costs nothing and re-fetching
    /// would be immediate.
    fn child_shed(&mut self, c: NodeId, target: f64) {
        let i = c.index();
        let m = self.m;
        let served = &mut self.cand_buf;
        served.clear();
        for k in 0..m {
            let s = self.served[i * m + k];
            if s > 0.0 {
                served.push((k as u32, s));
            }
        }
        plan_shed_dense(served, target, &mut self.sort_buf, &mut self.plan_buf);
        for slice in &self.plan_buf {
            let k = slice.index;
            let a = &mut self.alloc[i * m + k as usize];
            *a = (*a - slice.rate).max(0.0);
            if slice.full && *a <= 1e-12 {
                *a = 0.0;
                self.copies[i].remove(k);
                self.stats.copy_deletions += 1;
            }
        }
    }

    /// Tunneling (Section 5.2): the stuck node requests the hottest
    /// document it forwards but does not hold, caches it, and starts
    /// serving it.
    fn tunnel(&mut self, c: NodeId, want: f64) {
        let i = c.index();
        let m = self.m;
        // Hottest forwarded-but-not-held document; ties break toward the
        // smaller index (= smaller id).
        let mut best: Option<(u32, f64)> = None;
        for k in 0..m as u32 {
            let f = self.forwarded[i * m + k as usize];
            if f <= 0.0 || self.copies[i].contains(k) {
                continue;
            }
            if best.is_none_or(|(_, br)| f > br) {
                best = Some((k, f));
            }
        }
        if let Some((k, avail)) = best {
            self.copies[i].insert(k);
            self.alloc[i * m + k as usize] += avail.min(want);
            self.stats.tunnel_fetches += 1;
        }
    }

    /// Sum of forwarded rates at `c`, accumulated in ascending index
    /// order.
    fn forwarded_total(&self, c: NodeId) -> f64 {
        let i = c.index();
        self.forwarded[i * self.m..(i + 1) * self.m].iter().sum()
    }

    /// Runs `rounds` protocol rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Current aggregate served-rate vector.
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// The TLB oracle for the aggregate demand.
    pub fn oracle(&self) -> &RateVector {
        &self.oracle
    }

    /// Euclidean distance from current loads to the TLB oracle.
    pub fn distance_to_tlb(&self) -> f64 {
        self.load.euclidean_distance(&self.oracle)
    }

    /// Per-round distance trace.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }

    /// Protocol activity counters.
    pub fn stats(&self) -> DocSimStats {
        self.stats
    }

    /// The dense document table of this simulation's universe.
    pub fn doc_table(&self) -> &DocTable {
        &self.table
    }

    /// Documents node `u` currently holds copies of, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn copies_at(&self, u: NodeId) -> Vec<DocId> {
        // Bitset iteration is ascending-index, i.e. already sorted by id.
        self.copies[u.index()]
            .iter()
            .map(|k| self.table.doc(k))
            .collect()
    }

    /// Served rate of document `d` at node `u` in the latest round.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn served_rate(&self, u: NodeId, d: DocId) -> f64 {
        match self.table.index_of(d) {
            Some(k) => self.served[self.cell(u.index(), k)],
            None => 0.0,
        }
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The routing tree this run currently operates on.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Whether the control link from `node` to its parent is failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn link_failed(&self, node: NodeId) -> bool {
        self.failed_up[node.index()]
    }

    /// Fails the control link between `node` and its parent: diffusion
    /// decisions, copy pushes, shedding, and tunneling stop crossing the
    /// edge until [`DocSim::heal_link`]; requests still flow up the tree.
    /// Returns `false` when the link was already failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn fail_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.tree.parent(node).is_some(),
            "the root has no uplink to fail"
        );
        !std::mem::replace(&mut self.failed_up[node.index()], true)
    }

    /// Restores the control link between `node` and its parent. Returns
    /// `false` when the link was not failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn heal_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.tree.parent(node).is_some(),
            "the root has no uplink to heal"
        );
        std::mem::replace(&mut self.failed_up[node.index()], false)
    }

    /// Publishes a document: `origin`'s clients start requesting `doc` at
    /// `rate` req/s (added on top of any existing demand for it). A
    /// first-time id grows the dense universe — every slab gains a column
    /// at the document's sorted position, higher indices shifting by one —
    /// and the home server (root) receives the only copy, so the new
    /// demand lands there and diffuses outward over subsequent rounds.
    /// The TLB oracle is recomputed and the post-publish distance is
    /// appended to the trace.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NodeOutOfRange`] for an unknown origin or
    /// [`ModelError::InvalidRate`] for a negative/non-finite rate.
    pub fn publish_doc(&mut self, doc: DocId, origin: NodeId, rate: f64) -> Result<(), ModelError> {
        let n = self.tree.len();
        if origin.index() >= n {
            return Err(ModelError::NodeOutOfRange {
                node: origin,
                len: n,
            });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(ModelError::InvalidRate {
                node: origin,
                value: rate,
            });
        }
        let k = self.grow_universe(doc);
        self.demand[origin.index() * self.m + k as usize] += rate;
        self.copies[self.tree.root().index()].insert(k);
        self.after_demand_change();
        Ok(())
    }

    /// Re-publishes (updates) a document: every cached copy outside the
    /// home server is *invalidated* — copies and their serve allocations
    /// vanish, the whole demand for `doc` snaps back to the root, and
    /// WebWave re-diffuses the new version over the following rounds.
    /// The demand and the oracle are unchanged (readers still want the
    /// document); only the placement resets.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownDocument`] when `doc` is not in the
    /// universe.
    pub fn invalidate_doc(&mut self, doc: DocId) -> Result<(), ModelError> {
        let Some(k) = self.table.index_of(doc) else {
            return Err(ModelError::UnknownDocument { doc: doc.value() });
        };
        let root = self.tree.root().index();
        for i in 0..self.tree.len() {
            if i == root {
                continue;
            }
            self.copies[i].remove(k);
            self.alloc[i * self.m + k as usize] = 0.0;
        }
        if self.batched {
            self.batch_dirty = true;
        } else {
            self.recompute_flows();
            self.trace.push(self.distance_to_tlb());
        }
        Ok(())
    }

    /// Replaces the whole demand mix mid-run (hot-set rotation, Zipf
    /// re-skew). Copies and allocations survive — allocations for
    /// documents that lost their demand simply stop serving (flows are
    /// `min(alloc, through)`), and the protocol rebalances toward the
    /// recomputed oracle. First-time document ids grow the universe as in
    /// [`DocSim::publish_doc`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::LengthMismatch`] when `mix` does not cover
    /// the current tree.
    pub fn set_mix(&mut self, mix: &DocMix) -> Result<(), ModelError> {
        let n = self.tree.len();
        if mix.len() != n {
            return Err(ModelError::LengthMismatch {
                expected: n,
                actual: mix.len(),
            });
        }
        for d in mix.documents() {
            self.grow_universe(d);
        }
        self.demand.fill(0.0);
        for u in self.tree.nodes() {
            for &(d, r) in mix.demands_of(u) {
                if r > 0.0 {
                    let k = self.table.index_of(d).expect("universe grown above");
                    self.demand[u.index() * self.m + k as usize] = r;
                }
            }
        }
        self.after_demand_change();
        Ok(())
    }

    /// A cache server joins as a new leaf under `parent`, bringing `rate`
    /// req/s of demand split across the universe **proportionally to the
    /// current global per-document demand** (the newcomer's clients follow
    /// the same popularity law everyone else does). The node starts with
    /// no copies; its demand flows upward until diffusion reaches it.
    ///
    /// # Errors
    ///
    /// [`ModelError::NodeOutOfRange`] for an unknown parent,
    /// [`ModelError::InvalidRate`] for a bad rate or when `rate > 0` but
    /// the universe carries no demand to model the split on.
    pub fn add_leaf(&mut self, parent: NodeId, rate: f64) -> Result<NodeId, ModelError> {
        if !rate.is_finite() || rate < 0.0 {
            return Err(ModelError::InvalidRate {
                node: parent,
                value: rate,
            });
        }
        let m = self.m;
        // Global per-document totals, for the newcomer's demand split.
        let mut totals = vec![0.0; m];
        for i in 0..self.tree.len() {
            for (k, t) in totals.iter_mut().enumerate() {
                *t += self.demand[i * m + k];
            }
        }
        let grand: f64 = totals.iter().sum();
        if rate > 0.0 && grand <= 0.0 {
            return Err(ModelError::InvalidRate {
                node: parent,
                value: rate,
            });
        }
        let id = self.tree.add_leaf(parent)?;
        self.fold.on_join(&self.tree, id);
        let mut row = vec![0.0; m];
        if rate > 0.0 {
            for (cell, t) in row.iter_mut().zip(&totals) {
                *cell = rate * t / grand;
            }
        }
        self.demand.extend_from_slice(&row);
        self.copies.push(self.table.empty_set());
        self.alloc.resize(self.alloc.len() + m, 0.0);
        self.served.resize(self.served.len() + m, 0.0);
        self.forwarded.resize(self.forwarded.len() + m, 0.0);
        self.underload_streak.push(0);
        self.failed_up.push(false);
        self.after_churn();
        Ok(id)
    }

    /// A leaf cache server departs: its clients re-route to the next
    /// cache up the tree, so its per-document demand re-homes to its
    /// parent; its copies and allocations vanish with it, and the load it
    /// served snaps back toward the home server until diffusion recovers.
    /// Ids compact by swap-remove, exactly as [`Tree::remove_leaf`].
    ///
    /// # Errors
    ///
    /// As [`Tree::remove_leaf`]: unknown id, root, or interior node.
    pub fn remove_leaf(&mut self, node: NodeId) -> Result<LeafRemoval, ModelError> {
        let removal = self.tree.remove_leaf(node)?;
        self.fold.on_leave(&self.tree, &removal);
        let m = self.m;
        let i = node.index();
        // Re-home the departed demand row to the (pre-compaction) parent:
        // the slab rows are still in the old layout at this point.
        let old_parent = removal.parent_before().index();
        for k in 0..m {
            self.demand[old_parent * m + k] += self.demand[i * m + k];
        }
        slab_swap_remove(&mut self.demand, m, i);
        slab_swap_remove(&mut self.alloc, m, i);
        slab_swap_remove(&mut self.served, m, i);
        slab_swap_remove(&mut self.forwarded, m, i);
        self.copies.swap_remove(i);
        self.underload_streak.swap_remove(i);
        self.failed_up.swap_remove(i);
        self.after_churn();
        Ok(removal)
    }

    /// Grows the dense universe by `doc` if absent; returns its index.
    /// Insertion keeps ascending-id order, so columns at or above the
    /// insertion point shift right by one across every slab and bitset.
    fn grow_universe(&mut self, doc: DocId) -> u32 {
        if let Some(k) = self.table.index_of(doc) {
            return k;
        }
        let table = DocTable::from_ids(self.table.docs().iter().copied().chain([doc]));
        let k = table.index_of(doc).expect("just inserted");
        let (m_old, m_new) = (self.m, table.len());
        let n = self.tree.len();
        let grow = |slab: &mut Vec<f64>| {
            let mut new = vec![0.0; n * m_new];
            for i in 0..n {
                for j in 0..m_old {
                    let jj = j + usize::from(j >= k as usize);
                    new[i * m_new + jj] = slab[i * m_old + j];
                }
            }
            *slab = new;
        };
        grow(&mut self.demand);
        grow(&mut self.alloc);
        grow(&mut self.served);
        grow(&mut self.forwarded);
        for set in &mut self.copies {
            let mut grown = table.empty_set();
            for idx in set.iter() {
                grown.insert(idx + u32::from(idx >= k));
            }
            *set = grown;
        }
        self.table = table;
        self.m = m_new;
        k
    }

    /// Oracle + flow refresh after demand changed on a fixed tree — or,
    /// inside a batched barrier, a deferral to [`DocSim::end_batch`].
    fn after_demand_change(&mut self) {
        if self.batched {
            self.batch_dirty = true;
            return;
        }
        let spontaneous = self.spontaneous();
        self.oracle = self.fold.refold_path(&self.tree, &spontaneous).into_load();
        self.recompute_flows();
        self.trace.push(self.distance_to_tlb());
    }

    /// Full refresh after the tree itself changed: load vectors resize,
    /// alpha re-derives (unless overridden), oracle and flows recompute.
    fn after_churn(&mut self) {
        let n = self.tree.len();
        self.load = RateVector::zeros(n);
        self.load_snapshot = RateVector::zeros(n);
        self.alpha = self.config.alpha.unwrap_or_else(|| safe_alpha(&self.tree));
        self.after_demand_change();
    }

    /// Opens a batched barrier: subsequent churn/demand events apply
    /// their structural effects eagerly but defer the oracle refold, the
    /// flow recomputation, and the trace sample until
    /// [`DocSim::end_batch`], which pays them once for the whole barrier.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already open.
    pub fn begin_batch(&mut self) {
        assert!(!self.batched, "batch already open");
        self.batched = true;
    }

    /// Closes a batched barrier: one oracle refold, one flow
    /// recomputation, one trace sample, regardless of how many events
    /// the batch held. A batch of exactly one event is bit-identical to
    /// applying that event unbatched (the refold is stable when only
    /// placement changed).
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn end_batch(&mut self) {
        assert!(self.batched, "no batch open");
        self.batched = false;
        if std::mem::take(&mut self.batch_dirty) {
            self.after_demand_change();
        }
    }

    /// The current spontaneous (per-node total) demand vector.
    pub fn spontaneous(&self) -> RateVector {
        let m = self.m;
        (0..self.tree.len())
            .map(|i| self.demand[i * m..(i + 1) * m].iter().sum::<f64>())
            .collect()
    }
}

/// Removes row `row` from a flat `rows x m` slab by swap-remove: the last
/// row moves into its place — the same compaction [`Tree::remove_leaf`]
/// applies to node ids.
fn slab_swap_remove(slab: &mut Vec<f64>, m: usize, row: usize) {
    if m == 0 {
        return;
    }
    let rows = slab.len() / m;
    let last = rows - 1;
    if row != last {
        let (head, tail) = slab.split_at_mut(last * m);
        head[row * m..(row + 1) * m].copy_from_slice(&tail[..m]);
    }
    slab.truncate(last * m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_topology::paper;

    fn fig7_sim(tunneling: bool) -> DocSim {
        let b = paper::fig7();
        DocSim::from_barrier_scenario(
            &b,
            DocSimConfig {
                alpha: None,
                tunneling,
                barrier_patience: 2,
            },
        )
    }

    #[test]
    fn cold_start_serves_everything_at_root() {
        let sim = fig7_sim(true);
        assert_eq!(sim.load().as_slice(), &[360.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn without_tunneling_the_barrier_stalls_the_system() {
        let mut sim = fig7_sim(false);
        sim.run(800);
        // Node 2 never obtains d3 and serves nothing.
        assert_eq!(sim.load()[NodeId::new(2)], 0.0);
        assert!(sim.copies_at(NodeId::new(2)).is_empty());
        // The others equalize near 120 (360 split three ways).
        for node in [0usize, 1, 3] {
            let l = sim.load()[NodeId::new(node)];
            assert!((l - 120.0).abs() < 1.0, "node {node} at {l}");
        }
        // Well away from TLB.
        assert!(sim.distance_to_tlb() > 100.0);
        assert!(sim.stats().barrier_suspicions > 0);
        assert_eq!(sim.stats().tunnel_fetches, 0);
    }

    #[test]
    fn with_tunneling_fig7_converges_to_uniform_90() {
        let mut sim = fig7_sim(true);
        sim.run(1500);
        for u in 0..4 {
            let l = sim.load()[NodeId::new(u)];
            assert!((l - 90.0).abs() < 1.0, "node {u} at {l}");
        }
        assert!(sim.stats().tunnel_fetches >= 1);
        // Node 2 obtained d3 via tunneling.
        assert!(sim.copies_at(NodeId::new(2)).contains(&DocId::new(3)));
    }

    #[test]
    fn tunneling_happens_after_patience_periods() {
        let mut sim = fig7_sim(true);
        // Before patience runs out there are no fetches.
        sim.run(2);
        assert_eq!(sim.stats().tunnel_fetches, 0);
        sim.run(30);
        assert!(sim.stats().tunnel_fetches >= 1);
    }

    #[test]
    fn copy_pushes_populate_caches_down_the_demand_path() {
        let mut sim = fig7_sim(true);
        sim.run(300);
        // Node 3 (origin of d1/d2 demand) must hold at least one of them.
        let held = sim.copies_at(NodeId::new(3));
        assert!(
            held.contains(&DocId::new(1)) || held.contains(&DocId::new(2)),
            "node 3 holds {held:?}"
        );
        assert!(sim.stats().copy_pushes > 0);
    }

    #[test]
    fn total_served_equals_demand_every_round() {
        let mut sim = fig7_sim(true);
        for _ in 0..100 {
            sim.step();
            assert!(
                (sim.load().total() - 360.0).abs() < 1e-6,
                "round {}: total {}",
                sim.round(),
                sim.load().total()
            );
        }
    }

    #[test]
    fn served_rates_respect_document_flows() {
        // A node can never serve a document its subtree does not request.
        let mut sim = fig7_sim(true);
        sim.run(500);
        // Node 2 requests only d3: it must not serve d1 or d2.
        assert_eq!(sim.served_rate(NodeId::new(2), DocId::new(1)), 0.0);
        assert_eq!(sim.served_rate(NodeId::new(2), DocId::new(2)), 0.0);
        // Node 3 requests d1/d2 but never d3.
        assert_eq!(sim.served_rate(NodeId::new(3), DocId::new(3)), 0.0);
    }

    #[test]
    fn gle_feasible_mix_converges_without_tunneling() {
        // A barrier-free workload: one document requested at every leaf of
        // a small tree. No tunneling needed to reach TLB.
        let tree = Tree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let mut mix = DocMix::new(3);
        mix.set(NodeId::new(1), DocId::new(1), 30.0);
        mix.set(NodeId::new(2), DocId::new(1), 30.0);
        let mut sim = DocSim::new(
            &tree,
            &mix,
            DocSimConfig {
                alpha: None,
                tunneling: false,
                barrier_patience: 2,
            },
        );
        sim.run(1200);
        assert!(
            sim.distance_to_tlb() < 0.5,
            "distance {}",
            sim.distance_to_tlb()
        );
        assert_eq!(sim.stats().tunnel_fetches, 0);
    }

    #[test]
    fn trace_starts_at_cold_distance() {
        let sim = fig7_sim(true);
        // Cold start: root serves 360, TLB is uniform 90.
        // distance = sqrt(270^2 + 3 * 90^2).
        let expected = (270.0f64 * 270.0 + 3.0 * 90.0 * 90.0).sqrt();
        assert!((sim.trace().initial().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn doc_table_covers_the_universe() {
        let sim = fig7_sim(true);
        let t = sim.doc_table();
        assert_eq!(t.len(), 3);
        for d in [1u64, 2, 3] {
            assert!(t.index_of(DocId::new(d)).is_some());
        }
    }
}

#[cfg(test)]
mod dynamics_tests {
    use super::*;
    use ww_topology::paper;

    fn fig7_sim() -> DocSim {
        DocSim::from_barrier_scenario(&paper::fig7(), DocSimConfig::default())
    }

    #[test]
    fn publish_grows_the_universe_and_lands_at_the_root() {
        let mut sim = fig7_sim();
        sim.run(400);
        let before = sim.doc_table().len();
        sim.publish_doc(DocId::new(99), NodeId::new(3), 120.0)
            .unwrap();
        assert_eq!(sim.doc_table().len(), before + 1);
        // The new demand is served at the home server first...
        let root = sim.tree().root();
        assert!(sim.served_rate(root, DocId::new(99)) > 0.0);
        assert!((sim.load().total() - 480.0).abs() < 1e-6);
        // ...and diffuses out afterward.
        sim.run(1500);
        assert!(
            sim.distance_to_tlb() < 2.0,
            "distance {}",
            sim.distance_to_tlb()
        );
    }

    #[test]
    fn publish_existing_doc_adds_demand() {
        let mut sim = fig7_sim();
        sim.publish_doc(DocId::new(1), NodeId::new(3), 40.0)
            .unwrap();
        assert_eq!(sim.doc_table().len(), 3);
        assert!((sim.load().total() - 400.0).abs() < 1e-6);
    }

    #[test]
    fn invalidation_snaps_copies_back_to_the_root() {
        let mut sim = fig7_sim();
        sim.run(1200);
        assert!(sim.distance_to_tlb() < 2.0);
        // Re-publish d1: every non-root copy vanishes and its load
        // reappears at the home server.
        sim.invalidate_doc(DocId::new(1)).unwrap();
        let root = sim.tree().root();
        for u in sim.tree().nodes() {
            if u != root {
                assert!(!sim.copies_at(u).contains(&DocId::new(1)), "{u} kept d1");
            }
        }
        assert!(sim.distance_to_tlb() > 10.0);
        assert!((sim.load().total() - 360.0).abs() < 1e-6);
        // Re-diffusion recovers.
        sim.run(1500);
        assert!(
            sim.distance_to_tlb() < 2.0,
            "distance {}",
            sim.distance_to_tlb()
        );
    }

    #[test]
    fn unknown_doc_invalidation_is_a_typed_error() {
        let mut sim = fig7_sim();
        assert!(matches!(
            sim.invalidate_doc(DocId::new(777)),
            Err(ModelError::UnknownDocument { doc: 777 })
        ));
    }

    #[test]
    fn join_follows_global_popularity_and_reconverges() {
        let mut sim = fig7_sim();
        sim.run(600);
        let id = sim.add_leaf(NodeId::new(1), 60.0).unwrap();
        assert_eq!(id.index(), 4);
        assert!((sim.load().total() - 420.0).abs() < 1e-6);
        // The newcomer's demand follows the current popularity law, so
        // each original document gains a proportional share.
        assert!((sim.spontaneous()[id] - 60.0).abs() < 1e-9);
        sim.run(2500);
        assert!(
            sim.distance_to_tlb() < 3.0,
            "distance {}",
            sim.distance_to_tlb()
        );
    }

    #[test]
    fn leave_rehomes_per_doc_demand() {
        let mut sim = fig7_sim();
        sim.run(600);
        // Node 3 (leaf) departs; its d1/d2 demand re-homes to node 1.
        sim.remove_leaf(NodeId::new(3)).unwrap();
        assert_eq!(sim.tree().len(), 3);
        assert!((sim.load().total() - 360.0).abs() < 1e-6);
        assert!((sim.spontaneous()[NodeId::new(1)] - 270.0).abs() < 1e-9);
        sim.run(2500);
        assert!(
            sim.distance_to_tlb() < 2.0,
            "distance {}",
            sim.distance_to_tlb()
        );
    }

    #[test]
    fn failed_link_stalls_tunneling_until_healed() {
        let mut sim = fig7_sim();
        sim.fail_link(NodeId::new(2));
        sim.run(600);
        // Node 2 sits behind the barrier *and* a dead control link: it
        // can neither receive pushes nor tunnel, so it never acquires a
        // copy and serves nothing (other nodes may still tunnel).
        assert_eq!(sim.load()[NodeId::new(2)], 0.0);
        assert!(sim.copies_at(NodeId::new(2)).is_empty());
        sim.heal_link(NodeId::new(2));
        sim.run(1500);
        assert!(sim.copies_at(NodeId::new(2)).contains(&DocId::new(3)));
        assert!(
            sim.distance_to_tlb() < 2.0,
            "distance {}",
            sim.distance_to_tlb()
        );
    }

    #[test]
    fn set_mix_rotates_the_hot_set() {
        let mut sim = fig7_sim();
        sim.run(1200);
        // Rotate all demand onto a fresh document set at the same nodes.
        let mut mix = DocMix::new(4);
        mix.set(NodeId::new(3), DocId::new(10), 240.0);
        mix.set(NodeId::new(2), DocId::new(11), 120.0);
        sim.set_mix(&mix).unwrap();
        assert!((sim.load().total() - 360.0).abs() < 1e-6);
        assert_eq!(sim.doc_table().len(), 5);
        sim.run(2500);
        assert!(
            sim.distance_to_tlb() < 3.0,
            "distance {}",
            sim.distance_to_tlb()
        );
    }
}

#[cfg(test)]
mod deletion_tests {
    use super::*;
    use ww_model::Tree;
    use ww_workload::DocMix;

    /// With an aggressive alpha (> 0.5) the serving rate overshoots the
    /// balance point, the child sheds back, and fully shed copies are
    /// deleted (Section 1's "delete some of its cached documents").
    #[test]
    fn fully_shed_copies_are_deleted() {
        let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
        let mut mix = DocMix::new(3);
        mix.set(NodeId::new(1), DocId::new(2), 90.0);
        mix.set(NodeId::new(2), DocId::new(1), 30.0);
        let mut sim = DocSim::new(
            &tree,
            &mix,
            DocSimConfig {
                alpha: Some(0.8),
                tunneling: true,
                barrier_patience: 2,
            },
        );
        sim.run(2000);
        // Convergence still reached...
        assert!(
            sim.distance_to_tlb() < 2.0,
            "distance {}",
            sim.distance_to_tlb()
        );
        // ...and the overshoot dynamics exercised at least one deletion.
        assert!(
            sim.stats().copy_deletions >= 1,
            "expected deletions, stats: {:?}",
            sim.stats()
        );
    }

    /// Deletions never remove a copy that still carries allocation.
    #[test]
    fn deletion_only_after_full_shed() {
        let b = ww_topology::paper::fig7();
        let mut sim = DocSim::from_barrier_scenario(&b, DocSimConfig::default());
        sim.run(1500);
        // Every held copy with positive allocation must still be present:
        // spot-check that serving nodes hold what they serve.
        for u in sim.load().iter().map(|(u, _)| u) {
            for d in [DocId::new(1), DocId::new(2), DocId::new(3)] {
                if sim.served_rate(u, d) > 0.0 && u != b.tree.root() {
                    assert!(sim.copies_at(u).contains(&d), "{u} serves {d} without copy");
                }
            }
        }
    }
}
