//! Document-level WebWave: cache copies, potential barriers, tunneling.
//!
//! The rate-level engine ([`crate::wave`]) treats load as a fungible
//! fluid. Real WebWave load is *per document*: a node can only pick up
//! load for a document it holds a copy of, and a parent can only delegate
//! load for documents it serves. That granularity creates the *potential
//! barrier* of Section 5.2 — a loaded node `j` whose underloaded child `k`
//! requests only documents `j` does not cache, so diffusion stalls — and
//! its cure, **tunneling**: after remaining underloaded for more than two
//! periods with no action from the parent, `k` requests hot documents
//! directly from across the barrier and caches them.
//!
//! This engine reproduces Figure 7 exactly: without tunneling the system
//! stalls off-TLB; with tunneling every node converges to 90 req/s.
//!
//! # Performance
//!
//! All per-(node, document) state — demand, serve allocations, served and
//! forwarded flows — lives in flat `Vec<f64>` slabs addressed as
//! `node * doc_count + doc_index`, with dense indices assigned by a
//! [`DocTable`]; per-node copy sets are [`DocSet`] bitsets. Rounds reuse
//! preallocated scratch buffers, so the steady state allocates nothing but
//! the (amortized) trace. Decisions are computed in ascending dense-index
//! order, which equals ascending [`DocId`] order, so results are
//! deterministic and bit-identical to the hash-table reference engine
//! ([`crate::reference::NaiveDocSim`]) — the golden-trace tests assert
//! exactly that.

use crate::fold::webfold;
use ww_cache::{plan_push_dense, plan_shed_dense, DenseRateSlice};
use ww_model::{DocId, DocSet, DocTable, NodeId, RateVector, Tree};
use ww_stats::ConvergenceTrace;
use ww_workload::DocMix;

/// Configuration of a document-level WebWave run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocSimConfig {
    /// Diffusion parameter; `None` selects `1 / (max_degree + 1)`.
    pub alpha: Option<f64>,
    /// Enable tunneling across potential barriers (Section 5.2).
    pub tunneling: bool,
    /// How many consecutive underloaded-with-no-action periods a node
    /// tolerates before tunneling. The paper uses "more than two periods".
    pub barrier_patience: usize,
}

impl Default for DocSimConfig {
    fn default() -> Self {
        DocSimConfig {
            alpha: None,
            tunneling: true,
            barrier_patience: 2,
        }
    }
}

/// Counters describing protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DocSimStats {
    /// Cache copies pushed from a parent to a child.
    pub copy_pushes: u64,
    /// Cache copies deleted after their load was fully shed upward.
    pub copy_deletions: u64,
    /// Documents fetched via tunneling.
    pub tunnel_fetches: u64,
    /// Rounds in which some node suspected a barrier.
    pub barrier_suspicions: u64,
}

/// A document-level WebWave simulation over dense per-document slabs.
///
/// # Example
///
/// ```
/// use ww_topology::paper;
/// use ww_core::docsim::{DocSim, DocSimConfig};
///
/// let b = paper::fig7();
/// let mut sim = DocSim::from_barrier_scenario(&b, DocSimConfig::default());
/// sim.run(600);
/// // With tunneling, every node converges to the TLB rate of 90 req/s.
/// assert!(sim.distance_to_tlb() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DocSim {
    tree: Tree,
    /// Dense index <-> id bijection over the fixed document universe.
    table: DocTable,
    /// Document universe size (slab row width).
    m: usize,
    /// Spontaneous demand per (node, doc): `demand[i * m + k]`.
    demand: Vec<f64>,
    /// Which documents each node holds a copy of (root holds all).
    copies: Vec<DocSet>,
    /// Desired serve rate per (node, doc); root has no allocations (it
    /// absorbs everything that reaches it).
    alloc: Vec<f64>,
    /// Served rates per (node, doc) from the latest flow computation.
    served: Vec<f64>,
    /// Forwarded rate per (node, doc) from the latest flow computation.
    forwarded: Vec<f64>,
    /// Aggregate served rate per node.
    load: RateVector,
    /// Snapshot of `load` at the start of the round (double buffer).
    load_snapshot: RateVector,
    alpha: f64,
    config: DocSimConfig,
    /// Consecutive underloaded-no-action periods per node.
    underload_streak: Vec<usize>,
    oracle: RateVector,
    trace: ConvergenceTrace,
    stats: DocSimStats,
    round: usize,
    /// Reusable scratch: candidate (index, rate) lists.
    cand_buf: Vec<(u32, f64)>,
    /// Reusable scratch: plan sorting buffer.
    sort_buf: Vec<(u32, f64)>,
    /// Reusable scratch: planned slices.
    plan_buf: Vec<DenseRateSlice>,
}

impl DocSim {
    /// Builds a simulation from a tree and per-node document demand.
    ///
    /// The root (home server) initially holds every document; no other
    /// copies exist, so the home server starts serving the entire demand.
    ///
    /// # Panics
    ///
    /// Panics if `mix` does not cover `tree`, or `alpha` is outside
    /// `(0, 1)`.
    pub fn new(tree: &Tree, mix: &DocMix, config: DocSimConfig) -> Self {
        assert_eq!(mix.len(), tree.len(), "doc mix must cover the tree");
        let n = tree.len();
        let table = DocTable::from_ids(mix.documents());
        let m = table.len();
        let mut demand = vec![0.0; n * m];
        for u in tree.nodes() {
            for &(d, r) in mix.demands_of(u) {
                if r > 0.0 {
                    let k = table.index_of(d).expect("demand doc in universe") as usize;
                    demand[u.index() * m + k] = r;
                }
            }
        }
        let mut copies: Vec<DocSet> = (0..n).map(|_| table.empty_set()).collect();
        copies[tree.root().index()] = table.full_set();

        let max_deg = tree
            .nodes()
            .map(|u| tree.children(u).len() + usize::from(tree.parent(u).is_some()))
            .max()
            .unwrap_or(0)
            .max(1);
        let alpha = config.alpha.unwrap_or(1.0 / (max_deg as f64 + 1.0));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");

        let spontaneous = mix.spontaneous();
        let oracle = webfold(tree, &spontaneous).into_load();

        let mut sim = DocSim {
            tree: tree.clone(),
            table,
            m,
            demand,
            copies,
            alloc: vec![0.0; n * m],
            served: vec![0.0; n * m],
            forwarded: vec![0.0; n * m],
            load: RateVector::zeros(n),
            load_snapshot: RateVector::zeros(n),
            alpha,
            config,
            underload_streak: vec![0; n],
            oracle,
            trace: ConvergenceTrace::new(),
            stats: DocSimStats::default(),
            round: 0,
            cand_buf: Vec::with_capacity(m),
            sort_buf: Vec::with_capacity(m),
            plan_buf: Vec::with_capacity(m),
        };
        sim.recompute_flows();
        sim.trace.push(sim.distance_to_tlb());
        sim
    }

    /// Builds the Figure 7 barrier scenario directly.
    pub fn from_barrier_scenario(
        scenario: &ww_topology::paper::BarrierScenario,
        config: DocSimConfig,
    ) -> Self {
        let mut mix = DocMix::new(scenario.tree.len());
        for d in &scenario.demands {
            mix.set(d.origin, d.doc, d.rate);
        }
        DocSim::new(&scenario.tree, &mix, config)
    }

    #[inline]
    fn cell(&self, node: usize, k: u32) -> usize {
        node * self.m + k as usize
    }

    /// Recomputes per-document flows bottom-up from current allocations:
    /// `served_i(d) = min(alloc_i(d), through_i(d))` for non-root nodes
    /// holding a copy, and the root serves everything that reaches it.
    ///
    /// Documents iterate in ascending dense-index (= ascending id) order,
    /// so per-node load accumulates in a fixed deterministic order.
    fn recompute_flows(&mut self) {
        let m = self.m;
        self.served.fill(0.0);
        self.forwarded.fill(0.0);
        self.load.fill(0.0);
        for k in 0..m as u32 {
            for u in self.tree.bottom_up() {
                let i = u.index();
                let cell = i * m + k as usize;
                let mut through = self.demand[cell];
                for &c in self.tree.children(u) {
                    through += self.forwarded[c.index() * m + k as usize];
                }
                if through <= 0.0 {
                    continue;
                }
                let served = if self.tree.parent(u).is_none() {
                    through
                } else if self.copies[i].contains(k) {
                    self.alloc[cell].min(through)
                } else {
                    0.0
                };
                if served > 0.0 {
                    self.served[cell] = served;
                    self.load[u] += served;
                }
                let fwd = through - served;
                if fwd > 0.0 {
                    self.forwarded[cell] = fwd;
                }
            }
        }
    }

    /// Executes one protocol round: diffusion decisions against current
    /// loads, copy pushes, shedding, barrier detection and (optionally)
    /// tunneling, then a flow recomputation.
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.tree.len();

        // Decisions are made against the loads at the start of the round
        // (synchronous gossip), applied to allocations, then flows are
        // recomputed once. The snapshot buffer is reused every round.
        self.load_snapshot.copy_from(&self.load);

        for c_idx in 0..n {
            let c = NodeId::new(c_idx);
            let Some(p) = self.tree.parent(c) else {
                continue;
            };
            let (lp, lc) = (self.load_snapshot[p], self.load_snapshot[c]);
            if lp > lc {
                // The child is underloaded: it should take over
                // `alpha * (L_p - L_c)` of the load passing through it.
                let want = self.alpha * (lp - lc);
                let taken = self.child_take(c, want);
                let remaining = want - taken;
                let pushed = if remaining > 1e-12 {
                    self.parent_push(p, c, remaining)
                } else {
                    0.0
                };
                if taken + pushed <= 1e-9 && self.forwarded_total(c) > 1e-9 {
                    // Underloaded, forwarding real demand, and no load
                    // moved: the parent may be a potential barrier.
                    self.underload_streak[c_idx] += 1;
                    self.stats.barrier_suspicions += 1;
                    if self.config.tunneling
                        && self.underload_streak[c_idx] > self.config.barrier_patience
                    {
                        self.tunnel(c, want);
                        self.underload_streak[c_idx] = 0;
                    }
                } else {
                    self.underload_streak[c_idx] = 0;
                }
            } else if lc > lp {
                // The child is overloaded relative to its parent: shed
                // load upward by reducing its own serve allocations.
                let shed = self.alpha * (lc - lp);
                self.child_shed(c, shed);
                self.underload_streak[c_idx] = 0;
            } else {
                self.underload_streak[c_idx] = 0;
            }
        }

        self.recompute_flows();
        self.trace.push(self.distance_to_tlb());
    }

    /// The child unilaterally raises allocations on documents it already
    /// holds, bounded by what still flows past it. Returns the rate taken.
    fn child_take(&mut self, c: NodeId, want: f64) -> f64 {
        let i = c.index();
        if want <= 0.0 {
            return 0.0;
        }
        // Candidate docs: held copies with nonzero passing (forwarded)
        // rate, hottest first with ascending-index (= ascending-id)
        // tie-break.
        let m = self.m;
        let cand = &mut self.cand_buf;
        cand.clear();
        for k in self.copies[i].iter() {
            let f = self.forwarded[i * m + k as usize];
            if f > 0.0 {
                cand.push((k, f));
            }
        }
        cand.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut taken = 0.0;
        for &(k, avail) in cand.iter() {
            if taken >= want {
                break;
            }
            let grab = avail.min(want - taken);
            self.alloc[i * m + k as usize] += grab;
            taken += grab;
        }
        taken
    }

    /// The parent delegates up to `target` req/s to child `c` by pushing
    /// copies of documents it *serves* and the child *forwards*. Returns
    /// the rate actually delegated.
    fn parent_push(&mut self, p: NodeId, c: NodeId, target: f64) -> f64 {
        let (pi, ci) = (p.index(), c.index());
        let m = self.m;
        // Pushable: docs the parent serves that the child forwards.
        let caps = &mut self.cand_buf;
        caps.clear();
        for k in 0..m {
            let sp = self.served[pi * m + k];
            if sp <= 0.0 {
                continue;
            }
            let fc = self.forwarded[ci * m + k];
            let cap = sp.min(fc);
            if cap > 0.0 {
                caps.push((k as u32, cap));
            }
        }
        plan_push_dense(caps, target, &mut self.sort_buf, &mut self.plan_buf);
        let mut pushed = 0.0;
        let parent_is_root = self.tree.parent(p).is_none();
        for slice in &self.plan_buf {
            let k = slice.index;
            if self.copies[ci].insert(k) {
                self.stats.copy_pushes += 1;
            }
            self.alloc[ci * m + k as usize] += slice.rate;
            if !parent_is_root {
                // The root's service is implicit (it absorbs the stream);
                // other parents explicitly give up allocation.
                let a = &mut self.alloc[pi * m + k as usize];
                *a = (*a - slice.rate).max(0.0);
            }
            pushed += slice.rate;
        }
        pushed
    }

    /// The child reduces its serve allocations by `target` req/s, coldest
    /// documents first; the load climbs back toward the root. A copy whose
    /// allocation is shed entirely is *deleted* ("an imbalance in the
    /// opposite direction causes a child to delete some of its cached
    /// documents", Section 1) — unless this node is the document's origin
    /// of demand, where keeping the copy costs nothing and re-fetching
    /// would be immediate.
    fn child_shed(&mut self, c: NodeId, target: f64) {
        let i = c.index();
        let m = self.m;
        let served = &mut self.cand_buf;
        served.clear();
        for k in 0..m {
            let s = self.served[i * m + k];
            if s > 0.0 {
                served.push((k as u32, s));
            }
        }
        plan_shed_dense(served, target, &mut self.sort_buf, &mut self.plan_buf);
        for slice in &self.plan_buf {
            let k = slice.index;
            let a = &mut self.alloc[i * m + k as usize];
            *a = (*a - slice.rate).max(0.0);
            if slice.full && *a <= 1e-12 {
                *a = 0.0;
                self.copies[i].remove(k);
                self.stats.copy_deletions += 1;
            }
        }
    }

    /// Tunneling (Section 5.2): the stuck node requests the hottest
    /// document it forwards but does not hold, caches it, and starts
    /// serving it.
    fn tunnel(&mut self, c: NodeId, want: f64) {
        let i = c.index();
        let m = self.m;
        // Hottest forwarded-but-not-held document; ties break toward the
        // smaller index (= smaller id).
        let mut best: Option<(u32, f64)> = None;
        for k in 0..m as u32 {
            let f = self.forwarded[i * m + k as usize];
            if f <= 0.0 || self.copies[i].contains(k) {
                continue;
            }
            if best.is_none_or(|(_, br)| f > br) {
                best = Some((k, f));
            }
        }
        if let Some((k, avail)) = best {
            self.copies[i].insert(k);
            self.alloc[i * m + k as usize] += avail.min(want);
            self.stats.tunnel_fetches += 1;
        }
    }

    /// Sum of forwarded rates at `c`, accumulated in ascending index
    /// order.
    fn forwarded_total(&self, c: NodeId) -> f64 {
        let i = c.index();
        self.forwarded[i * self.m..(i + 1) * self.m].iter().sum()
    }

    /// Runs `rounds` protocol rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Current aggregate served-rate vector.
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// The TLB oracle for the aggregate demand.
    pub fn oracle(&self) -> &RateVector {
        &self.oracle
    }

    /// Euclidean distance from current loads to the TLB oracle.
    pub fn distance_to_tlb(&self) -> f64 {
        self.load.euclidean_distance(&self.oracle)
    }

    /// Per-round distance trace.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }

    /// Protocol activity counters.
    pub fn stats(&self) -> DocSimStats {
        self.stats
    }

    /// The dense document table of this simulation's universe.
    pub fn doc_table(&self) -> &DocTable {
        &self.table
    }

    /// Documents node `u` currently holds copies of, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn copies_at(&self, u: NodeId) -> Vec<DocId> {
        // Bitset iteration is ascending-index, i.e. already sorted by id.
        self.copies[u.index()]
            .iter()
            .map(|k| self.table.doc(k))
            .collect()
    }

    /// Served rate of document `d` at node `u` in the latest round.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn served_rate(&self, u: NodeId, d: DocId) -> f64 {
        match self.table.index_of(d) {
            Some(k) => self.served[self.cell(u.index(), k)],
            None => 0.0,
        }
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.round
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_topology::paper;

    fn fig7_sim(tunneling: bool) -> DocSim {
        let b = paper::fig7();
        DocSim::from_barrier_scenario(
            &b,
            DocSimConfig {
                alpha: None,
                tunneling,
                barrier_patience: 2,
            },
        )
    }

    #[test]
    fn cold_start_serves_everything_at_root() {
        let sim = fig7_sim(true);
        assert_eq!(sim.load().as_slice(), &[360.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn without_tunneling_the_barrier_stalls_the_system() {
        let mut sim = fig7_sim(false);
        sim.run(800);
        // Node 2 never obtains d3 and serves nothing.
        assert_eq!(sim.load()[NodeId::new(2)], 0.0);
        assert!(sim.copies_at(NodeId::new(2)).is_empty());
        // The others equalize near 120 (360 split three ways).
        for node in [0usize, 1, 3] {
            let l = sim.load()[NodeId::new(node)];
            assert!((l - 120.0).abs() < 1.0, "node {node} at {l}");
        }
        // Well away from TLB.
        assert!(sim.distance_to_tlb() > 100.0);
        assert!(sim.stats().barrier_suspicions > 0);
        assert_eq!(sim.stats().tunnel_fetches, 0);
    }

    #[test]
    fn with_tunneling_fig7_converges_to_uniform_90() {
        let mut sim = fig7_sim(true);
        sim.run(1500);
        for u in 0..4 {
            let l = sim.load()[NodeId::new(u)];
            assert!((l - 90.0).abs() < 1.0, "node {u} at {l}");
        }
        assert!(sim.stats().tunnel_fetches >= 1);
        // Node 2 obtained d3 via tunneling.
        assert!(sim.copies_at(NodeId::new(2)).contains(&DocId::new(3)));
    }

    #[test]
    fn tunneling_happens_after_patience_periods() {
        let mut sim = fig7_sim(true);
        // Before patience runs out there are no fetches.
        sim.run(2);
        assert_eq!(sim.stats().tunnel_fetches, 0);
        sim.run(30);
        assert!(sim.stats().tunnel_fetches >= 1);
    }

    #[test]
    fn copy_pushes_populate_caches_down_the_demand_path() {
        let mut sim = fig7_sim(true);
        sim.run(300);
        // Node 3 (origin of d1/d2 demand) must hold at least one of them.
        let held = sim.copies_at(NodeId::new(3));
        assert!(
            held.contains(&DocId::new(1)) || held.contains(&DocId::new(2)),
            "node 3 holds {held:?}"
        );
        assert!(sim.stats().copy_pushes > 0);
    }

    #[test]
    fn total_served_equals_demand_every_round() {
        let mut sim = fig7_sim(true);
        for _ in 0..100 {
            sim.step();
            assert!(
                (sim.load().total() - 360.0).abs() < 1e-6,
                "round {}: total {}",
                sim.round(),
                sim.load().total()
            );
        }
    }

    #[test]
    fn served_rates_respect_document_flows() {
        // A node can never serve a document its subtree does not request.
        let mut sim = fig7_sim(true);
        sim.run(500);
        // Node 2 requests only d3: it must not serve d1 or d2.
        assert_eq!(sim.served_rate(NodeId::new(2), DocId::new(1)), 0.0);
        assert_eq!(sim.served_rate(NodeId::new(2), DocId::new(2)), 0.0);
        // Node 3 requests d1/d2 but never d3.
        assert_eq!(sim.served_rate(NodeId::new(3), DocId::new(3)), 0.0);
    }

    #[test]
    fn gle_feasible_mix_converges_without_tunneling() {
        // A barrier-free workload: one document requested at every leaf of
        // a small tree. No tunneling needed to reach TLB.
        let tree = Tree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let mut mix = DocMix::new(3);
        mix.set(NodeId::new(1), DocId::new(1), 30.0);
        mix.set(NodeId::new(2), DocId::new(1), 30.0);
        let mut sim = DocSim::new(
            &tree,
            &mix,
            DocSimConfig {
                alpha: None,
                tunneling: false,
                barrier_patience: 2,
            },
        );
        sim.run(1200);
        assert!(
            sim.distance_to_tlb() < 0.5,
            "distance {}",
            sim.distance_to_tlb()
        );
        assert_eq!(sim.stats().tunnel_fetches, 0);
    }

    #[test]
    fn trace_starts_at_cold_distance() {
        let sim = fig7_sim(true);
        // Cold start: root serves 360, TLB is uniform 90.
        // distance = sqrt(270^2 + 3 * 90^2).
        let expected = (270.0f64 * 270.0 + 3.0 * 90.0 * 90.0).sqrt();
        assert!((sim.trace().initial().unwrap() - expected).abs() < 1e-9);
    }

    #[test]
    fn doc_table_covers_the_universe() {
        let sim = fig7_sim(true);
        let t = sim.doc_table();
        assert_eq!(t.len(), 3);
        for d in [1u64, 2, 3] {
            assert!(t.index_of(DocId::new(d)).is_some());
        }
    }
}

#[cfg(test)]
mod deletion_tests {
    use super::*;
    use ww_model::Tree;
    use ww_workload::DocMix;

    /// With an aggressive alpha (> 0.5) the serving rate overshoots the
    /// balance point, the child sheds back, and fully shed copies are
    /// deleted (Section 1's "delete some of its cached documents").
    #[test]
    fn fully_shed_copies_are_deleted() {
        let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
        let mut mix = DocMix::new(3);
        mix.set(NodeId::new(1), DocId::new(2), 90.0);
        mix.set(NodeId::new(2), DocId::new(1), 30.0);
        let mut sim = DocSim::new(
            &tree,
            &mix,
            DocSimConfig {
                alpha: Some(0.8),
                tunneling: true,
                barrier_patience: 2,
            },
        );
        sim.run(2000);
        // Convergence still reached...
        assert!(
            sim.distance_to_tlb() < 2.0,
            "distance {}",
            sim.distance_to_tlb()
        );
        // ...and the overshoot dynamics exercised at least one deletion.
        assert!(
            sim.stats().copy_deletions >= 1,
            "expected deletions, stats: {:?}",
            sim.stats()
        );
    }

    /// Deletions never remove a copy that still carries allocation.
    #[test]
    fn deletion_only_after_full_shed() {
        let b = ww_topology::paper::fig7();
        let mut sim = DocSim::from_barrier_scenario(&b, DocSimConfig::default());
        sim.run(1500);
        // Every held copy with positive allocation must still be present:
        // spot-check that serving nodes hold what they serve.
        for u in sim.load().iter().map(|(u, _)| u) {
            for d in [DocId::new(1), DocId::new(2), DocId::new(3)] {
                if sim.served_rate(u, d) > 0.0 && u != b.tree.root() {
                    assert!(sim.copies_at(u).contains(&d), "{u} serves {d} without copy");
                }
            }
        }
    }
}
