//! Throughput and idle-capacity analysis.
//!
//! The paper's opening objective: "minimize server idle time, and hence
//! maximize the aggregate server throughput of the whole service"
//! (Abstract, Section 2). With uniform per-server capacity `C`, a load
//! assignment `L` actually serves `min(L_i, C)` at each node while
//! `max(C - L_i, 0)` capacity idles. Balancing matters exactly because a
//! concentrated assignment saturates one server while others idle; the
//! TLB assignment minimizes the maximum load and therefore serves the
//! whole demand at the smallest possible capacity.

use serde::{Deserialize, Serialize};
use ww_model::RateVector;

/// Throughput of one assignment at a given uniform capacity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Uniform per-server capacity (req/s).
    pub capacity: f64,
    /// Offered demand (sum of the assignment).
    pub offered: f64,
    /// Aggregate rate actually served: `sum_i min(L_i, C)`.
    pub served: f64,
    /// Demand turned away because its server saturated.
    pub lost: f64,
    /// Capacity left idle: `sum_i max(C - L_i, 0)`.
    pub idle_capacity: f64,
    /// `served / offered` (1.0 when nothing is lost).
    pub goodput_fraction: f64,
}

/// Evaluates an assignment against a uniform per-server capacity.
///
/// # Panics
///
/// Panics if `capacity` is negative or non-finite.
///
/// # Example
///
/// ```
/// use ww_model::RateVector;
/// use ww_core::throughput::throughput_at_capacity;
///
/// // Balanced: 3 servers at 10 req/s each, capacity 12 -> all served.
/// let balanced = RateVector::from(vec![10.0, 10.0, 10.0]);
/// let r = throughput_at_capacity(&balanced, 12.0);
/// assert_eq!(r.served, 30.0);
///
/// // Concentrated: one server at 30 -> 18 req/s lost at the same capacity.
/// let hot = RateVector::from(vec![30.0, 0.0, 0.0]);
/// let r = throughput_at_capacity(&hot, 12.0);
/// assert_eq!(r.served, 12.0);
/// assert_eq!(r.lost, 18.0);
/// ```
pub fn throughput_at_capacity(load: &RateVector, capacity: f64) -> ThroughputReport {
    assert!(
        capacity.is_finite() && capacity >= 0.0,
        "capacity must be finite and non-negative"
    );
    let offered = load.total();
    let served: f64 = load.as_slice().iter().map(|&l| l.min(capacity)).sum();
    let idle: f64 = load
        .as_slice()
        .iter()
        .map(|&l| (capacity - l).max(0.0))
        .sum();
    ThroughputReport {
        capacity,
        offered,
        served,
        lost: offered - served,
        idle_capacity: idle,
        goodput_fraction: if offered > 0.0 { served / offered } else { 1.0 },
    }
}

/// The smallest uniform capacity at which the assignment serves all its
/// demand — exactly the maximum load, which TLB provably minimizes
/// (Definition 1).
pub fn saturation_capacity(load: &RateVector) -> f64 {
    load.max()
}

/// Sweeps capacity over `points` values from 0 to `max_capacity` and
/// reports throughput at each.
///
/// # Panics
///
/// Panics if `points == 0` or `max_capacity` is invalid.
pub fn capacity_sweep(
    load: &RateVector,
    max_capacity: f64,
    points: usize,
) -> Vec<ThroughputReport> {
    assert!(points > 0, "need at least one sweep point");
    (0..points)
        .map(|i| {
            let c = max_capacity * (i + 1) as f64 / points as f64;
            throughput_at_capacity(load, c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::webfold;
    use ww_topology::paper;

    #[test]
    fn balanced_assignment_saturates_later() {
        let balanced = RateVector::from(vec![10.0, 10.0, 10.0]);
        let hot = RateVector::from(vec![30.0, 0.0, 0.0]);
        assert_eq!(saturation_capacity(&balanced), 10.0);
        assert_eq!(saturation_capacity(&hot), 30.0);
    }

    #[test]
    fn throughput_monotone_in_capacity() {
        let load = RateVector::from(vec![5.0, 20.0, 9.0]);
        let sweep = capacity_sweep(&load, 25.0, 10);
        for w in sweep.windows(2) {
            assert!(w[1].served >= w[0].served);
        }
        assert_eq!(sweep.last().unwrap().goodput_fraction, 1.0);
    }

    #[test]
    fn idle_plus_served_accounts_capacity() {
        let load = RateVector::from(vec![5.0, 20.0, 9.0]);
        let r = throughput_at_capacity(&load, 10.0);
        // served-at-capped-servers + idle = 3 * capacity.
        let used: f64 = load.as_slice().iter().map(|&l| l.min(10.0)).sum();
        assert!((used + r.idle_capacity - 30.0).abs() < 1e-12);
    }

    #[test]
    fn tlb_serves_full_demand_at_lower_capacity_than_no_cache() {
        // The paper's core throughput claim, quantified on fig6.
        let s = paper::fig6();
        let tlb = webfold(&s.tree, &s.spontaneous).into_load();
        let mut no_cache = RateVector::zeros(s.tree.len());
        no_cache[s.tree.root()] = s.total_demand();

        let c_tlb = saturation_capacity(&tlb);
        let c_none = saturation_capacity(&no_cache);
        assert!(c_tlb < c_none / 10.0, "TLB {c_tlb} vs no-cache {c_none}");

        // At the TLB saturation capacity, no-cache loses most demand.
        let r = throughput_at_capacity(&no_cache, c_tlb);
        assert!(r.goodput_fraction < 0.15, "goodput {}", r.goodput_fraction);
        let r = throughput_at_capacity(&tlb, c_tlb);
        assert!((r.goodput_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_serves_nothing() {
        let load = RateVector::from(vec![1.0, 2.0]);
        let r = throughput_at_capacity(&load, 0.0);
        assert_eq!(r.served, 0.0);
        assert_eq!(r.lost, 3.0);
        assert_eq!(r.goodput_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be finite")]
    fn negative_capacity_rejected() {
        let _ = throughput_at_capacity(&RateVector::from(vec![1.0]), -1.0);
    }
}
