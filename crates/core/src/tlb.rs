//! Tree Load Balance: definitions, checkers and optimality tests.
//!
//! Section 3 of the paper defines load balance recursively (Definition 1):
//! an assignment is load-balanced iff its maximum load is minimal, and the
//! same holds recursively once the maximum is removed — i.e. the
//! descending-sorted load vector is lexicographically minimal. **TLB**
//! (Definition 2) is that optimum subject to Constraint 1 (the root
//! forwards nothing) and Constraint 2 (*no sibling sharing*: `A_i >= 0`).
//!
//! This module turns every claim of Sections 3-4 into checkable code:
//! feasibility, the three lemmas, GLE feasibility, and a randomized
//! optimality test that compares WebFold's output against arbitrary
//! feasible competitors.

use crate::fold::{webfold, FoldedTree};
use rand::Rng;
use ww_model::{LoadAssignment, NodeId, RateVector, Tree};

/// Default numeric tolerance for feasibility and comparison checks.
pub const DEFAULT_TOL: f64 = 1e-9;

/// A verdict on one assignment's relation to the paper's constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feasibility {
    /// Constraint 2 (`A_i >= 0` everywhere).
    pub nss: bool,
    /// Constraint 1 (`A_root == 0`, i.e. total served == total demand).
    pub root: bool,
}

impl Feasibility {
    /// `true` when both constraints hold.
    pub fn is_feasible(self) -> bool {
        self.nss && self.root
    }
}

/// Checks Constraints 1 and 2 for served rates `load` under `spontaneous`
/// demand on `tree`.
///
/// # Panics
///
/// Panics if the vectors do not validate against `tree`.
pub fn check_feasibility(
    tree: &Tree,
    spontaneous: &RateVector,
    load: &RateVector,
    tol: f64,
) -> Feasibility {
    let a =
        LoadAssignment::new(tree, spontaneous, load.clone()).expect("vectors must match the tree");
    Feasibility {
        nss: a.satisfies_nss(tol),
        root: a.satisfies_root_constraint(tol),
    }
}

/// Lemma 1: after WebFold, loads are monotonically non-increasing from
/// root toward the leaves (`L_i >= L_j` for every child `j` of `i`).
pub fn check_monotone_non_increasing(tree: &Tree, load: &RateVector, tol: f64) -> bool {
    tree.nodes()
        .all(|u| tree.children(u).iter().all(|&c| load[u] >= load[c] - tol))
}

/// Lemma 2: no load is exchanged between folds — the forwarded rate at
/// every fold root is zero.
pub fn check_zero_interfold_flow(
    tree: &Tree,
    spontaneous: &RateVector,
    folded: &FoldedTree,
    tol: f64,
) -> bool {
    let a = LoadAssignment::new(tree, spontaneous, folded.load().clone())
        .expect("folded load matches tree");
    folded
        .folds()
        .iter()
        .all(|&(root, _)| a.forwarded()[root].abs() <= tol)
}

/// Is Global Load Equality feasible for this tree and demand? True iff
/// the uniform assignment `total/n` satisfies NSS — equivalently, iff
/// WebFold collapses the tree into a single fold.
pub fn gle_feasible(tree: &Tree, spontaneous: &RateVector, tol: f64) -> bool {
    let n = tree.len();
    let uniform = RateVector::uniform(n, spontaneous.total() / n as f64);
    check_feasibility(tree, spontaneous, &uniform, tol).is_feasible()
}

/// Draws a uniformly random *feasible* assignment: every node serves a
/// random fraction of what flows through it, and the root absorbs the
/// rest (Constraints 1 and 2 hold by construction).
///
/// These competitors span the whole feasible polytope and are the
/// adversaries in the TLB optimality property test.
///
/// # Panics
///
/// Panics if `spontaneous` does not validate against `tree`.
pub fn random_feasible_assignment<R: Rng + ?Sized>(
    rng: &mut R,
    tree: &Tree,
    spontaneous: &RateVector,
) -> RateVector {
    spontaneous
        .validate_for(tree)
        .expect("rates must match tree");
    let n = tree.len();
    let mut load = RateVector::zeros(n);
    let mut forwarded = RateVector::zeros(n);
    for u in tree.bottom_up() {
        let mut through = spontaneous[u];
        for &c in tree.children(u) {
            through += forwarded[c];
        }
        if tree.parent(u).is_none() {
            load[u] = through; // Constraint 1: the root serves everything left
            forwarded[u] = 0.0;
        } else {
            let fraction: f64 = rng.gen();
            load[u] = fraction * through;
            forwarded[u] = through - load[u];
        }
    }
    load
}

/// Verifies that `candidate` is TLB-optimal for `tree`/`spontaneous` by
/// comparison against the WebFold oracle: the descending-sorted load
/// vectors must agree within `tol` entrywise.
pub fn is_tlb(tree: &Tree, spontaneous: &RateVector, candidate: &RateVector, tol: f64) -> bool {
    if !check_feasibility(tree, spontaneous, candidate, tol).is_feasible() {
        return false;
    }
    let oracle = webfold(tree, spontaneous);
    let a = candidate.sorted_descending();
    let b = oracle.load().sorted_descending();
    a.iter().zip(&b).all(|(x, y)| (x - y).abs() <= tol)
}

/// Result of measuring an assignment against the TLB oracle.
#[derive(Debug, Clone)]
pub struct TlbReport {
    /// The oracle assignment computed by WebFold.
    pub oracle: RateVector,
    /// Euclidean distance from the candidate to the oracle.
    pub distance: f64,
    /// Maximum load of the candidate.
    pub max_load: f64,
    /// Maximum load of the oracle (the minimized `L_max`).
    pub optimal_max_load: f64,
    /// Whether the candidate is feasible.
    pub feasible: bool,
}

/// Measures `candidate` against the WebFold oracle.
///
/// # Panics
///
/// Panics if the vectors do not validate against `tree`.
pub fn tlb_report(
    tree: &Tree,
    spontaneous: &RateVector,
    candidate: &RateVector,
    tol: f64,
) -> TlbReport {
    let oracle = webfold(tree, spontaneous).into_load();
    TlbReport {
        distance: candidate.euclidean_distance(&oracle),
        max_load: candidate.max(),
        optimal_max_load: oracle.max(),
        feasible: check_feasibility(tree, spontaneous, candidate, tol).is_feasible(),
        oracle,
    }
}

/// The node-level *potential barrier* predicate of Section 5.2, at the
/// load level: node `j` is a potential barrier when it has a parent `i`
/// and two children `k`, `k'` with `L_k' >= L_j >= L_i > L_k`. The
/// inequalities are taken within `tol` (converged simulations sit at the
/// knife edge `L_k' == L_j == L_i`).
///
/// (Whether the barrier *binds* additionally depends on which documents
/// `j` caches — see the document-level simulator.)
pub fn potential_barrier_nodes(tree: &Tree, load: &RateVector, tol: f64) -> Vec<NodeId> {
    let mut out = Vec::new();
    for j in tree.nodes() {
        let Some(i) = tree.parent(j) else { continue };
        let kids = tree.children(j);
        if kids.len() < 2 {
            continue;
        }
        let has_high = kids.iter().any(|&k| load[k] >= load[j] - tol);
        let has_low = kids.iter().any(|&k| load[i] > load[k] + tol);
        if has_high && load[j] >= load[i] - tol && has_low {
            out.push(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use ww_topology::paper;

    #[test]
    fn feasibility_checker_agrees_with_hand_examples() {
        let s = paper::fig2b();
        let tlb = paper::fig2b_tlb();
        let f = check_feasibility(&s.tree, &s.spontaneous, &tlb, DEFAULT_TOL);
        assert!(f.is_feasible());
        let gle = RateVector::uniform(5, 20.0);
        let f = check_feasibility(&s.tree, &s.spontaneous, &gle, DEFAULT_TOL);
        assert!(!f.nss);
    }

    #[test]
    fn gle_feasibility_matches_fold_count() {
        let a = paper::fig2a();
        assert!(gle_feasible(&a.tree, &a.spontaneous, DEFAULT_TOL));
        assert!(webfold(&a.tree, &a.spontaneous).is_gle());

        let b = paper::fig2b();
        assert!(!gle_feasible(&b.tree, &b.spontaneous, DEFAULT_TOL));
        assert!(!webfold(&b.tree, &b.spontaneous).is_gle());
    }

    #[test]
    fn random_feasible_assignments_are_feasible() {
        let s = paper::fig6();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let cand = random_feasible_assignment(&mut rng, &s.tree, &s.spontaneous);
            let f = check_feasibility(&s.tree, &s.spontaneous, &cand, 1e-6);
            assert!(f.is_feasible());
            assert!((cand.total() - s.total_demand()).abs() < 1e-6);
        }
    }

    #[test]
    fn webfold_beats_random_competitors_lexicographically() {
        // Theorem 1, empirically: no feasible assignment sorts below the
        // WebFold assignment.
        let mut rng = StdRng::seed_from_u64(2);
        for s in paper::all_scenarios() {
            let oracle = webfold(&s.tree, &s.spontaneous).into_load();
            for _ in 0..200 {
                let cand = random_feasible_assignment(&mut rng, &s.tree, &s.spontaneous);
                let ord = oracle.compare_balance(&cand, 1e-9);
                assert_ne!(
                    ord,
                    std::cmp::Ordering::Greater,
                    "{}: random feasible assignment beat WebFold",
                    s.name
                );
            }
        }
    }

    #[test]
    fn is_tlb_accepts_oracle_and_rejects_perturbations() {
        let s = paper::fig4();
        let oracle = webfold(&s.tree, &s.spontaneous).into_load();
        assert!(is_tlb(&s.tree, &s.spontaneous, &oracle, 1e-9));
        // A feasible but unbalanced competitor: root serves everything.
        let mut all_at_root = RateVector::zeros(s.tree.len());
        all_at_root[s.tree.root()] = s.total_demand();
        assert!(!is_tlb(&s.tree, &s.spontaneous, &all_at_root, 1e-9));
    }

    #[test]
    fn tlb_report_distances() {
        let s = paper::fig2b();
        let r = tlb_report(&s.tree, &s.spontaneous, &paper::fig2b_tlb(), 1e-9);
        assert!(r.feasible);
        assert!(r.distance < 1e-9);
        assert_eq!(r.max_load, r.optimal_max_load);
    }

    #[test]
    fn lemma_checkers_pass_on_webfold_output() {
        for s in paper::all_scenarios() {
            let folded = webfold(&s.tree, &s.spontaneous);
            assert!(check_monotone_non_increasing(&s.tree, folded.load(), 1e-9));
            assert!(check_zero_interfold_flow(
                &s.tree,
                &s.spontaneous,
                &folded,
                1e-9
            ));
        }
    }

    #[test]
    fn monotone_checker_rejects_increasing_chains() {
        let tree = Tree::from_parents(&[None, Some(0)]).unwrap();
        let bad = RateVector::from(vec![1.0, 2.0]);
        assert!(!check_monotone_non_increasing(&tree, &bad, 1e-9));
    }

    #[test]
    fn barrier_predicate_fires_on_fig7_stall() {
        // Figure 7(a) without tunneling: loads equalize on {0,1,3} at 120
        // while node 2 starves at 0 — node 1 is the potential barrier.
        let b = paper::fig7();
        let stalled = RateVector::from(vec![120.0, 120.0, 0.0, 120.0]);
        let barriers = potential_barrier_nodes(&b.tree, &stalled, 1e-9);
        assert_eq!(barriers, vec![NodeId::new(1)]);
    }

    #[test]
    fn barrier_predicate_quiet_at_tlb() {
        let b = paper::fig7();
        let barriers = potential_barrier_nodes(&b.tree, &b.tlb, 1e-9);
        // At TLB all loads are equal: L_i > L_k fails, no barrier.
        assert!(barriers.is_empty());
    }
}
