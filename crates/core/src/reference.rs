//! Naive reference engines: the original HashMap / clone-per-round
//! formulations of [`RateWave`](crate::wave::RateWave) and
//! [`DocSim`](crate::docsim::DocSim).
//!
//! The production engines keep per-document state in dense slabs indexed
//! through [`ww_model::DocTable`] and double-buffer their vectors; these
//! reference implementations keep the straightforward formulation —
//! `HashMap<DocId, f64>` tables, `HashSet<DocId>` copy sets, and a full
//! `RateVector` clone every diffusion round. They exist for two reasons:
//!
//! 1. **Golden-trace equivalence**: the dense engines must produce
//!    bit-identical convergence traces and statistics (see
//!    `crates/core/tests/golden_traces.rs`), which pins the refactor to
//!    the paper-validated semantics.
//! 2. **Measured speedups**: the `webwave-bench` runner and the
//!    `webfold_scaling` criterion bench report dense-vs-naive throughput,
//!    so every future PR has a perf trajectory
//!    (`BENCH_webfold_scaling.json`).
//!
//! Wherever the original code iterated a `HashMap` in arbitrary order into
//! an order-insensitive consumer, the reference iterates in ascending
//! document order instead. This fixes one representative of the original's
//! nondeterministic float-accumulation orders, making the reference —
//! and therefore the golden tests — deterministic.

use crate::docsim::{DocSimConfig, DocSimStats};
use crate::fold::webfold;
use std::collections::{HashMap, HashSet, VecDeque};
use ww_cache::{plan_push, plan_shed};
use ww_model::{DocId, NodeId, RateVector, Tree};
use ww_stats::ConvergenceTrace;
use ww_workload::DocMix;

/// The original clone-per-round rate-level WebWave engine.
///
/// Semantics are identical to [`crate::wave::RateWave`]; every round
/// allocates two fresh `RateVector`s (estimates and next loads), one
/// forwarded vector, and (under staleness) a history clone.
#[derive(Debug, Clone)]
pub struct NaiveRateWave {
    tree: Tree,
    spontaneous: RateVector,
    load: RateVector,
    forwarded: RateVector,
    alpha: f64,
    staleness: usize,
    history: VecDeque<RateVector>,
    oracle: RateVector,
    trace: ConvergenceTrace,
    round: usize,
}

impl NaiveRateWave {
    /// Starts a run from the cold state (root serves everything).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`RateWave::new`](crate::wave::RateWave::new).
    pub fn new(tree: &Tree, spontaneous: &RateVector, config: crate::wave::WaveConfig) -> Self {
        let mut initial = RateVector::zeros(tree.len());
        initial[tree.root()] = spontaneous.total();
        spontaneous
            .validate_for(tree)
            .expect("spontaneous rates must match the tree");
        let assignment = ww_model::LoadAssignment::new(tree, spontaneous, initial.clone())
            .expect("initial load must match the tree");
        assert!(
            assignment.check_feasible(1e-6).is_ok(),
            "initial load assignment must be feasible"
        );
        let max_deg = tree
            .nodes()
            .map(|u| tree.children(u).len() + usize::from(tree.parent(u).is_some()))
            .max()
            .unwrap_or(0)
            .max(1);
        let alpha = config.alpha.unwrap_or(1.0 / (max_deg as f64 + 1.0));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        let oracle = webfold(tree, spontaneous).into_load();
        let forwarded = assignment.forwarded().clone();
        let mut trace = ConvergenceTrace::new();
        trace.push(initial.euclidean_distance(&oracle));
        NaiveRateWave {
            tree: tree.clone(),
            spontaneous: spontaneous.clone(),
            load: initial,
            forwarded,
            alpha,
            staleness: config.staleness,
            history: VecDeque::new(),
            oracle,
            trace,
            round: 0,
        }
    }

    fn estimates(&self) -> &RateVector {
        if self.staleness == 0 || self.history.is_empty() {
            &self.load
        } else {
            &self.history[0]
        }
    }

    /// One synchronous round, cloning the estimate and next-load vectors.
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.tree.len();
        let est = self.estimates().clone();
        let mut next = self.load.clone();

        for c_idx in 0..n {
            let c = NodeId::new(c_idx);
            let Some(p) = self.tree.parent(c) else {
                continue;
            };
            let down = if self.load[p] > est[c] {
                (self.alpha * (self.load[p] - est[c])).min(self.forwarded[c])
            } else {
                0.0
            };
            let up = if self.load[c] > est[p] {
                (self.alpha * (self.load[c] - est[p])).min(self.load[c])
            } else {
                0.0
            };
            let net = down - up;
            next[p] -= net;
            next[c] += net;
        }

        let mut forwarded = RateVector::zeros(n);
        for u in self.tree.bottom_up() {
            let mut through = self.spontaneous[u];
            for &ch in self.tree.children(u) {
                through += forwarded[ch];
            }
            if self.tree.parent(u).is_none() {
                next[u] = through;
                forwarded[u] = 0.0;
            } else {
                next[u] = next[u].clamp(0.0, through);
                forwarded[u] = through - next[u];
            }
        }

        if self.staleness > 0 {
            self.history.push_back(self.load.clone());
            while self.history.len() > self.staleness {
                self.history.pop_front();
            }
        }

        self.load = next;
        self.forwarded = forwarded;
        self.trace.push(self.load.euclidean_distance(&self.oracle));
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Current served-rate vector.
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// Euclidean distance to the TLB oracle.
    pub fn distance_to_tlb(&self) -> f64 {
        self.load.euclidean_distance(&self.oracle)
    }

    /// Per-round distance trace.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }
}

/// The original hash-table document-level WebWave engine.
///
/// Semantics are identical to [`crate::docsim::DocSim`]: same diffusion
/// decisions, same copy pushes/deletions, same barrier detection and
/// tunneling — but all per-(node, document) state lives in
/// `HashMap<DocId, f64>` and `HashSet<DocId>`.
#[derive(Debug, Clone)]
pub struct NaiveDocSim {
    tree: Tree,
    docs: Vec<DocId>,
    demand: Vec<HashMap<DocId, f64>>,
    copies: Vec<HashSet<DocId>>,
    alloc: Vec<HashMap<DocId, f64>>,
    served: Vec<HashMap<DocId, f64>>,
    forwarded: Vec<HashMap<DocId, f64>>,
    load: RateVector,
    alpha: f64,
    config: DocSimConfig,
    underload_streak: Vec<usize>,
    oracle: RateVector,
    trace: ConvergenceTrace,
    stats: DocSimStats,
    round: usize,
}

impl NaiveDocSim {
    /// Builds a simulation; the root initially holds every document.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`DocSim::new`](crate::docsim::DocSim::new).
    pub fn new(tree: &Tree, mix: &DocMix, config: DocSimConfig) -> Self {
        assert_eq!(mix.len(), tree.len(), "doc mix must cover the tree");
        let n = tree.len();
        let docs = mix.documents();
        let mut demand: Vec<HashMap<DocId, f64>> = vec![HashMap::new(); n];
        for u in tree.nodes() {
            for &(d, r) in mix.demands_of(u) {
                if r > 0.0 {
                    demand[u.index()].insert(d, r);
                }
            }
        }
        let mut copies: Vec<HashSet<DocId>> = vec![HashSet::new(); n];
        copies[tree.root().index()] = docs.iter().copied().collect();

        let max_deg = tree
            .nodes()
            .map(|u| tree.children(u).len() + usize::from(tree.parent(u).is_some()))
            .max()
            .unwrap_or(0)
            .max(1);
        let alpha = config.alpha.unwrap_or(1.0 / (max_deg as f64 + 1.0));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");

        let spontaneous = mix.spontaneous();
        let oracle = webfold(tree, &spontaneous).into_load();

        let mut sim = NaiveDocSim {
            tree: tree.clone(),
            docs,
            demand,
            copies,
            alloc: vec![HashMap::new(); n],
            served: vec![HashMap::new(); n],
            forwarded: vec![HashMap::new(); n],
            load: RateVector::zeros(n),
            alpha,
            config,
            underload_streak: vec![0; n],
            oracle,
            trace: ConvergenceTrace::new(),
            stats: DocSimStats::default(),
            round: 0,
        };
        sim.recompute_flows();
        sim.trace.push(sim.distance_to_tlb());
        sim
    }

    /// Builds the Figure 7 barrier scenario directly.
    pub fn from_barrier_scenario(
        scenario: &ww_topology::paper::BarrierScenario,
        config: DocSimConfig,
    ) -> Self {
        let mut mix = DocMix::new(scenario.tree.len());
        for d in &scenario.demands {
            mix.set(d.origin, d.doc, d.rate);
        }
        NaiveDocSim::new(&scenario.tree, &mix, config)
    }

    fn recompute_flows(&mut self) {
        let n = self.tree.len();
        for i in 0..n {
            self.served[i].clear();
            self.forwarded[i].clear();
        }
        let mut load = vec![0.0; n];
        for &doc in &self.docs.clone() {
            for u in self.tree.bottom_up() {
                let i = u.index();
                let mut through = self.demand[i].get(&doc).copied().unwrap_or(0.0);
                for &c in self.tree.children(u) {
                    through += self.forwarded[c.index()].get(&doc).copied().unwrap_or(0.0);
                }
                if through <= 0.0 {
                    continue;
                }
                let served = if self.tree.parent(u).is_none() {
                    through
                } else if self.copies[i].contains(&doc) {
                    self.alloc[i].get(&doc).copied().unwrap_or(0.0).min(through)
                } else {
                    0.0
                };
                if served > 0.0 {
                    self.served[i].insert(doc, served);
                    load[i] += served;
                }
                let fwd = through - served;
                if fwd > 0.0 {
                    self.forwarded[i].insert(doc, fwd);
                }
            }
        }
        self.load = RateVector::from(load);
    }

    /// One protocol round (diffusion decisions, pushes, shedding,
    /// tunneling, flow recomputation).
    pub fn step(&mut self) {
        self.round += 1;
        let n = self.tree.len();
        let load = self.load.clone();

        for c_idx in 0..n {
            let c = NodeId::new(c_idx);
            let Some(p) = self.tree.parent(c) else {
                continue;
            };
            let (lp, lc) = (load[p], load[c]);
            if lp > lc {
                let want = self.alpha * (lp - lc);
                let taken = self.child_take(c, want);
                let remaining = want - taken;
                let pushed = if remaining > 1e-12 {
                    self.parent_push(p, c, remaining)
                } else {
                    0.0
                };
                if taken + pushed <= 1e-9 && self.forwarded_total(c) > 1e-9 {
                    self.underload_streak[c_idx] += 1;
                    self.stats.barrier_suspicions += 1;
                    if self.config.tunneling
                        && self.underload_streak[c_idx] > self.config.barrier_patience
                    {
                        self.tunnel(c, want);
                        self.underload_streak[c_idx] = 0;
                    }
                } else {
                    self.underload_streak[c_idx] = 0;
                }
            } else if lc > lp {
                let shed = self.alpha * (lc - lp);
                self.child_shed(c, shed);
                self.underload_streak[c_idx] = 0;
            } else {
                self.underload_streak[c_idx] = 0;
            }
        }

        self.recompute_flows();
        self.trace.push(self.distance_to_tlb());
    }

    fn child_take(&mut self, c: NodeId, want: f64) -> f64 {
        let i = c.index();
        if want <= 0.0 {
            return 0.0;
        }
        let mut candidates: Vec<(DocId, f64)> = self.forwarded[i]
            .iter()
            .filter(|(d, _)| self.copies[i].contains(d))
            .map(|(&d, &r)| (d, r))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        let mut taken = 0.0;
        for (d, avail) in candidates {
            if taken >= want {
                break;
            }
            let grab = avail.min(want - taken);
            *self.alloc[i].entry(d).or_insert(0.0) += grab;
            taken += grab;
        }
        taken
    }

    fn parent_push(&mut self, p: NodeId, c: NodeId, target: f64) -> f64 {
        let (pi, ci) = (p.index(), c.index());
        let caps: Vec<(DocId, f64)> = self.served[pi]
            .iter()
            .filter_map(|(&d, &sp)| {
                let fc = self.forwarded[ci].get(&d).copied().unwrap_or(0.0);
                let cap = sp.min(fc);
                (cap > 0.0).then_some((d, cap))
            })
            .collect();
        let plan = plan_push(&caps, target);
        let mut pushed = 0.0;
        let parent_is_root = self.tree.parent(p).is_none();
        for slice in plan {
            if self.copies[ci].insert(slice.doc) {
                self.stats.copy_pushes += 1;
            }
            *self.alloc[ci].entry(slice.doc).or_insert(0.0) += slice.rate;
            if !parent_is_root {
                let a = self.alloc[pi].entry(slice.doc).or_insert(0.0);
                *a = (*a - slice.rate).max(0.0);
            }
            pushed += slice.rate;
        }
        pushed
    }

    fn child_shed(&mut self, c: NodeId, target: f64) {
        let i = c.index();
        let served: Vec<(DocId, f64)> = self.served[i].iter().map(|(&d, &r)| (d, r)).collect();
        for slice in plan_shed(&served, target) {
            let a = self.alloc[i].entry(slice.doc).or_insert(0.0);
            *a = (*a - slice.rate).max(0.0);
            if slice.full && *a <= 1e-12 {
                self.alloc[i].remove(&slice.doc);
                self.copies[i].remove(&slice.doc);
                self.stats.copy_deletions += 1;
            }
        }
    }

    fn tunnel(&mut self, c: NodeId, want: f64) {
        let i = c.index();
        let mut candidates: Vec<(DocId, f64)> = self.forwarded[i]
            .iter()
            .filter(|(d, _)| !self.copies[i].contains(d))
            .map(|(&d, &r)| (d, r))
            .collect();
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        if let Some(&(doc, avail)) = candidates.first() {
            self.copies[i].insert(doc);
            *self.alloc[i].entry(doc).or_insert(0.0) += avail.min(want);
            self.stats.tunnel_fetches += 1;
        }
    }

    /// Sum of the forwarded rates at `c`, accumulated in ascending
    /// document order (the deterministic representative of the original's
    /// arbitrary hash order — see the module docs).
    fn forwarded_total(&self, c: NodeId) -> f64 {
        let mut docs: Vec<(DocId, f64)> = self.forwarded[c.index()]
            .iter()
            .map(|(&d, &r)| (d, r))
            .collect();
        docs.sort_by_key(|&(d, _)| d);
        docs.iter().map(|&(_, r)| r).sum()
    }

    /// Runs `rounds` protocol rounds.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Current aggregate served-rate vector.
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// Euclidean distance to the TLB oracle.
    pub fn distance_to_tlb(&self) -> f64 {
        self.load.euclidean_distance(&self.oracle)
    }

    /// Per-round distance trace.
    pub fn trace(&self) -> &ConvergenceTrace {
        &self.trace
    }

    /// Protocol activity counters.
    pub fn stats(&self) -> DocSimStats {
        self.stats
    }

    /// Documents node `u` currently holds copies of, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn copies_at(&self, u: NodeId) -> Vec<DocId> {
        let mut v: Vec<DocId> = self.copies[u.index()].iter().copied().collect();
        v.sort_unstable();
        v
    }
}
