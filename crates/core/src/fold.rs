//! WebFold — the provably optimal off-line TLB algorithm (paper, Figure 3).
//!
//! The central insight: tree nodes can be partitioned into *folds* —
//! contiguous regions that all carry equal load, with **no load flowing
//! between folds**. Each node in a fold serves
//! `eps(fold) / |fold|` where `eps` is the sum of spontaneous rates inside
//! the fold.
//!
//! Folds are built bottom-up: a fold `j` is *foldable* into its parent fold
//! `i` iff its per-node load exceeds the parent's
//! (`eps_j/|F_j| > eps_i/|F_i|`), and WebFold always folds the foldable
//! fold with **maximum per-node load** first. The resulting assignment
//! satisfies (Lemmas 1-3, Theorem 1):
//!
//! * loads are non-increasing from root to leaf,
//! * no load crosses fold boundaries (`A = 0` at every fold root),
//! * no sibling sharing (`A_i >= 0` everywhere),
//! * and the sorted load vector is lexicographically minimal over all
//!   feasible assignments — tree load balance (TLB).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use ww_model::{LeafRemoval, NodeId, RateVector, Tree};

/// One fold event in the order WebFold performed them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FoldEvent {
    /// Root node of the fold that was folded (disappeared).
    pub child_root: NodeId,
    /// Root node of the parent fold it merged into.
    pub parent_root: NodeId,
    /// Per-node load of the merged fold after this event.
    pub merged_load: f64,
}

/// The result of running WebFold: the fold partition, the TLB load
/// assignment, and the trace of fold events.
///
/// # Example
///
/// ```
/// use ww_model::{RateVector, Tree};
/// use ww_core::fold::webfold;
///
/// // Chain 0 <- 1 <- 2 with all 30 req/s generated at the leaf: one fold,
/// // 10 req/s per node — TLB equals GLE here.
/// let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
/// let e = RateVector::from(vec![0.0, 0.0, 30.0]);
/// let folded = webfold(&tree, &e);
/// assert_eq!(folded.fold_count(), 1);
/// assert_eq!(folded.load().as_slice(), &[10.0, 10.0, 10.0]);
/// assert!(folded.is_gle());
/// ```
#[derive(Debug, Clone)]
pub struct FoldedTree {
    load: RateVector,
    /// Representative (fold root node) for each node.
    fold_root_of: Vec<NodeId>,
    /// Fold roots in increasing node order.
    fold_roots: Vec<NodeId>,
    trace: Vec<FoldEvent>,
}

impl FoldedTree {
    /// The TLB load assignment `L` (requests/second per node).
    pub fn load(&self) -> &RateVector {
        &self.load
    }

    /// Consumes self and returns the TLB load assignment.
    pub fn into_load(self) -> RateVector {
        self.load
    }

    /// Number of folds in the final partition.
    pub fn fold_count(&self) -> usize {
        self.fold_roots.len()
    }

    /// `true` when the whole tree collapsed into a single fold — exactly
    /// the case where the TLB assignment achieves Global Load Equality.
    pub fn is_gle(&self) -> bool {
        self.fold_roots.len() == 1
    }

    /// The root node of the fold containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn fold_root(&self, node: NodeId) -> NodeId {
        self.fold_root_of[node.index()]
    }

    /// `true` when two nodes ended up in the same fold.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn same_fold(&self, a: NodeId, b: NodeId) -> bool {
        self.fold_root_of[a.index()] == self.fold_root_of[b.index()]
    }

    /// The members of every fold, keyed by fold root, sorted by root id;
    /// members sorted by node id.
    pub fn folds(&self) -> Vec<(NodeId, Vec<NodeId>)> {
        let mut out: Vec<(NodeId, Vec<NodeId>)> =
            self.fold_roots.iter().map(|&r| (r, Vec::new())).collect();
        for (i, &r) in self.fold_root_of.iter().enumerate() {
            let slot = out
                .binary_search_by_key(&r, |&(root, _)| root)
                .expect("fold root present");
            out[slot].1.push(NodeId::new(i));
        }
        out
    }

    /// The sequence of fold events, in execution order.
    ///
    /// Empty for trees produced by [`IncrementalFold::refold_path`]: the
    /// incremental algorithm reaches the same partition without replaying
    /// the global merge order, so no event sequence is recorded.
    pub fn trace(&self) -> &[FoldEvent] {
        &self.trace
    }

    /// Every fold root, in increasing node order.
    pub fn fold_roots(&self) -> &[NodeId] {
        &self.fold_roots
    }

    /// The fold-root representative of every node, indexed by node id.
    pub fn fold_root_of(&self) -> &[NodeId] {
        &self.fold_root_of
    }
}

/// Per-fold bookkeeping during the run.
#[derive(Debug, Clone)]
struct FoldState {
    /// Tree node at the fold's root.
    root: NodeId,
    members: usize,
    eps: f64,
    /// Fold id of the parent fold (`None` for the fold holding the tree
    /// root).
    parent: Option<usize>,
    /// Child fold ids (active ones only; pruned lazily).
    children: Vec<usize>,
    active: bool,
}

impl FoldState {
    fn per_node_load(&self) -> f64 {
        self.eps / self.members as f64
    }
}

/// Heap key: max per-node load first, ties broken toward the smallest
/// fold-root id for determinism.
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapKey {
    load: f64,
    root: usize,
    fold: usize,
}

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.load
            .total_cmp(&other.load)
            .then_with(|| Reverse(self.root).cmp(&Reverse(other.root)))
    }
}

/// The order in which foldable folds are merged.
///
/// The paper's algorithm folds the foldable fold with **maximum per-node
/// load** first; [`FoldOrder::FirstFoldable`] is the ablation (experiment
/// A2) that merges any foldable fold in scan order instead, to measure
/// what the ordering rule buys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FoldOrder {
    /// Fold the maximum per-node-load fold first (the paper's rule).
    #[default]
    MaxLoadFirst,
    /// Fold any foldable fold, in node-id scan order (ablation).
    FirstFoldable,
}

/// Runs WebFold with an explicit fold-order policy (see [`FoldOrder`]).
///
/// # Panics
///
/// Panics if `spontaneous` does not validate against `tree`.
pub fn webfold_with_order(tree: &Tree, spontaneous: &RateVector, order: FoldOrder) -> FoldedTree {
    match order {
        FoldOrder::MaxLoadFirst => webfold(tree, spontaneous),
        FoldOrder::FirstFoldable => webfold_first_foldable(tree, spontaneous),
    }
}

/// The ablation variant: repeatedly merges the first foldable fold found
/// in node-id order. `O(n^2)` worst case; used only to study the effect
/// of the paper's max-load-first rule.
fn webfold_first_foldable(tree: &Tree, spontaneous: &RateVector) -> FoldedTree {
    spontaneous
        .validate_for(tree)
        .expect("spontaneous rates must match the tree");
    let n = tree.len();
    let mut folds: Vec<FoldState> = (0..n)
        .map(|i| {
            let node = NodeId::new(i);
            FoldState {
                root: node,
                members: 1,
                eps: spontaneous[node],
                parent: tree.parent(node).map(NodeId::index),
                children: tree.children(node).iter().map(|c| c.index()).collect(),
                active: true,
            }
        })
        .collect();
    let mut trace = Vec::new();
    loop {
        let mut merged_any = false;
        for c in 0..n {
            if !folds[c].active {
                continue;
            }
            let Some(p) = folds[c].parent else { continue };
            if folds[c].per_node_load() <= folds[p].per_node_load() {
                continue;
            }
            let (c_members, c_eps, c_children) = {
                let fc = &mut folds[c];
                fc.active = false;
                (fc.members, fc.eps, std::mem::take(&mut fc.children))
            };
            let child_root = folds[c].root;
            folds[p].members += c_members;
            folds[p].eps += c_eps;
            folds[p].children.retain(|&x| x != c);
            for &gc in &c_children {
                folds[gc].parent = Some(p);
            }
            folds[p].children.extend(c_children.iter().copied());
            trace.push(FoldEvent {
                child_root,
                parent_root: folds[p].root,
                merged_load: folds[p].per_node_load(),
            });
            merged_any = true;
        }
        if !merged_any {
            break;
        }
    }
    finalize(tree, &folds, trace)
}

/// Shared tail of both variants: resolve fold membership and loads.
fn finalize(tree: &Tree, folds: &[FoldState], trace: Vec<FoldEvent>) -> FoldedTree {
    let n = tree.len();
    let mut fold_root_of: Vec<NodeId> = vec![NodeId::new(0); n];
    for &u in tree.bfs_order() {
        if folds[u.index()].active {
            fold_root_of[u.index()] = u;
        } else {
            let p = tree.parent(u).expect("inactive fold root has a parent");
            fold_root_of[u.index()] = fold_root_of[p.index()];
        }
    }
    let mut load = RateVector::zeros(n);
    for i in 0..n {
        let r = fold_root_of[i].index();
        load[NodeId::new(i)] = folds[r].per_node_load();
    }
    let fold_roots: Vec<NodeId> = (0..n)
        .filter(|&i| folds[i].active)
        .map(NodeId::new)
        .collect();
    FoldedTree {
        load,
        fold_root_of,
        fold_roots,
        trace,
    }
}

/// Runs WebFold on `tree` with spontaneous rates `spontaneous`, returning
/// the fold partition and TLB assignment.
///
/// Runs in `O(n log n)` for typical inputs (lazy max-heap over foldable
/// folds; a fold's children are re-examined only when their parent fold
/// merges upward).
///
/// # Panics
///
/// Panics if `spontaneous` does not validate against `tree` (wrong length
/// or negative/non-finite rates).
pub fn webfold(tree: &Tree, spontaneous: &RateVector) -> FoldedTree {
    spontaneous
        .validate_for(tree)
        .expect("spontaneous rates must match the tree");
    let n = tree.len();

    // WebFold(T) step (2): every node starts as its own fold.
    let mut folds: Vec<FoldState> = (0..n)
        .map(|i| {
            let node = NodeId::new(i);
            FoldState {
                root: node,
                members: 1,
                eps: spontaneous[node],
                parent: tree.parent(node).map(NodeId::index),
                children: tree.children(node).iter().map(|c| c.index()).collect(),
                active: true,
            }
        })
        .collect();

    let mut heap: BinaryHeap<HeapKey> = BinaryHeap::new();
    for (i, f) in folds.iter().enumerate() {
        if f.parent.is_some() {
            heap.push(HeapKey {
                load: f.per_node_load(),
                root: f.root.index(),
                fold: i,
            });
        }
    }

    let mut trace = Vec::new();

    // Fold(7) step (2): repeatedly fold the maximum-load foldable fold.
    while let Some(key) = heap.pop() {
        let c = key.fold;
        if !folds[c].active {
            continue; // stale: fold already merged away
        }
        if folds[c].per_node_load() != key.load || folds[c].root.index() != key.root {
            continue; // stale: load changed since this entry was pushed
        }
        let Some(p) = folds[c].parent else { continue };
        // Foldable(j, i): per-node load strictly greater than parent's.
        if folds[c].per_node_load() <= folds[p].per_node_load() {
            continue; // not foldable now; a fresh entry is pushed if that changes
        }

        // Perform the fold: merge c into p.
        let (c_members, c_eps, c_children) = {
            let fc = &mut folds[c];
            fc.active = false;
            (fc.members, fc.eps, std::mem::take(&mut fc.children))
        };
        let child_root = folds[c].root;
        folds[p].members += c_members;
        folds[p].eps += c_eps;
        folds[p].children.retain(|&x| x != c);
        for &gc in &c_children {
            folds[gc].parent = Some(p);
        }
        folds[p].children.extend(c_children.iter().copied());

        let merged_load = folds[p].per_node_load();
        trace.push(FoldEvent {
            child_root,
            parent_root: folds[p].root,
            merged_load,
        });

        // The merged fold may now be foldable into *its* parent.
        if folds[p].parent.is_some() {
            heap.push(HeapKey {
                load: merged_load,
                root: folds[p].root.index(),
                fold: p,
            });
        }
        // c's former children saw their parent's load drop from c's level
        // to `merged_load`; they may have become foldable.
        for &gc in &c_children {
            if folds[gc].active {
                heap.push(HeapKey {
                    load: folds[gc].per_node_load(),
                    root: folds[gc].root.index(),
                    fold: gc,
                });
            }
        }
    }

    // WebFold step (4): every member serves eps / |F|; see `finalize`.
    finalize(tree, &folds, trace)
}

/// Incremental WebFold: caches one *summary* per node — the fold that
/// would sit at the top of the node's subtree if the subtree were folded
/// in isolation (`members`, `eps`), plus the roots of the frozen folds
/// that summary *exposes* to its parent (the subtree folds that were not
/// absorbed). A barrier event dirties only the path from the touched
/// node to the root; [`IncrementalFold::refold_path`] recomputes those
/// summaries bottom-up against the clean cached children and re-emits
/// the partition — `O(depth · branching · log branching)` per event plus
/// an `O(n)` emission pass, instead of the full `O(n log n)` sweep.
///
/// The result is **bit-identical** to [`webfold`] (same loads, same fold
/// roots, same membership): both algorithms perform the same merges in
/// the same per-fold order. The global heap pops in non-increasing
/// key order (every re-push is bounded by the key just popped),
/// so all merges into one fold interleave exactly as the local per-node
/// heap replays them, and every foldability comparison sees the same
/// `eps / members` doubles. The fold-event [`FoldedTree::trace`] is the
/// one thing not reproduced — the incremental path never materialises
/// the global merge sequence — so emitted trees carry an empty trace.
///
/// Structural churn must be reported explicitly ([`IncrementalFold::on_join`],
/// [`IncrementalFold::on_leave`]); rate changes are discovered by diffing
/// the spontaneous vector handed to `refold_path` against the cached one.
///
/// # Example
///
/// ```
/// use ww_model::{NodeId, RateVector, Tree};
/// use ww_core::fold::{webfold, IncrementalFold};
///
/// let mut tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
/// let mut rates = vec![0.0, 0.0, 30.0];
/// let mut inc = IncrementalFold::new(&tree, &RateVector::from(rates.clone()));
///
/// // A leaf joins under node 1; only the path 3 -> 1 -> 0 re-folds.
/// let id = tree.add_leaf(NodeId::new(1)).unwrap();
/// rates.push(6.0);
/// inc.on_join(&tree, id);
/// let e = RateVector::from(rates);
/// let folded = inc.refold_path(&tree, &e);
/// assert_eq!(folded.load().as_slice(), webfold(&tree, &e).load().as_slice());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalFold {
    /// Member count of the node's top summary fold.
    members: Vec<usize>,
    /// Spontaneous-rate sum of the node's top summary fold.
    eps: Vec<f64>,
    /// Roots of the frozen folds the summary exposes upward.
    exposed: Vec<Vec<NodeId>>,
    /// Cached spontaneous rates, diffed on every refold.
    spont: Vec<f64>,
    /// Summaries invalidated since the last refold.
    dirty: Vec<bool>,
}

impl IncrementalFold {
    /// Builds the summary cache for `tree` with rates `spontaneous`.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against `tree`.
    pub fn new(tree: &Tree, spontaneous: &RateVector) -> Self {
        let n = tree.len();
        let mut inc = Self {
            members: vec![0; n],
            eps: vec![0.0; n],
            exposed: vec![Vec::new(); n],
            spont: vec![f64::NAN; n],
            dirty: vec![true; n],
        };
        let _ = inc.refold_path(tree, spontaneous);
        inc
    }

    /// Records a freshly appended leaf (call *after* [`Tree::add_leaf`],
    /// which always assigns the next id). Dirties the leaf's root path.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the last node of `tree` or the cache has
    /// drifted from the tree's size.
    pub fn on_join(&mut self, tree: &Tree, id: NodeId) {
        assert_eq!(
            id.index(),
            tree.len() - 1,
            "joined leaf must hold the appended id"
        );
        assert_eq!(self.members.len(), tree.len() - 1, "cache out of sync");
        self.members.push(0);
        self.eps.push(0.0);
        self.exposed.push(Vec::new());
        self.spont.push(f64::NAN);
        self.dirty.push(true);
        self.mark_path(tree, id);
    }

    /// Records a leaf departure (call *after* [`Tree::remove_leaf`] with
    /// the removal it returned). Mirrors the swap-remove renumbering and
    /// dirties both affected root paths: the departed leaf's former
    /// parent and the renumbered former-last node.
    ///
    /// # Panics
    ///
    /// Panics if the cache has drifted from the tree's size.
    pub fn on_leave(&mut self, tree: &Tree, removal: &LeafRemoval) {
        assert_eq!(self.members.len(), tree.len() + 1, "cache out of sync");
        let r = removal.removed.index();
        self.members.swap_remove(r);
        self.eps.swap_remove(r);
        self.exposed.swap_remove(r);
        self.spont.swap_remove(r);
        self.dirty.swap_remove(r);
        self.mark_path(tree, removal.parent);
        if removal.moved.is_some() {
            // Summaries naming the old last id live only on the moved
            // node's (new) ancestor chain; recompute rebuilds them
            // against the compacted numbering.
            self.mark_path(tree, NodeId::new(r));
        }
    }

    /// Re-folds the dirty root paths and returns the full partition,
    /// bit-identical (loads, roots, membership) to
    /// `webfold(tree, spontaneous)`. Rate deltas since the previous call
    /// are picked up by diffing `spontaneous` against the cached copy.
    ///
    /// # Panics
    ///
    /// Panics if `spontaneous` does not validate against `tree`, or if
    /// the tree's size changed without [`IncrementalFold::on_join`] /
    /// [`IncrementalFold::on_leave`] notifications.
    pub fn refold_path(&mut self, tree: &Tree, spontaneous: &RateVector) -> FoldedTree {
        spontaneous
            .validate_for(tree)
            .expect("spontaneous rates must match the tree");
        assert_eq!(
            self.members.len(),
            tree.len(),
            "structural churn must be reported via on_join/on_leave"
        );
        for i in 0..tree.len() {
            let rate = spontaneous[NodeId::new(i)];
            if self.spont[i].to_bits() != rate.to_bits() {
                self.spont[i] = rate;
                self.mark_path(tree, NodeId::new(i));
            }
        }
        let mut heap = BinaryHeap::new();
        for u in tree.bottom_up() {
            if self.dirty[u.index()] {
                self.recompute(tree, u, &mut heap);
            }
        }
        self.emit(tree)
    }

    /// Dirties `node` and every ancestor up to the root.
    fn mark_path(&mut self, tree: &Tree, node: NodeId) {
        // No early exit on an already-dirty node: a leave's swap-remove
        // relocates a summary (and its dirty flag) under new ancestors,
        // so dirtiness is not always upward-closed mid-update.
        for u in tree.path_to_root(node) {
            self.dirty[u.index()] = true;
        }
    }

    /// Replays the fold decisions for `u`'s subtree top against the
    /// children's cached summaries — the local equivalent of every
    /// global-heap merge whose target fold is rooted at `u`.
    fn recompute(&mut self, tree: &Tree, u: NodeId, heap: &mut BinaryHeap<HeapKey>) {
        let ui = u.index();
        let mut members = 1usize;
        let mut eps = self.spont[ui];
        heap.clear();
        for &c in tree.children(u) {
            let ci = c.index();
            heap.push(HeapKey {
                load: self.eps[ci] / self.members[ci] as f64,
                root: ci,
                fold: ci,
            });
        }
        let mut exposed = std::mem::take(&mut self.exposed[ui]);
        exposed.clear();
        // Foldable(j, i): strictly greater per-node load, max first —
        // the same comparison, in the same descending key order, as the
        // global heap (keys here are frozen, so no stale entries).
        while let Some(key) = heap.pop() {
            if key.load <= eps / members as f64 {
                // Merging only raises the open fold's load, so nothing
                // at or below this key can ever fold in: freeze the
                // rest as exposed roots.
                exposed.push(NodeId::new(key.root));
                while let Some(rest) = heap.pop() {
                    exposed.push(NodeId::new(rest.root));
                }
                break;
            }
            members += self.members[key.root];
            eps += self.eps[key.root];
            for &g in &self.exposed[key.root] {
                let gi = g.index();
                heap.push(HeapKey {
                    load: self.eps[gi] / self.members[gi] as f64,
                    root: gi,
                    fold: gi,
                });
            }
        }
        self.members[ui] = members;
        self.eps[ui] = eps;
        self.exposed[ui] = exposed;
        self.dirty[ui] = false;
    }

    /// Resolves the final partition: the root's summary fold plus the
    /// transitive closure of exposed folds, loads as `eps / members` —
    /// the same arithmetic as [`finalize`].
    fn emit(&self, tree: &Tree) -> FoldedTree {
        let n = tree.len();
        let mut active = vec![false; n];
        let mut stack = vec![tree.root()];
        while let Some(u) = stack.pop() {
            active[u.index()] = true;
            stack.extend(self.exposed[u.index()].iter().copied());
        }
        let mut fold_root_of: Vec<NodeId> = vec![NodeId::new(0); n];
        for &u in tree.bfs_order() {
            if active[u.index()] {
                fold_root_of[u.index()] = u;
            } else {
                let p = tree.parent(u).expect("inactive fold root has a parent");
                fold_root_of[u.index()] = fold_root_of[p.index()];
            }
        }
        let mut load = RateVector::zeros(n);
        for i in 0..n {
            let r = fold_root_of[i].index();
            load[NodeId::new(i)] = self.eps[r] / self.members[r] as f64;
        }
        let fold_roots: Vec<NodeId> = (0..n).filter(|&i| active[i]).map(NodeId::new).collect();
        FoldedTree {
            load,
            fold_root_of,
            fold_roots,
            trace: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_model::LoadAssignment;
    use ww_topology::paper;

    #[test]
    fn single_node_tree_serves_its_own_demand() {
        let tree = Tree::from_parents(&[None]).unwrap();
        let e = RateVector::from(vec![7.0]);
        let f = webfold(&tree, &e);
        assert_eq!(f.load().as_slice(), &[7.0]);
        assert_eq!(f.fold_count(), 1);
        assert!(f.trace().is_empty());
    }

    #[test]
    fn chain_with_leaf_demand_is_gle() {
        let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
        let e = RateVector::from(vec![0.0, 0.0, 30.0]);
        let f = webfold(&tree, &e);
        assert!(f.is_gle());
        assert_eq!(f.load().as_slice(), &[10.0, 10.0, 10.0]);
    }

    #[test]
    fn demand_at_root_cannot_spread_down() {
        // All demand at the root: NSS forbids pushing it to children.
        let tree = Tree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let e = RateVector::from(vec![30.0, 0.0, 0.0]);
        let f = webfold(&tree, &e);
        assert_eq!(f.load().as_slice(), &[30.0, 0.0, 0.0]);
        assert_eq!(f.fold_count(), 3);
        assert!(!f.is_gle());
    }

    #[test]
    fn fig2a_folds_to_gle() {
        let s = paper::fig2a();
        let f = webfold(&s.tree, &s.spontaneous);
        assert!(f.is_gle());
        assert_eq!(f.load().as_slice(), &[20.0; 5]);
    }

    #[test]
    fn fig2b_matches_hand_computed_tlb() {
        let s = paper::fig2b();
        let f = webfold(&s.tree, &s.spontaneous);
        assert_eq!(f.load().as_slice(), paper::fig2b_tlb().as_slice());
        assert_eq!(f.fold_count(), 2);
        // Folds: {0,1,3} and {2,4}.
        assert!(f.same_fold(NodeId::new(0), NodeId::new(1)));
        assert!(f.same_fold(NodeId::new(0), NodeId::new(3)));
        assert!(f.same_fold(NodeId::new(2), NodeId::new(4)));
        assert!(!f.same_fold(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn fig4_fold_sequence_cascades_as_documented() {
        let s = paper::fig4();
        let f = webfold(&s.tree, &s.spontaneous);
        // Final loads: {0,1,3,4,6} at 10.4, {2,5} at 4, {7} at 4.
        let expect = [10.4, 10.4, 4.0, 10.4, 10.4, 4.0, 10.4, 4.0];
        for (got, want) in f.load().as_slice().iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert_eq!(f.fold_count(), 3);
        // The documented fold order: 3->1, 6->4, {1,3}->0, {4,6}->fold(0), 5->2.
        let order: Vec<(usize, usize)> = f
            .trace()
            .iter()
            .map(|e| (e.child_root.index(), e.parent_root.index()))
            .collect();
        assert_eq!(order, vec![(3, 1), (6, 4), (1, 0), (4, 0), (5, 2)]);
    }

    #[test]
    fn fig7_reaches_uniform_90() {
        let b = paper::fig7();
        let f = webfold(&b.tree, &b.spontaneous);
        for &l in f.load().as_slice() {
            assert!((l - 90.0).abs() < 1e-9);
        }
        assert_eq!(f.fold_count(), 2); // {0,1,3} and {2}
        assert!(!f.is_gle());
        // GLE in *value* but split into folds with equal load is fine:
        // the load vector is uniform even though two folds exist.
        assert!(f.load().distance_to_uniform() < 1e-9);
    }

    #[test]
    fn lemma1_monotone_non_increasing_on_paper_trees() {
        for s in paper::all_scenarios() {
            let f = webfold(&s.tree, &s.spontaneous);
            for u in s.tree.nodes() {
                for &c in s.tree.children(u) {
                    assert!(
                        f.load()[u] >= f.load()[c] - 1e-9,
                        "{}: lemma 1 violated at {u}->{c}",
                        s.name
                    );
                }
            }
        }
    }

    #[test]
    fn lemma2_zero_flow_at_fold_roots() {
        for s in paper::all_scenarios() {
            let f = webfold(&s.tree, &s.spontaneous);
            let a = LoadAssignment::new(&s.tree, &s.spontaneous, f.load().clone()).unwrap();
            for (root, _) in f.folds() {
                assert!(
                    a.forwarded()[root].abs() < 1e-9,
                    "{}: fold root {root} forwards {}",
                    s.name,
                    a.forwarded()[root]
                );
            }
        }
    }

    #[test]
    fn lemma3_nss_and_constraint1_hold() {
        for s in paper::all_scenarios() {
            let f = webfold(&s.tree, &s.spontaneous);
            let a = LoadAssignment::new(&s.tree, &s.spontaneous, f.load().clone()).unwrap();
            assert!(a.check_feasible(1e-9).is_ok(), "{} infeasible", s.name);
        }
    }

    #[test]
    fn total_load_equals_total_demand() {
        for s in paper::all_scenarios() {
            let f = webfold(&s.tree, &s.spontaneous);
            assert!((f.load().total() - s.total_demand()).abs() < 1e-9);
        }
    }

    #[test]
    fn folds_partition_the_tree() {
        let s = paper::fig6();
        let f = webfold(&s.tree, &s.spontaneous);
        let mut seen = vec![false; s.tree.len()];
        for (_, members) in f.folds() {
            for m in members {
                assert!(!seen[m.index()], "node {m} in two folds");
                seen[m.index()] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn folds_are_contiguous_regions() {
        // Every non-root member of a fold has its parent in the same fold.
        let s = paper::fig6();
        let f = webfold(&s.tree, &s.spontaneous);
        for (root, members) in f.folds() {
            for m in members {
                if m != root {
                    let p = s.tree.parent(m).unwrap();
                    assert!(f.same_fold(m, p), "fold of {root} not contiguous at {m}");
                }
            }
        }
    }

    #[test]
    fn zero_demand_tree_has_all_zero_loads() {
        let s = paper::fig6();
        let f = webfold(&s.tree, &RateVector::zeros(s.tree.len()));
        assert!(f.load().as_slice().iter().all(|&l| l == 0.0));
    }

    #[test]
    fn first_foldable_order_is_feasible_on_paper_scenarios() {
        // On the paper's hand-crafted scenarios the ablation variant
        // happens to reach feasible partitions; on random trees it often
        // does not (see the next test) — the max-load-first rule is what
        // guarantees Lemma 3 in general.
        for s in ww_topology::paper::all_scenarios() {
            let f = webfold_with_order(&s.tree, &s.spontaneous, FoldOrder::FirstFoldable);
            assert!((f.load().total() - s.total_demand()).abs() < 1e-9);
            let a = LoadAssignment::new(&s.tree, &s.spontaneous, f.load().clone()).unwrap();
            assert!(a.check_feasible(1e-9).is_ok(), "{} infeasible", s.name);
        }
    }

    #[test]
    fn scan_order_violates_nss_on_random_trees() {
        // The ablation's central finding: folding in arbitrary order can
        // produce partitions whose even per-fold load split violates NSS.
        // Any scan-order result that *sorts* better than WebFold must be
        // one of those infeasible partitions (Theorem 1).
        use rand::SeedableRng;
        use std::cmp::Ordering;
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut infeasible = 0;
        for _ in 0..60 {
            let tree = ww_topology::random_tree_of_depth(&mut rng, 40, 6);
            let e = ww_workload::random_uniform(&mut rng, &tree, 0.0, 50.0);
            let scan = webfold_with_order(&tree, &e, FoldOrder::FirstFoldable);
            let feasible = LoadAssignment::new(&tree, &e, scan.load().clone())
                .unwrap()
                .check_feasible(1e-9)
                .is_ok();
            if !feasible {
                infeasible += 1;
            } else {
                // Feasible scan results can never beat WebFold.
                let max_first = webfold(&tree, &e);
                assert_ne!(
                    max_first.load().compare_balance(scan.load(), 1e-9),
                    Ordering::Greater,
                    "a feasible scan-order result beat WebFold"
                );
            }
        }
        assert!(
            infeasible > 10,
            "expected many NSS violations from scan order, got {infeasible}/60"
        );
    }

    #[test]
    #[should_panic(expected = "spontaneous rates must match")]
    fn mismatched_rates_panic() {
        let tree = Tree::from_parents(&[None]).unwrap();
        let _ = webfold(&tree, &RateVector::zeros(3));
    }
}
