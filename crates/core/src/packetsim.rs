//! Packet-level, event-driven WebWave — the sequential driver.
//!
//! The other engines exchange *rates*; this one exchanges *packets*. Each
//! node runs a router with a packet-filter membership set, a cache of
//! copies with token-bucket serve allocations, per-child per-document flow
//! meters, and two timers — the **gossip period** and the **diffusion
//! period** the paper says a realistic WebWave server would have
//! (Section 5). Client requests are Poisson streams; gossip messages
//! travel with link delay and can be lost (failure injection); copies are
//! pushed as messages; tunneling probes climb to the nearest upstream
//! holder and the granted copy descends back, paying the round trip hop
//! by hop.
//!
//! The node-level protocol itself lives in [`crate::packet`], shared with
//! the sharded parallel driver in the `ww-pdes` crate: every handler is
//! node-local, every random draw is content-keyed, and every cross-node
//! effect is a timestamped message. This sequential driver is simply one
//! event loop over the whole tree; the parallel driver runs one loop per
//! subtree shard and produces bit-identical results.
//!
//! # Performance
//!
//! Two hot-path structures are dense:
//!
//! * All per-document state is addressed through the simulation's
//!   [`DocTable`](ww_model::DocTable): token buckets live in flat
//!   per-node slabs, copy/filter membership in
//!   [`DocSet`](ww_model::DocSet) bitsets, and the three flow meters are
//!   [`DenseFlowTable`](ww_cache::DenseFlowTable) grids — no hashing on
//!   the per-packet path.
//! * The two strictly periodic timer streams live in
//!   [`TimerRing`]s outside the event heap. Ring fires carry sequence
//!   numbers from the queue's global counter, so the merged `(time, seq)`
//!   order is exactly what one combined heap would produce.
//!
//! The convergence trace is sampled once per diffusion epoch (at
//! `k * diffusion_period`), an `O(n)` pass per period — the previous
//! per-fire observer cost `O(n²)` per period, which dominated large
//! topologies.

use crate::packet::{
    self, BarrierOp, BarrierOutcome, DriverSource, NodeCtx, NodeState, PacketCounters, PacketEvent,
    PacketWorld, Scratch, SurgeryStep, UniverseGrowth,
};
use ww_model::{DocId, LeafRemoval, ModelError, NodeId, RateVector, Tree};
use ww_net::{TrafficClass, TrafficLedger};
use ww_sim::{EventQueue, RadixQueue, SimQueue, SimTime, TimerRing};
use ww_stats::ConvergenceTrace;
use ww_telemetry::{Counters, Key, Level, PhaseStat, Phases, Snapshot};
use ww_workload::DocMix;

pub use crate::packet::PacketSimConfig;

/// Counter key table of the sequential core driver (dense slots; see
/// `docs/observability.md` for the naming scheme). Everything here is
/// barrier-path bookkeeping — the per-packet hot loop records nothing.
pub static CORE_KEYS: &[Key] = &[
    Key::sum("core.barrier.ops"),
    Key::sum("core.surgery.sweeps"),
    Key::sum("core.surgery.removed"),
];
const K_BARRIER_OPS: usize = 0;
const K_SURGERY_SWEEPS: usize = 1;
const K_SURGERY_REMOVED: usize = 2;

/// Phase-name table of the sequential core driver.
pub static CORE_PHASES: &[&str] = &["core.phase.arrival_rebuild"];
const P_ARRIVAL_REBUILD: usize = 0;

/// Outcome of a finished packet-level run.
#[derive(Debug, Clone)]
pub struct PacketSimReport {
    /// Measured served rate per node over the final measurement window.
    pub served_rates: RateVector,
    /// The WebFold oracle for the offered demand.
    pub oracle: RateVector,
    /// Euclidean distance of the final measured rates to the oracle.
    pub final_distance: f64,
    /// Distance to the oracle sampled at every diffusion epoch boundary.
    pub trace: ConvergenceTrace,
    /// Message/byte ledger.
    pub ledger: TrafficLedger,
    /// Mean upward hops per served request.
    pub mean_hops: f64,
    /// Copies pushed parent-to-child.
    pub copy_pushes: u64,
    /// Tunneling fetches performed.
    pub tunnel_fetches: u64,
    /// Total requests served.
    pub served_requests: u64,
    /// Total simulation events processed (arrivals, packets, timer
    /// fires). The parallel driver reports the same count — events are
    /// partitioned across shards, never duplicated — which the golden
    /// tests pin; dividing by wall-clock time gives the engines'
    /// events/sec throughput metric.
    pub processed_events: u64,
    /// Cross-shard wire messages that found their bounded ring (or
    /// socket buffer) full and parked in the sender's unbounded overflow
    /// queue. Back-pressure bookkeeping, not a simulation quantity:
    /// always `0` for the sequential driver, and excluded from the
    /// bit-identity the golden tests pin (it depends on transport and
    /// thread timing, the numbers the simulation reports do not).
    pub overflow_parks: u64,
    /// Peak depth any single overflow queue reached — how far behind the
    /// slowest wire fell. `0` when no message ever parked.
    pub overflow_peak_parked: u64,
    /// Events processed per shard, indexed by shard id (one entry — the
    /// whole run — for the sequential driver). Deterministic for a given
    /// worker count, but *partition-dependent*: the vector's length and
    /// split vary with the worker count and with adaptive rebalancing,
    /// so the cross-worker golden comparisons exclude it (its **sum** is
    /// `processed_events`, which they do pin).
    pub shard_event_counts: Vec<u64>,
    /// Max/mean ratio of `shard_event_counts` — the whole-run load
    /// imbalance across shards, `1.0` meaning perfectly balanced (and
    /// trivially `1.0` for the sequential driver). Partition-dependent
    /// like `shard_event_counts`, and likewise excluded from the
    /// cross-worker bit-identity the golden tests pin.
    pub imbalance: f64,
}

/// The sequential packet-level simulator, generic over its pending-event
/// structure `Q`.
///
/// Use the [`PacketSim`] alias (radix-bucketed queue, the fast default)
/// or [`HeapPacketSim`] (`BinaryHeap` reference backend). The two
/// backends deliver events in exactly the same `(time, seq)` order —
/// `ww-sim`'s parity property tests pin that — so every reported number
/// is bit-identical between them.
///
/// # Example
///
/// ```
/// use ww_model::{DocId, NodeId, Tree};
/// use ww_workload::DocMix;
/// use ww_core::packetsim::{PacketSim, PacketSimConfig};
///
/// // A chain with one hot document requested at the leaf.
/// let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
/// let mut mix = DocMix::new(3);
/// mix.set(NodeId::new(2), DocId::new(1), 300.0);
/// let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
/// let report = sim.run(30.0);
/// // The protocol spreads the 300 req/s across all three nodes (TLB = 100 each).
/// assert!(report.final_distance < report.trace.initial().unwrap());
/// ```
#[derive(Debug)]
pub struct GenericPacketSim<Q> {
    world: PacketWorld,
    queue: Q,
    gossip_ring: TimerRing,
    diffusion_ring: TimerRing,
    nodes: Vec<NodeState>,
    /// Per node: `true` when the control link to its parent is failed.
    /// Gossip, copy pushes, and diffusion decisions stop crossing the
    /// edge; request packets (the data plane) keep flowing.
    failed_up: Vec<bool>,
    ledger: TrafficLedger,
    counters: PacketCounters,
    scratch: Scratch,
    outbox: Vec<(SimTime, PacketEvent)>,
    trace: ConvergenceTrace,
    /// Diffusion-epoch samples taken so far (next at `(k+1) * period`).
    epochs_sampled: u64,
    /// Open barrier batch: the queue-surgery steps accumulated so far
    /// (`None` when applying unbatched). See
    /// [`GenericPacketSim::begin_batch`].
    batch: Option<Vec<SurgeryStep>>,
    /// Telemetry level requested via [`GenericPacketSim::set_telemetry`].
    tel_level: Level,
    /// Barrier-path counter slab over [`CORE_KEYS`].
    tel: Counters,
    /// Phase timers over [`CORE_PHASES`] (active at full spans only).
    tel_phases: Phases,
}

/// The standard sequential packet simulator: event storage is the
/// radix-bucketed [`RadixQueue`], O(1) amortized on the simulation's
/// near-monotone schedule.
pub type PacketSim = GenericPacketSim<RadixQueue<PacketEvent>>;

/// The reference backend: the comparison-based `BinaryHeap`
/// [`EventQueue`]. Bit-identical to [`PacketSim`] (kept for the
/// old-vs-new hot-path benchmarks and as the parity anchor).
pub type HeapPacketSim = GenericPacketSim<EventQueue<PacketEvent>>;

impl<Q: SimQueue<PacketEvent> + Default> GenericPacketSim<Q> {
    /// Builds a simulator for `tree` under the per-node document demand
    /// `mix`.
    ///
    /// # Panics
    ///
    /// Panics if `mix` does not cover `tree` or config values are out of
    /// range.
    pub fn new(tree: &Tree, mix: &DocMix, config: PacketSimConfig) -> Self {
        let world = PacketWorld::new(tree, mix, config);
        let n = world.len();
        let mut nodes: Vec<NodeState> = tree
            .nodes()
            .map(|u| packet::init_state(&world, u))
            .collect();

        let mut queue = Q::default();
        let mut gossip_ring = TimerRing::new(SimTime::from_secs(config.gossip_period), n);
        let mut diffusion_ring = TimerRing::new(SimTime::from_secs(config.diffusion_period), n);

        // Prime: first arrivals, then the two staggered timers, in node
        // order (the same relative seq order the parallel driver
        // reproduces per shard).
        let mut outbox = Vec::new();
        for (i, state) in nodes.iter_mut().enumerate() {
            let node = NodeId::new(i);
            packet::initial_arrivals(&world, state, node, &mut outbox);
            for (at, ev) in outbox.drain(..) {
                queue.schedule(at, ev);
            }
            let gossip_seq = queue.alloc_seq();
            gossip_ring.insert(i, world.gossip_phase(i), gossip_seq);
            let diffusion_seq = queue.alloc_seq();
            diffusion_ring.insert(i, world.diffusion_phase(i), diffusion_seq);
        }

        GenericPacketSim {
            world,
            queue,
            gossip_ring,
            diffusion_ring,
            nodes,
            failed_up: vec![false; n],
            ledger: TrafficLedger::new(),
            counters: PacketCounters::default(),
            scratch: Scratch::default(),
            outbox,
            trace: ConvergenceTrace::new(),
            epochs_sampled: 0,
            batch: None,
            tel_level: Level::Off,
            tel: Counters::off(CORE_KEYS),
            tel_phases: Phases::new(CORE_PHASES, Level::Off),
        }
    }

    /// Sets the instrumentation level. Safe to call at any barrier:
    /// counters and phase timers restart from zero; the simulation state
    /// is untouched (telemetry is observation-only, pinned by the golden
    /// on-vs-off tests).
    pub fn set_telemetry(&mut self, level: Level) {
        self.tel_level = level;
        self.tel = Counters::new(CORE_KEYS, level);
        self.tel_phases = Phases::new(CORE_PHASES, level);
        self.world.tel.timed = level.spans_on();
    }

    /// Everything this driver recorded since
    /// [`Self::set_telemetry`]: barrier-path counters, oracle
    /// refold/sweep counts, and (at full spans) phase timings. Empty at
    /// [`Level::Off`].
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        if !self.tel_level.counters_on() {
            return snap;
        }
        snap.push_counter("core.oracle.refolds", self.world.tel.refolds);
        snap.push_counter("core.oracle.full_sweeps", self.world.tel.full_sweeps);
        self.tel.snapshot_into(&mut snap);
        if self.tel_level.spans_on() {
            snap.push_phase(
                "core.phase.oracle_refresh",
                PhaseStat {
                    ns: self.world.tel.refresh_ns,
                    count: self.world.tel.refresh_count,
                },
            );
            self.tel_phases.snapshot_into(&mut snap);
        }
        snap
    }

    /// The earliest pending `(time, seq, source)` across the heap and the
    /// two timer rings (see [`packet::next_source`]).
    fn next_source(&self) -> Option<(SimTime, u64, DriverSource)> {
        packet::next_source(&self.queue, &self.gossip_ring, &self.diffusion_ring)
    }

    /// The next pending epoch-boundary sample time.
    fn next_sample(&self) -> SimTime {
        SimTime::from_secs((self.epochs_sampled + 1) as f64 * self.world.config.diffusion_period)
    }

    /// Samples the global distance to the oracle at time `at` and pushes
    /// it onto the trace. Rolls every node's serve meter to `at` and
    /// accumulates through the exact [`ww_stats::ExactSum`] — the same
    /// fold the parallel driver's workers compute per shard and merge at
    /// the barrier; exactness is what makes the two bit-identical.
    fn sample_epoch(&mut self, at: SimTime) {
        let now = at.as_secs();
        let sum = packet::trace_partial(&self.world.oracle, self.nodes.iter_mut().enumerate(), now);
        self.trace.push(sum.value().sqrt());
        self.epochs_sampled += 1;
    }

    /// Runs `handler` for node `i` with a freshly assembled [`NodeCtx`],
    /// then drains the produced outbox into the queue in push order —
    /// the one event-execution shape shared by all three sources.
    fn with_node(&mut self, i: usize, handler: impl FnOnce(&mut NodeCtx<'_>, &mut NodeState)) {
        let mut ctx = NodeCtx {
            world: &self.world,
            failed_up: &self.failed_up,
            ledger: &mut self.ledger,
            counters: &mut self.counters,
            out: &mut self.outbox,
            scratch: &mut self.scratch,
        };
        handler(&mut ctx, &mut self.nodes[i]);
        for (at, ev) in self.outbox.drain(..) {
            self.queue.schedule(at, ev);
        }
    }

    /// Runs the simulation up to `duration` simulated seconds and
    /// reports. May be called repeatedly with increasing horizons; each
    /// call processes the events in `(previous, duration]`.
    pub fn run(&mut self, duration: f64) -> PacketSimReport {
        let deadline = SimTime::from_secs(duration);
        loop {
            let next = self.next_source();
            // Epoch samples fire between events: all events at or before
            // the boundary are processed first, then the boundary is
            // observed.
            let due = next.map(|(t, _, _)| t);
            while self.next_sample() <= deadline && due.is_none_or(|t| t > self.next_sample()) {
                let at = self.next_sample();
                self.sample_epoch(at);
            }
            let Some((at, _, source)) = next else {
                break;
            };
            if at > deadline {
                break;
            }
            match source {
                DriverSource::Heap => {
                    let (t, event) = self.queue.pop().expect("peeked event exists");
                    let i = event.node().index();
                    self.with_node(i, |ctx, state| packet::handle(ctx, state, t, event));
                }
                DriverSource::Gossip => {
                    let (t, member) = self.gossip_ring.pop().expect("peeked fire exists");
                    self.queue.advance_to(t);
                    let node = NodeId::new(member);
                    self.with_node(member, |ctx, state| {
                        packet::on_gossip_timer(ctx, state, t, node);
                    });
                    let seq = self.queue.alloc_seq();
                    self.gossip_ring.rearm(member, seq);
                }
                DriverSource::Diffusion => {
                    let (t, member) = self.diffusion_ring.pop().expect("peeked fire exists");
                    self.queue.advance_to(t);
                    let node = NodeId::new(member);
                    self.with_node(member, |ctx, state| {
                        packet::on_diffusion(ctx, state, t, node);
                    });
                    let seq = self.queue.alloc_seq();
                    self.diffusion_ring.rearm(member, seq);
                }
            }
        }
        // The horizon itself is the observation instant: the clock coasts
        // to it so the report is taken at `duration` exactly, matching
        // the parallel driver's barrier.
        self.queue.fast_forward(deadline);
        self.report()
    }

    /// Produces the final report (also usable mid-run).
    pub fn report(&mut self) -> PacketSimReport {
        let now = self.queue.now().as_secs();
        let rates: Vec<f64> = (0..self.world.len())
            .map(|j| packet::sample_served_rate(&mut self.nodes[j], now.max(1e-9)))
            .collect();
        let served_rates = RateVector::from(rates);
        let final_distance = served_rates.euclidean_distance(&self.world.oracle);
        PacketSimReport {
            final_distance,
            served_rates,
            oracle: self.world.oracle.clone(),
            trace: self.trace.clone(),
            ledger: self.ledger.clone(),
            mean_hops: if self.counters.served_requests == 0 {
                0.0
            } else {
                self.counters.hops_sum as f64 / self.counters.served_requests as f64
            },
            copy_pushes: self.counters.copy_pushes,
            tunnel_fetches: self.counters.tunnel_fetches,
            served_requests: self.counters.served_requests,
            processed_events: self.queue.processed(),
            overflow_parks: 0,
            overflow_peak_parked: 0,
            shard_event_counts: vec![self.queue.processed()],
            imbalance: 1.0,
        }
    }

    /// The TLB oracle for the offered demand.
    pub fn oracle(&self) -> &RateVector {
        &self.world.oracle
    }

    /// The dense document table of this simulation's universe.
    pub fn doc_table(&self) -> &ww_model::DocTable {
        &self.world.table
    }

    /// Lifetime served-request count of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn served_total(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].served_total
    }

    /// The routing tree this simulation runs on.
    pub fn tree(&self) -> &Tree {
        &self.world.tree
    }

    /// Whether the control link from `node` to its parent is failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn link_failed(&self, node: NodeId) -> bool {
        self.failed_up[node.index()]
    }

    /// Fails the control link between `node` and its parent: gossip stops
    /// crossing it (estimates on both sides go stale), no copies are
    /// pushed or tunneled across, and the node's diffusion step ignores
    /// its parent until [`PacketSim::heal_link`]. Request packets — the
    /// data plane — keep flowing. Returns `false` when already failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn fail_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.world.tree.parent(node).is_some(),
            "the root has no uplink to fail"
        );
        !std::mem::replace(&mut self.failed_up[node.index()], true)
    }

    /// Restores the control link between `node` and its parent. Returns
    /// `false` when the link was not failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn heal_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.world.tree.parent(node).is_some(),
            "the root has no uplink to heal"
        );
        std::mem::replace(&mut self.failed_up[node.index()], false)
    }

    /// Re-publish (update) a document: every cached copy outside the home
    /// server is invalidated — copies, filters, and serve allocations for
    /// `doc` vanish, and the stale serve-rate estimates for it are reset.
    /// One invalidation message per revoked copy is charged to the ledger
    /// (control traffic from the root, paying the node's depth in hops).
    /// Demand is unchanged; requests fall back to the home server until
    /// diffusion re-spreads the new version.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownDocument`] when `doc` is outside the
    /// simulated universe.
    pub fn invalidate(&mut self, doc: DocId) -> Result<(), ModelError> {
        let Some(k) = self.world.table.index_of(doc) else {
            return Err(ModelError::UnknownDocument { doc: doc.value() });
        };
        let root = self.world.tree.root();
        for j in 0..self.world.len() {
            let node = NodeId::new(j);
            if node == root {
                continue;
            }
            if packet::invalidate_node(&mut self.nodes[j], k) {
                self.ledger
                    .record(TrafficClass::Gossip, 64, self.world.tree.depth(node) as u32);
            }
        }
        Ok(())
    }

    /// Re-resolves the arrival stage after a barrier mutation: drops
    /// stale arrival events (remapping surviving document indices when
    /// the universe grew) and schedules each node's fresh first arrival,
    /// in node order — the canonical recipe the parallel driver repeats
    /// per shard.
    fn rebuild_arrivals(&mut self, growth: Option<&UniverseGrowth>) {
        let before = self.queue.len();
        self.queue
            .filter_map_events(|ev| packet::remap_for_rebuild(ev, growth));
        self.note_surgery(before);
        self.reschedule_arrivals();
    }

    /// Credits one queue-surgery sweep that shrank the queue from
    /// `before` to its current length.
    fn note_surgery(&mut self, before: usize) {
        self.tel.add(K_SURGERY_SWEEPS, 1);
        self.tel
            .add(K_SURGERY_REMOVED, (before - self.queue.len()) as u64);
    }

    /// The scheduling half of [`PacketSim::rebuild_arrivals`], for
    /// callers whose own queue surgery already dropped the stale
    /// arrivals (a leave's [`packet::renumber_for_leave`] pass).
    fn reschedule_arrivals(&mut self) {
        let span = self.tel_phases.begin();
        let at = self.queue.now();
        for i in 0..self.world.len() {
            packet::rebuild_node_arrivals(
                &self.world,
                &mut self.nodes[i],
                NodeId::new(i),
                at,
                &mut self.outbox,
            );
            for (t, ev) in self.outbox.drain(..) {
                self.queue.schedule(t, ev);
            }
        }
        self.tel_phases.end(P_ARRIVAL_REBUILD, span);
    }

    /// A cache server joins as a new leaf under `parent` at the current
    /// barrier, bringing `rate` req/s of demand split across the
    /// universe proportionally to current document popularity. The
    /// newcomer takes the next id, starts cold (no copies), and its
    /// gossip/diffusion timers arm phase-staggered after the barrier;
    /// every arrival stream is re-resolved.
    ///
    /// # Errors
    ///
    /// As [`PacketWorld::join`]: unknown parent or invalid rate.
    pub fn add_leaf(&mut self, parent: NodeId, rate: f64) -> Result<NodeId, ModelError> {
        let at = self.queue.now();
        let id = self.world.join(parent, rate)?;
        let i = id.index();
        let map = packet::join_slot_map(self.world.tree.children(parent).len() - 1);
        packet::remap_children(&mut self.nodes[parent.index()], &map, at.as_secs());
        self.nodes
            .push(packet::init_state_at(&self.world, id, at.as_secs()));
        self.failed_up.push(false);
        if let Some(steps) = &mut self.batch {
            steps.push(SurgeryStep::Rebuild(None));
        } else {
            self.rebuild_arrivals(None);
        }
        // Arm the newcomer's timers (after the arrival pass, mirroring
        // the construction-time per-node order).
        assert_eq!(self.gossip_ring.add_member(), i);
        assert_eq!(self.diffusion_ring.add_member(), i);
        let gossip_seq = self.queue.alloc_seq();
        self.gossip_ring
            .insert(i, at + self.world.gossip_phase(i), gossip_seq);
        let diffusion_seq = self.queue.alloc_seq();
        self.diffusion_ring
            .insert(i, at + self.world.diffusion_phase(i), diffusion_seq);
        Ok(id)
    }

    /// A leaf cache server departs at the current barrier: its demand
    /// re-homes to its parent, ids compact by swap-remove (the returned
    /// [`LeafRemoval`] names the renumbering), in-flight events
    /// involving the departed node are dropped, and every arrival
    /// stream is re-resolved.
    ///
    /// # Errors
    ///
    /// As [`PacketWorld::leave`]: unknown id, the root, or an interior
    /// node.
    pub fn remove_leaf(&mut self, node: NodeId) -> Result<LeafRemoval, ModelError> {
        let at = self.queue.now();
        let old_child_slot = self.world.child_slot.clone();
        let removal = self.world.leave(node)?;
        let i = removal.removed.index();
        self.nodes.swap_remove(i);
        self.failed_up.swap_remove(i);
        self.gossip_ring.swap_remove_member(i);
        self.diffusion_ring.swap_remove_member(i);
        if let Some(steps) = &mut self.batch {
            steps.push(SurgeryStep::Leave {
                removed: removal.removed,
                moved: removal.moved,
            });
        } else {
            let before = self.queue.len();
            self.queue.filter_map_events(|ev| {
                packet::renumber_for_leave(ev, removal.removed, removal.moved)
            });
            self.note_surgery(before);
        }
        for p in packet::parents_to_remap(&self.world.tree, &removal) {
            let map = packet::child_slot_map(
                &self.world.tree,
                p,
                removal.removed,
                removal.moved,
                &old_child_slot,
            );
            packet::remap_children(&mut self.nodes[p.index()], &map, at.as_secs());
        }
        // The renumbering pass above already dropped the stale arrivals;
        // only the rescheduling half remains (deferred while batched).
        if self.batch.is_none() {
            self.reschedule_arrivals();
        }
        Ok(removal)
    }

    /// Applies a universe growth to every node's per-document state (the
    /// home server also receives the only copy of each new document),
    /// then re-resolves the arrival stage — the shared tail of every
    /// demand-changing barrier operation.
    fn apply_growth(&mut self, growth: Option<UniverseGrowth>) {
        let at = self.queue.now().as_secs();
        if let Some(g) = &growth {
            let root = self.world.tree.root();
            for j in 0..self.world.len() {
                packet::grow_node_state(&mut self.nodes[j], g, at, NodeId::new(j) == root);
            }
        }
        if let Some(steps) = &mut self.batch {
            steps.push(SurgeryStep::Rebuild(growth));
        } else {
            self.rebuild_arrivals(growth.as_ref());
        }
    }

    /// Publishes a document at the current barrier: demand for `doc`
    /// appears at `origin`, a first-time id grows the dense universe
    /// (every node's per-document state shifts columns; the home server
    /// receives the only copy), and every arrival stream is re-resolved.
    ///
    /// # Errors
    ///
    /// As [`PacketWorld::publish`]: unknown origin or invalid rate.
    pub fn publish_doc(&mut self, doc: DocId, origin: NodeId, rate: f64) -> Result<(), ModelError> {
        let growth = self.world.publish(doc, origin, rate)?;
        self.apply_growth(growth);
        Ok(())
    }

    /// Replaces the whole demand mix at the current barrier (hot-set
    /// rotation, Zipf re-skew). Copies and serve allocations survive;
    /// first-time document ids grow the universe; every arrival stream
    /// is re-resolved against the new mix.
    ///
    /// # Errors
    ///
    /// As [`PacketWorld::set_mix`]: a mix not covering the current tree.
    pub fn set_mix(&mut self, mix: &DocMix) -> Result<(), ModelError> {
        let growth = self.world.set_mix(mix)?;
        self.apply_growth(growth);
        Ok(())
    }

    /// Opens a barrier batch: subsequent barrier mutations apply their
    /// primary state changes eagerly but defer the oracle refresh, the
    /// queue-surgery sweep, and the arrival re-resolution to one shared
    /// pass in [`GenericPacketSim::commit_batch`]. A K-event batch ends
    /// bit-identical to K unbatched applications at a fraction of the
    /// cost (one refold, one sweep, one re-resolution instead of K).
    ///
    /// # Panics
    ///
    /// Panics if a batch is already open.
    pub fn begin_batch(&mut self) {
        assert!(self.batch.is_none(), "a barrier batch is already open");
        self.world.begin_batch();
        self.batch = Some(Vec::new());
    }

    /// Closes the batch: performs the single deferred oracle refresh,
    /// applies the accumulated queue-surgery steps in one
    /// `filter_map_events` sweep, and re-resolves the arrival stage
    /// once, in node order.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn commit_batch(&mut self) {
        let steps = self.batch.take().expect("no open barrier batch");
        self.world.end_batch();
        if !steps.is_empty() {
            let before = self.queue.len();
            self.queue
                .filter_map_events(|ev| packet::apply_surgery(ev, &steps));
            self.note_surgery(before);
            self.reschedule_arrivals();
        }
    }

    /// Applies one uniform [`BarrierOp`] through the matching typed
    /// method (honoring an open batch).
    ///
    /// # Errors
    ///
    /// As the matching typed method; a failed op mutates nothing.
    ///
    /// # Panics
    ///
    /// As the matching typed method — [`BarrierOp::FailLink`] /
    /// [`BarrierOp::HealLink`] on the root or out of range.
    pub fn apply_op(&mut self, op: &BarrierOp) -> Result<BarrierOutcome, ModelError> {
        self.tel.add(K_BARRIER_OPS, 1);
        match op {
            BarrierOp::AddLeaf { parent, rate } => {
                self.add_leaf(*parent, *rate).map(BarrierOutcome::Added)
            }
            BarrierOp::RemoveLeaf { node } => self.remove_leaf(*node).map(BarrierOutcome::Removed),
            BarrierOp::PublishDoc { doc, origin, rate } => self
                .publish_doc(*doc, *origin, *rate)
                .map(|()| BarrierOutcome::Done),
            BarrierOp::SetMix { mix } => self.set_mix(mix).map(|()| BarrierOutcome::Done),
            BarrierOp::FailLink { node } => Ok(BarrierOutcome::Toggled(self.fail_link(*node))),
            BarrierOp::HealLink { node } => Ok(BarrierOutcome::Toggled(self.heal_link(*node))),
            BarrierOp::Invalidate { doc } => self.invalidate(*doc).map(|()| BarrierOutcome::Done),
        }
    }

    /// Applies every op of a same-barrier storm as one batch: per-op
    /// results mirror sequential application (a rejected op mutates
    /// nothing and the batch continues), but the oracle refresh, queue
    /// surgery, and arrival re-resolution run once at the end.
    ///
    /// # Panics
    ///
    /// As [`GenericPacketSim::apply_op`], and if a batch is already
    /// open.
    pub fn apply_all(&mut self, ops: &[BarrierOp]) -> Vec<Result<BarrierOutcome, ModelError>> {
        self.begin_batch();
        let results = ops.iter().map(|op| self.apply_op(op)).collect();
        self.commit_batch();
        results
    }

    /// The shared world (topology, mix, oracle, configuration) as the
    /// simulation currently sees it.
    pub fn world(&self) -> &PacketWorld {
        &self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_model::DocId;
    use ww_topology::paper;

    fn fig7_mix() -> (Tree, DocMix) {
        let b = paper::fig7();
        let mut mix = DocMix::new(b.tree.len());
        for d in &b.demands {
            mix.set(d.origin, d.doc, d.rate);
        }
        (b.tree, mix)
    }

    #[test]
    fn all_requests_served_and_accounted() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(10.0);
        // 360 req/s for 10 s: expect on the order of 3600 served requests.
        assert!(
            report.served_requests > 2500 && report.served_requests < 4700,
            "served {}",
            report.served_requests
        );
        assert_eq!(
            report.ledger.count(TrafficClass::Response),
            report.served_requests
        );
    }

    #[test]
    fn convergence_toward_tlb_with_tunneling() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(60.0);
        let initial = report.trace.initial().unwrap_or(f64::INFINITY);
        assert!(
            report.final_distance < initial * 0.35,
            "distance {} of initial {}",
            report.final_distance,
            initial
        );
        assert!(report.tunnel_fetches >= 1, "tunneling should fire");
        // Every node ends up serving a nontrivial share.
        for (node, rate) in report.served_rates.iter() {
            assert!(rate > 30.0, "node {node} serves only {rate}");
        }
    }

    #[test]
    fn tunneling_accelerates_the_starved_node() {
        // Unlike the deterministic document-level engine (where the
        // Figure 7 barrier stalls *permanently* — see `docsim`), the
        // packet engine's measurement noise eventually leaks the blocked
        // document past the barrier. The realistic claim is therefore
        // about speed: with tunneling, the starved node ramps up sooner.
        let (tree, mix) = fig7_mix();
        let n2_at = |tunneling: bool, horizon: f64| {
            let cfg = PacketSimConfig {
                tunneling,
                ..PacketSimConfig::default()
            };
            let mut sim = PacketSim::new(&tree, &mix, cfg);
            let r = sim.run(horizon);
            (r.served_rates[NodeId::new(2)], r.tunnel_fetches)
        };
        let (with_tunnel, fetches) = n2_at(true, 8.0);
        let (without_tunnel, no_fetches) = n2_at(false, 8.0);
        assert!(fetches >= 1, "tunneling should fire");
        assert_eq!(no_fetches, 0);
        assert!(
            with_tunnel > without_tunnel * 1.2,
            "tunneling ramp {with_tunnel} should beat {without_tunnel}"
        );
    }

    #[test]
    fn mean_hops_decrease_as_copies_spread() {
        let (tree, mix) = fig7_mix();
        // Short run: most requests go all the way to the root.
        let mut early = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let early_report = early.run(3.0);
        // Long run: caches absorb most requests close to the clients.
        let mut late = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let late_report = late.run(60.0);
        assert!(
            late_report.mean_hops < early_report.mean_hops,
            "late {} vs early {}",
            late_report.mean_hops,
            early_report.mean_hops
        );
    }

    #[test]
    fn gossip_overhead_is_periodic_not_per_request() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(20.0);
        let gossip = report.ledger.count(TrafficClass::Gossip);
        // 4 nodes x (neighbors) x (20 s / 0.5 s) is on the order of 500,
        // far below the ~7200 requests.
        assert!(gossip > 100, "gossip {gossip}");
        assert!(
            (gossip as f64) < report.served_requests as f64 * 0.5,
            "gossip {} vs served {}",
            gossip,
            report.served_requests
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (tree, mix) = fig7_mix();
        let run = |seed: u64| {
            let cfg = PacketSimConfig {
                seed,
                ..PacketSimConfig::default()
            };
            let mut sim = PacketSim::new(&tree, &mix, cfg);
            let r = sim.run(5.0);
            (r.served_requests, r.copy_pushes)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn gossip_loss_tolerated() {
        let (tree, mix) = fig7_mix();
        let cfg = PacketSimConfig {
            gossip_loss: 0.3,
            ..PacketSimConfig::default()
        };
        let mut sim = PacketSim::new(&tree, &mix, cfg);
        let report = sim.run(60.0);
        let initial = report.trace.initial().unwrap_or(f64::INFINITY);
        assert!(
            report.final_distance < initial * 0.5,
            "distance {} of initial {}",
            report.final_distance,
            initial
        );
    }

    #[test]
    fn trace_is_reproducible_across_runs() {
        // The timer rings must merge with the heap in a deterministic
        // order: two identically seeded runs produce identical traces.
        let (tree, mix) = fig7_mix();
        let trace = |_| {
            let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
            sim.run(15.0).trace.distances().to_vec()
        };
        assert_eq!(trace(0), trace(1));
    }

    #[test]
    fn trace_samples_once_per_epoch() {
        // The convergence trace is observed at epoch boundaries: a run of
        // `d` seconds with a 1 s diffusion period yields exactly `d`
        // samples, independent of the node count.
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(12.0);
        assert_eq!(report.trace.len(), 12);
    }

    #[test]
    fn incremental_runs_match_one_shot() {
        // Driving the horizon epoch by epoch (the scenario adapter's
        // stepping pattern) replays the one-shot run bit for bit.
        let (tree, mix) = fig7_mix();
        let mut stepped = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        for k in 1..=10 {
            stepped.run(k as f64);
        }
        let a = stepped.report();
        let mut oneshot = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let b = oneshot.run(10.0);
        assert_eq!(a.served_requests, b.served_requests);
        assert_eq!(a.trace.distances(), b.trace.distances());
        assert_eq!(a.served_rates.as_slice(), b.served_rates.as_slice());
    }

    #[test]
    fn invalidation_revokes_copies() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        sim.run(30.0);
        // The hot documents have spread; revoke one and check the error
        // path for unknown ids.
        assert!(sim.invalidate(DocId::new(1)).is_ok());
        assert!(sim.invalidate(DocId::new(999)).is_err());
    }
}
