//! Packet-level, event-driven WebWave.
//!
//! The other engines exchange *rates*; this one exchanges *packets*. Each
//! node runs a router with a packet-filter membership set, a cache of
//! copies with token-bucket serve allocations, per-child per-document flow
//! meters, and two timers — the **gossip period** and the **diffusion
//! period** the paper says a realistic WebWave server would have
//! (Section 5). Client requests are Poisson streams; gossip messages
//! travel with link delay and can be lost (failure injection); copies are
//! pushed as messages; tunneling fetches pay the round-trip to the
//! nearest upstream holder.
//!
//! The engine reports measured serve rates, their distance to the WebFold
//! oracle, hop-count distributions and a full traffic ledger — the numbers
//! behind the system-level experiments.
//!
//! # Performance
//!
//! Two hot-path structures are dense:
//!
//! * All per-document state is addressed through the simulation's
//!   [`DocTable`]: token buckets live in flat per-node slabs, copy/filter
//!   membership in [`DocSet`] bitsets, and the three flow meters are
//!   [`DenseFlowTable`] grids — no hashing on the per-packet path.
//! * The two strictly periodic timer streams live in
//!   [`TimerRing`]s outside the event heap. Ring fires carry sequence
//!   numbers from the queue's global counter, so the merged `(time, seq)`
//!   order — and therefore every trace — is identical to the previous
//!   all-heap implementation, while heap operations only pay for the
//!   irregular packet events.

use crate::fold::webfold;
use ww_cache::{plan_push_dense, plan_shed_dense, DenseFlowTable, DenseRateSlice};
use ww_diffusion::safe_alpha;
use ww_model::{DocId, DocSet, DocTable, ModelError, NodeId, RateVector, Tree};
use ww_net::{DocRequest, DocResponse, RequestId, TrafficClass, TrafficLedger};
use ww_sim::{exp_delay, EventQueue, SimRng, SimTime, TimerRing};
use ww_stats::ConvergenceTrace;
use ww_workload::DocMix;

/// Configuration of a packet-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketSimConfig {
    /// Master random seed.
    pub seed: u64,
    /// One-way per-hop link latency, seconds.
    pub link_delay: f64,
    /// How often each node gossips its measured load to tree neighbors.
    pub gossip_period: f64,
    /// How often each node runs its diffusion step.
    pub diffusion_period: f64,
    /// Rate-measurement window, seconds.
    pub measure_window: f64,
    /// Diffusion parameter; `None` selects `1/(max_degree + 1)`.
    pub alpha: Option<f64>,
    /// Enable tunneling across potential barriers.
    pub tunneling: bool,
    /// Underloaded-with-no-action periods tolerated before tunneling.
    pub barrier_patience: usize,
    /// Probability that a gossip message is lost (failure injection).
    pub gossip_loss: f64,
    /// Relative hysteresis: a load difference must exceed this fraction of
    /// the larger load before the protocol acts. Guards against reacting
    /// to measurement noise.
    pub hysteresis: f64,
    /// Additional absolute deadband in units of the Poisson standard
    /// deviation `sqrt(load)`; with rate-measured loads, differences below
    /// `noise_sigmas * sqrt(L)` are statistically indistinguishable from
    /// sampling noise.
    pub noise_sigmas: f64,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            seed: 1997,
            link_delay: 0.005,
            gossip_period: 0.5,
            diffusion_period: 1.0,
            measure_window: 1.0,
            alpha: None,
            tunneling: true,
            barrier_patience: 2,
            gossip_loss: 0.0,
            hysteresis: 0.05,
            noise_sigmas: 3.0,
        }
    }
}

/// Irregular events of the packet-level simulation. The two periodic
/// timer streams are not events at all — they live in [`TimerRing`]s.
#[derive(Debug, Clone)]
enum Event {
    /// A client at `node` issues a request for the document at dense
    /// index `index`; `rate` is the stream's constant arrival rate
    /// (carried in the event so rescheduling needs no demand lookup).
    Arrival {
        node: NodeId,
        doc: DocId,
        index: u32,
        rate: f64,
    },
    /// A request packet arrives at `node`'s router, possibly from a child.
    Packet {
        node: NodeId,
        from: Option<NodeId>,
        request: DocRequest,
        index: u32,
    },
    /// A gossip message from `from` reporting its measured load.
    GossipDeliver { to: NodeId, from: NodeId, load: f64 },
    /// A pushed (or tunneled) copy of the document at `index` arrives at
    /// `node` with a serve allocation in req/s.
    CopyInstall { node: NodeId, index: u32, rate: f64 },
}

/// Which event source holds the globally earliest `(time, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Heap,
    Gossip,
    Diffusion,
}

/// Per-node protocol state, all per-document tables dense.
#[derive(Debug)]
struct NodeState {
    /// Documents this node holds a copy of.
    copies: DocSet,
    /// Documents this node's router filter intercepts.
    filter: DocSet,
    /// Per-child-slot, per-doc forwarded-rate meters.
    flows: DenseFlowTable,
    /// Per-doc rate of all requests seen at this node (own + children).
    seen: DenseFlowTable,
    /// Per-doc rate this node actually served.
    served: DenseFlowTable,
    /// Serve allocations in req/s per held document (token buckets),
    /// one slab cell per dense index; `alloc_set` marks live buckets.
    alloc: Vec<TokenBucket>,
    alloc_set: DocSet,
    /// Latest gossiped load estimate of the parent.
    parent_est: Option<f64>,
    /// Latest gossiped load estimates of children, by child slot.
    child_est: Vec<Option<f64>>,
    /// Total requests served (lifetime).
    served_total: u64,
    underload_streak: usize,
}

/// A token bucket shaping one document's serve rate.
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    rate: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    const BURST: f64 = 2.0;

    fn new(rate: f64, now: f64) -> Self {
        TokenBucket {
            rate,
            tokens: 1.0,
            last: now,
        }
    }

    fn try_take(&mut self, now: f64) -> bool {
        self.tokens = (self.tokens + self.rate * (now - self.last)).min(Self::BURST);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Outcome of a finished packet-level run.
#[derive(Debug, Clone)]
pub struct PacketSimReport {
    /// Measured served rate per node over the final measurement window.
    pub served_rates: RateVector,
    /// The WebFold oracle for the offered demand.
    pub oracle: RateVector,
    /// Euclidean distance of the final measured rates to the oracle.
    pub final_distance: f64,
    /// Distance sampled at every diffusion epoch.
    pub trace: ConvergenceTrace,
    /// Message/byte ledger.
    pub ledger: TrafficLedger,
    /// Mean upward hops per served request.
    pub mean_hops: f64,
    /// Copies pushed parent-to-child.
    pub copy_pushes: u64,
    /// Tunneling fetches performed.
    pub tunnel_fetches: u64,
    /// Total requests served.
    pub served_requests: u64,
}

/// The packet-level simulator.
///
/// # Example
///
/// ```
/// use ww_model::{DocId, NodeId, Tree};
/// use ww_workload::DocMix;
/// use ww_core::packetsim::{PacketSim, PacketSimConfig};
///
/// // A chain with one hot document requested at the leaf.
/// let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
/// let mut mix = DocMix::new(3);
/// mix.set(NodeId::new(2), DocId::new(1), 300.0);
/// let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
/// let report = sim.run(30.0);
/// // The protocol spreads the 300 req/s across all three nodes (TLB = 100 each).
/// assert!(report.final_distance < report.trace.initial().unwrap());
/// ```
#[derive(Debug)]
pub struct PacketSim {
    tree: Tree,
    table: DocTable,
    /// Slot of each node within its parent's child list (root: unused 0).
    child_slot: Vec<usize>,
    config: PacketSimConfig,
    queue: EventQueue<Event>,
    gossip_ring: TimerRing,
    diffusion_ring: TimerRing,
    rng: SimRng,
    nodes: Vec<NodeState>,
    /// Per node: `true` when the control link to its parent is failed.
    /// Gossip, copy pushes, and diffusion decisions stop crossing the
    /// edge; request packets (the data plane) keep flowing.
    failed_up: Vec<bool>,
    /// Per node: `(doc, dense index, rate)` arrival streams.
    demand: Vec<Vec<(DocId, u32, f64)>>,
    oracle: RateVector,
    ledger: TrafficLedger,
    trace: ConvergenceTrace,
    alpha: f64,
    next_request_id: u64,
    copy_pushes: u64,
    tunnel_fetches: u64,
    hops_sum: u64,
    served_requests: u64,
    /// Reusable scratch: candidate (index, rate) lists.
    cand_buf: Vec<(u32, f64)>,
    /// Reusable scratch: plan sorting buffer.
    sort_buf: Vec<(u32, f64)>,
    /// Reusable scratch: planned slices.
    plan_buf: Vec<DenseRateSlice>,
}

impl PacketSim {
    /// Builds a simulator for `tree` under the per-node document demand
    /// `mix`.
    ///
    /// # Panics
    ///
    /// Panics if `mix` does not cover `tree` or config values are out of
    /// range.
    pub fn new(tree: &Tree, mix: &DocMix, config: PacketSimConfig) -> Self {
        assert_eq!(mix.len(), tree.len(), "doc mix must cover the tree");
        assert!(config.link_delay >= 0.0, "link delay must be >= 0");
        assert!(
            (0.0..=1.0).contains(&config.gossip_loss),
            "gossip loss is a probability"
        );
        let n = tree.len();
        let alpha = config.alpha.unwrap_or_else(|| safe_alpha(tree));
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");

        let spontaneous = mix.spontaneous();
        let oracle = webfold(tree, &spontaneous).into_load();
        let table = DocTable::from_ids(mix.documents());
        let m = table.len();

        let mut child_slot = vec![0usize; n];
        for u in tree.nodes() {
            for (slot, &c) in tree.children(u).iter().enumerate() {
                child_slot[c.index()] = slot;
            }
        }

        let mut nodes: Vec<NodeState> = tree
            .nodes()
            .map(|u| NodeState {
                copies: table.empty_set(),
                filter: table.empty_set(),
                flows: DenseFlowTable::new(
                    config.measure_window,
                    0.5,
                    tree.children(u).len().max(1),
                    m.max(1),
                ),
                seen: DenseFlowTable::new(config.measure_window, 0.5, 1, m.max(1)),
                served: DenseFlowTable::new(config.measure_window, 0.5, 1, m.max(1)),
                alloc: vec![TokenBucket::new(0.0, 0.0); m],
                alloc_set: table.empty_set(),
                parent_est: None,
                child_est: vec![None; tree.children(u).len()],
                served_total: 0,
                underload_streak: 0,
            })
            .collect();
        // The home server holds every document.
        nodes[tree.root().index()].copies = table.full_set();

        let demand: Vec<Vec<(DocId, u32, f64)>> = (0..n)
            .map(|i| {
                mix.demands_of(NodeId::new(i))
                    .iter()
                    .map(|&(d, r)| (d, table.index_of(d).expect("demand doc in universe"), r))
                    .collect()
            })
            .collect();

        let mut sim = PacketSim {
            tree: tree.clone(),
            table,
            child_slot,
            config,
            queue: EventQueue::new(),
            gossip_ring: TimerRing::new(SimTime::from_secs(config.gossip_period), n),
            diffusion_ring: TimerRing::new(SimTime::from_secs(config.diffusion_period), n),
            rng: SimRng::seed(config.seed),
            nodes,
            failed_up: vec![false; n],
            demand,
            oracle,
            ledger: TrafficLedger::new(),
            trace: ConvergenceTrace::new(),
            alpha,
            next_request_id: 0,
            copy_pushes: 0,
            tunnel_fetches: 0,
            hops_sum: 0,
            served_requests: 0,
            cand_buf: Vec::with_capacity(m),
            sort_buf: Vec::with_capacity(m),
            plan_buf: Vec::with_capacity(m),
        };
        sim.prime();
        sim
    }

    /// Schedules the first arrivals and arms the timer rings.
    ///
    /// Sequence numbers are allocated in the same order the all-heap
    /// implementation scheduled its events, so the merged event order is
    /// unchanged.
    fn prime(&mut self) {
        let n = self.tree.len();
        for i in 0..n {
            let node = NodeId::new(i);
            for j in 0..self.demand[i].len() {
                let (doc, index, rate) = self.demand[i][j];
                if rate > 0.0 {
                    let mut rng = self.rng.fork(((i as u64) << 32) | doc.value());
                    let gap = exp_delay(&mut rng, 1.0 / rate);
                    self.queue.schedule(
                        SimTime::from_secs(gap),
                        Event::Arrival {
                            node,
                            doc,
                            index,
                            rate,
                        },
                    );
                }
            }
            // Stagger timers to avoid artificial synchrony.
            let phase = (i as f64 + 1.0) / (n as f64 + 1.0);
            let gossip_seq = self.queue.alloc_seq();
            self.gossip_ring.insert(
                i,
                SimTime::from_secs(self.config.gossip_period * phase),
                gossip_seq,
            );
            let diffusion_seq = self.queue.alloc_seq();
            self.diffusion_ring.insert(
                i,
                SimTime::from_secs(self.config.diffusion_period * (0.5 + 0.5 * phase)),
                diffusion_seq,
            );
        }
    }

    /// The earliest pending `(time, seq, source)` across the heap and the
    /// two timer rings — the same total order one combined heap would
    /// produce.
    fn next_source(&self) -> Option<(SimTime, u64, Source)> {
        let heap = self.queue.peek_entry().map(|(t, s)| (t, s, Source::Heap));
        let gossip = self
            .gossip_ring
            .peek()
            .map(|(t, s, _)| (t, s, Source::Gossip));
        let diffusion = self
            .diffusion_ring
            .peek()
            .map(|(t, s, _)| (t, s, Source::Diffusion));
        [heap, gossip, diffusion]
            .into_iter()
            .flatten()
            .min_by_key(|&(t, s, _)| (t, s))
    }

    /// Runs the simulation for `duration` simulated seconds and reports.
    pub fn run(&mut self, duration: f64) -> PacketSimReport {
        let deadline = SimTime::from_secs(duration);
        while let Some((at, _, source)) = self.next_source() {
            if at > deadline {
                break;
            }
            match source {
                Source::Heap => {
                    let (t, event) = self.queue.pop().expect("peeked event exists");
                    self.handle(t, event);
                }
                Source::Gossip => {
                    let (t, member) = self.gossip_ring.pop().expect("peeked fire exists");
                    self.queue.advance_to(t);
                    self.on_gossip_timer(t, NodeId::new(member));
                }
                Source::Diffusion => {
                    let (t, member) = self.diffusion_ring.pop().expect("peeked fire exists");
                    self.queue.advance_to(t);
                    self.on_diffusion(t, NodeId::new(member));
                }
            }
        }
        self.report()
    }

    fn handle(&mut self, t: SimTime, event: Event) {
        match event {
            Event::Arrival {
                node,
                doc,
                index,
                rate,
            } => self.on_arrival(t, node, doc, index, rate),
            Event::Packet {
                node,
                from,
                request,
                index,
            } => self.on_packet(t, node, from, request, index),
            Event::GossipDeliver { to, from, load } => {
                let i = to.index();
                if self.tree.parent(to) == Some(from) {
                    self.nodes[i].parent_est = Some(load);
                } else {
                    let slot = self.child_slot[from.index()];
                    self.nodes[i].child_est[slot] = Some(load);
                }
            }
            Event::CopyInstall { node, index, rate } => self.on_copy_install(t, node, index, rate),
        }
    }

    fn on_arrival(&mut self, t: SimTime, node: NodeId, doc: DocId, index: u32, rate: f64) {
        // Issue the request packet at this node.
        let id = RequestId::new(self.next_request_id);
        self.next_request_id += 1;
        let request = DocRequest::new(id, doc, node);
        self.ledger
            .record(TrafficClass::Request, request.wire_bytes(), 0);
        self.queue.schedule(
            t,
            Event::Packet {
                node,
                from: None,
                request,
                index,
            },
        );
        // Schedule the next arrival of this stream; the constant stream
        // rate rides in the event, so no demand-list lookup is needed.
        let mut rng = self
            .rng
            .fork(((node.index() as u64) << 32) | doc.value() | (self.next_request_id << 1));
        let gap = exp_delay(&mut rng, 1.0 / rate);
        self.queue.schedule(
            t + SimTime::from_secs(gap),
            Event::Arrival {
                node,
                doc,
                index,
                rate,
            },
        );
    }

    fn on_packet(
        &mut self,
        t: SimTime,
        node: NodeId,
        from: Option<NodeId>,
        request: DocRequest,
        index: u32,
    ) {
        let now = t.as_secs();
        let i = node.index();
        if let Some(child) = from {
            let slot = self.child_slot[child.index()];
            self.nodes[i].flows.record(slot, index, now);
        }
        self.nodes[i].seen.record(0, index, now);

        let is_root = self.tree.parent(node).is_none();
        let should_serve = if is_root {
            true
        } else if self.nodes[i].filter.contains(index) {
            // Intercepted: serve if the token bucket grants it; otherwise
            // put the packet back on its path (a filter false-positive in
            // rate terms).
            if self.nodes[i].alloc_set.contains(index) {
                self.nodes[i].alloc[index as usize].try_take(now)
            } else {
                false
            }
        } else {
            false
        };

        if should_serve {
            let response = DocResponse::serve(&request, node);
            self.nodes[i].served.record(0, index, now);
            self.nodes[i].served_total += 1;
            self.hops_sum += u64::from(response.up_hops);
            self.served_requests += 1;
            self.ledger
                .record(TrafficClass::Response, 1024, response.round_trip_hops);
        } else {
            let parent = self.tree.parent(node).expect("non-root forwards");
            self.ledger
                .record(TrafficClass::Request, request.wire_bytes(), 1);
            self.queue.schedule(
                t + SimTime::from_secs(self.config.link_delay),
                Event::Packet {
                    node: parent,
                    from: Some(node),
                    request: request.hop(),
                    index,
                },
            );
        }
    }

    fn measured_load(&mut self, node: NodeId, now: f64) -> f64 {
        let i = node.index();
        self.nodes[i].served.roll_to(now);
        self.nodes[i].served.row_total(0)
    }

    /// Is `hi - lo` a statistically meaningful imbalance, or measurement
    /// noise? Rate estimates of a Poisson stream at rate `L` carry a
    /// standard deviation of about `sqrt(L)` per window, so the protocol
    /// only acts beyond a relative hysteresis plus a few sigmas.
    fn significant_imbalance(&self, hi: f64, lo: f64) -> bool {
        hi - lo > self.config.hysteresis * hi + self.config.noise_sigmas * hi.max(1.0).sqrt()
    }

    fn on_gossip_timer(&mut self, t: SimTime, node: NodeId) {
        let now = t.as_secs();
        let load = self.measured_load(node, now);
        // Parent first, then children — the original neighbor order.
        if let Some(p) = self.tree.parent(node) {
            self.gossip_to(t, node, p, load);
        }
        for slot in 0..self.tree.children(node).len() {
            let c = self.tree.children(node)[slot];
            self.gossip_to(t, node, c, load);
        }
        let seq = self.queue.alloc_seq();
        self.gossip_ring.rearm(node.index(), seq);
    }

    /// `true` when the control link between two tree neighbors is down.
    fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        if self.tree.parent(a) == Some(b) {
            self.failed_up[a.index()]
        } else {
            self.failed_up[b.index()]
        }
    }

    /// Emits one gossip message from `node` to `nbr`, subject to the
    /// failure-injection loss probability. A severed control link emits
    /// nothing — the sender knows the link is down.
    fn gossip_to(&mut self, t: SimTime, node: NodeId, nbr: NodeId, load: f64) {
        if self.link_severed(node, nbr) {
            return;
        }
        self.ledger.record(TrafficClass::Gossip, 32, 1);
        let mut rng = self.rng.fork(0xB0B0 ^ (self.queue.processed() << 8));
        let lost = self.config.gossip_loss > 0.0
            && rand::Rng::gen::<f64>(&mut rng) < self.config.gossip_loss;
        if !lost {
            self.queue.schedule(
                t + SimTime::from_secs(self.config.link_delay),
                Event::GossipDeliver {
                    to: nbr,
                    from: node,
                    load,
                },
            );
        }
    }

    fn on_diffusion(&mut self, t: SimTime, node: NodeId) {
        let now = t.as_secs();
        let i = node.index();
        let m = self.table.len();
        self.nodes[i].flows.roll_to(now);
        self.nodes[i].seen.roll_to(now);
        let my_load = self.measured_load(node, now);

        // Push load down to any child that gossiped a lower load.
        let is_root = self.tree.parent(node).is_none();
        for slot in 0..self.tree.children(node).len() {
            let c = self.tree.children(node)[slot];
            if self.failed_up[c.index()] {
                // Control link down: no copies move to this child.
                continue;
            }
            let Some(child_load) = self.nodes[i].child_est[slot] else {
                continue;
            };
            if !self.significant_imbalance(my_load, child_load) {
                continue;
            }
            let a_c = self.nodes[i].flows.row_total(slot);
            let target = (self.alpha * (my_load - child_load)).min(a_c);
            if target <= 0.0 {
                continue;
            }
            // Docs this node serves that the child forwards.
            if is_root {
                // The root serves everything that reaches it; it can push
                // any doc the child forwards.
                self.nodes[i].flows.row_doc_rates(slot, &mut self.cand_buf);
            } else {
                self.cand_buf.clear();
                for k in 0..m as u32 {
                    let s = self.nodes[i].served.rate(0, k);
                    if s <= 0.0 {
                        continue;
                    }
                    let f = self.nodes[i].flows.rate(slot, k);
                    let cap = s.min(f);
                    if cap > 0.0 {
                        self.cand_buf.push((k, cap));
                    }
                }
            }
            plan_push_dense(
                &self.cand_buf,
                target,
                &mut self.sort_buf,
                &mut self.plan_buf,
            );
            for pi in 0..self.plan_buf.len() {
                let slice = self.plan_buf[pi];
                self.copy_pushes += 1;
                self.ledger.record(TrafficClass::CopyPush, 16 * 1024, 1);
                self.queue.schedule(
                    t + SimTime::from_secs(self.config.link_delay),
                    Event::CopyInstall {
                        node: c,
                        index: slice.index,
                        rate: slice.rate,
                    },
                );
                if !is_root {
                    // Give up the corresponding share of our own allocation.
                    if self.nodes[i].alloc_set.contains(slice.index) {
                        let b = &mut self.nodes[i].alloc[slice.index as usize];
                        b.rate = (b.rate - slice.rate).max(0.0);
                    }
                }
            }
        }

        // Compare against the parent: take over passing load, shed, or
        // eventually tunnel. A failed uplink suspends all of it (tunneling
        // included — the fetch path runs through the dead control link).
        if self.tree.parent(node).is_some() && !self.failed_up[i] {
            if let Some(pl) = self.nodes[i].parent_est {
                if self.significant_imbalance(pl, my_load) {
                    let want = self.alpha * (pl - my_load);
                    // Take over flow for documents we already hold.
                    self.cand_buf.clear();
                    for k in 0..m as u32 {
                        let seen_rate = self.nodes[i].seen.rate(0, k);
                        if seen_rate <= 0.0 || !self.nodes[i].copies.contains(k) {
                            continue;
                        }
                        let served = self.nodes[i].served.rate(0, k);
                        let headroom = (seen_rate - served).max(0.0);
                        if headroom > 0.0 {
                            self.cand_buf.push((k, headroom));
                        }
                    }
                    plan_push_dense(&self.cand_buf, want, &mut self.sort_buf, &mut self.plan_buf);
                    let mut taken = 0.0;
                    for pi in 0..self.plan_buf.len() {
                        let slice = self.plan_buf[pi];
                        let k = slice.index;
                        if self.nodes[i].alloc_set.insert(k) {
                            self.nodes[i].alloc[k as usize] = TokenBucket::new(0.0, now);
                        }
                        self.nodes[i].alloc[k as usize].rate += slice.rate;
                        taken += slice.rate;
                    }
                    if taken <= 1e-9 {
                        self.nodes[i].underload_streak += 1;
                        if self.config.tunneling
                            && self.nodes[i].underload_streak > self.config.barrier_patience
                        {
                            self.tunnel(t, node, want);
                            self.nodes[i].underload_streak = 0;
                        }
                    } else {
                        self.nodes[i].underload_streak = 0;
                    }
                } else if self.significant_imbalance(my_load, pl) {
                    // Shed upward: reduce allocations, coldest docs first.
                    let shed_target = self.alpha * (my_load - pl);
                    self.nodes[i].served.row_doc_rates(0, &mut self.cand_buf);
                    plan_shed_dense(
                        &self.cand_buf,
                        shed_target,
                        &mut self.sort_buf,
                        &mut self.plan_buf,
                    );
                    for pi in 0..self.plan_buf.len() {
                        let slice = self.plan_buf[pi];
                        if self.nodes[i].alloc_set.contains(slice.index) {
                            let b = &mut self.nodes[i].alloc[slice.index as usize];
                            b.rate = (b.rate - slice.rate).max(0.0);
                        }
                    }
                    self.nodes[i].underload_streak = 0;
                }
            }
        }

        // Observer: record the global distance to the TLB oracle without
        // allocating a rates vector.
        let mut sum_sq = 0.0;
        for j in 0..self.tree.len() {
            self.nodes[j].served.roll_to(now);
            let d = self.nodes[j].served.row_total(0) - self.oracle[NodeId::new(j)];
            sum_sq += d * d;
        }
        self.trace.push(sum_sq.sqrt());

        let seq = self.queue.alloc_seq();
        self.diffusion_ring.rearm(node.index(), seq);
    }

    /// Tunneling: fetch the hottest forwarded-but-not-held document from
    /// the nearest upstream holder, paying the round trip.
    fn tunnel(&mut self, t: SimTime, node: NodeId, want: f64) {
        let i = node.index();
        let m = self.table.len();
        // Hottest seen-but-not-held document; ties break toward the
        // smaller index (= smaller id), matching the sparse sort order.
        let mut best: Option<(u32, f64)> = None;
        for k in 0..m as u32 {
            let r = self.nodes[i].seen.rate(0, k);
            if r <= 0.0 || self.nodes[i].copies.contains(k) {
                continue;
            }
            if best.is_none_or(|(_, br)| r > br) {
                best = Some((k, r));
            }
        }
        let Some((index, rate)) = best else {
            return;
        };
        // Find the nearest ancestor holding the document.
        let mut hops = 0u32;
        let mut cur = node;
        while let Some(p) = self.tree.parent(cur) {
            hops += 1;
            if self.nodes[p.index()].copies.contains(index) {
                break;
            }
            cur = p;
        }
        self.tunnel_fetches += 1;
        self.ledger
            .record(TrafficClass::Tunnel, 16 * 1024, hops * 2);
        self.queue.schedule(
            t + SimTime::from_secs(self.config.link_delay * f64::from(hops * 2)),
            Event::CopyInstall {
                node,
                index,
                rate: rate.min(want).max(1.0),
            },
        );
    }

    fn on_copy_install(&mut self, t: SimTime, node: NodeId, index: u32, rate: f64) {
        let i = node.index();
        let now = t.as_secs();
        if self.nodes[i].copies.insert(index) {
            self.nodes[i].filter.insert(index);
        }
        if self.nodes[i].alloc_set.insert(index) {
            self.nodes[i].alloc[index as usize] = TokenBucket::new(0.0, now);
        }
        self.nodes[i].alloc[index as usize].rate += rate;
    }

    /// Produces the final report (also usable mid-run).
    pub fn report(&mut self) -> PacketSimReport {
        let now = self.queue.now().as_secs();
        let rates: Vec<f64> = (0..self.tree.len())
            .map(|j| {
                self.nodes[j].served.roll_to(now.max(1e-9));
                self.nodes[j].served.row_total(0)
            })
            .collect();
        let served_rates = RateVector::from(rates);
        let final_distance = served_rates.euclidean_distance(&self.oracle);
        PacketSimReport {
            final_distance,
            served_rates,
            oracle: self.oracle.clone(),
            trace: self.trace.clone(),
            ledger: self.ledger.clone(),
            mean_hops: if self.served_requests == 0 {
                0.0
            } else {
                self.hops_sum as f64 / self.served_requests as f64
            },
            copy_pushes: self.copy_pushes,
            tunnel_fetches: self.tunnel_fetches,
            served_requests: self.served_requests,
        }
    }

    /// The TLB oracle for the offered demand.
    pub fn oracle(&self) -> &RateVector {
        &self.oracle
    }

    /// The dense document table of this simulation's universe.
    pub fn doc_table(&self) -> &DocTable {
        &self.table
    }

    /// Lifetime served-request count of one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn served_total(&self, node: NodeId) -> u64 {
        self.nodes[node.index()].served_total
    }

    /// The routing tree this simulation runs on.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Whether the control link from `node` to its parent is failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn link_failed(&self, node: NodeId) -> bool {
        self.failed_up[node.index()]
    }

    /// Fails the control link between `node` and its parent: gossip stops
    /// crossing it (estimates on both sides go stale), no copies are
    /// pushed or tunneled across, and the node's diffusion step ignores
    /// its parent until [`PacketSim::heal_link`]. Request packets — the
    /// data plane — keep flowing. Returns `false` when already failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn fail_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.tree.parent(node).is_some(),
            "the root has no uplink to fail"
        );
        !std::mem::replace(&mut self.failed_up[node.index()], true)
    }

    /// Restores the control link between `node` and its parent. Returns
    /// `false` when the link was not failed.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or is the root.
    pub fn heal_link(&mut self, node: NodeId) -> bool {
        assert!(
            self.tree.parent(node).is_some(),
            "the root has no uplink to heal"
        );
        std::mem::replace(&mut self.failed_up[node.index()], false)
    }

    /// Re-publish (update) a document: every cached copy outside the home
    /// server is invalidated — copies, filters, and serve allocations for
    /// `doc` vanish, and the stale serve-rate estimates for it are reset.
    /// One invalidation message per revoked copy is charged to the ledger
    /// (control traffic from the root, paying the node's depth in hops).
    /// Demand is unchanged; requests fall back to the home server until
    /// diffusion re-spreads the new version.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownDocument`] when `doc` is outside the
    /// simulated universe.
    pub fn invalidate(&mut self, doc: DocId) -> Result<(), ModelError> {
        let Some(k) = self.table.index_of(doc) else {
            return Err(ModelError::UnknownDocument { doc: doc.value() });
        };
        let root = self.tree.root();
        for j in 0..self.tree.len() {
            let node = NodeId::new(j);
            if node == root {
                continue;
            }
            let state = &mut self.nodes[j];
            if state.copies.remove(k) {
                state.filter.remove(k);
                state.alloc_set.remove(k);
                state.alloc[k as usize].rate = 0.0;
                state.served.clear_doc(k);
                self.ledger
                    .record(TrafficClass::Gossip, 64, self.tree.depth(node) as u32);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ww_topology::paper;

    fn fig7_mix() -> (Tree, DocMix) {
        let b = paper::fig7();
        let mut mix = DocMix::new(b.tree.len());
        for d in &b.demands {
            mix.set(d.origin, d.doc, d.rate);
        }
        (b.tree, mix)
    }

    #[test]
    fn all_requests_served_and_accounted() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(10.0);
        // 360 req/s for 10 s: expect on the order of 3600 served requests.
        assert!(
            report.served_requests > 2500 && report.served_requests < 4700,
            "served {}",
            report.served_requests
        );
        assert_eq!(
            report.ledger.count(TrafficClass::Response),
            report.served_requests
        );
    }

    #[test]
    fn convergence_toward_tlb_with_tunneling() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(60.0);
        let initial = report.trace.initial().unwrap_or(f64::INFINITY);
        assert!(
            report.final_distance < initial * 0.35,
            "distance {} of initial {}",
            report.final_distance,
            initial
        );
        assert!(report.tunnel_fetches >= 1, "tunneling should fire");
        // Every node ends up serving a nontrivial share.
        for (node, rate) in report.served_rates.iter() {
            assert!(rate > 30.0, "node {node} serves only {rate}");
        }
    }

    #[test]
    fn tunneling_accelerates_the_starved_node() {
        // Unlike the deterministic document-level engine (where the
        // Figure 7 barrier stalls *permanently* — see `docsim`), the
        // packet engine's measurement noise eventually leaks the blocked
        // document past the barrier. The realistic claim is therefore
        // about speed: with tunneling, the starved node ramps up sooner.
        let (tree, mix) = fig7_mix();
        let n2_at = |tunneling: bool, horizon: f64| {
            let cfg = PacketSimConfig {
                tunneling,
                ..PacketSimConfig::default()
            };
            let mut sim = PacketSim::new(&tree, &mix, cfg);
            let r = sim.run(horizon);
            (r.served_rates[NodeId::new(2)], r.tunnel_fetches)
        };
        let (with_tunnel, fetches) = n2_at(true, 8.0);
        let (without_tunnel, no_fetches) = n2_at(false, 8.0);
        assert!(fetches >= 1, "tunneling should fire");
        assert_eq!(no_fetches, 0);
        assert!(
            with_tunnel > without_tunnel * 1.2,
            "tunneling ramp {with_tunnel} should beat {without_tunnel}"
        );
    }

    #[test]
    fn mean_hops_decrease_as_copies_spread() {
        let (tree, mix) = fig7_mix();
        // Short run: most requests go all the way to the root.
        let mut early = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let early_report = early.run(3.0);
        // Long run: caches absorb most requests close to the clients.
        let mut late = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let late_report = late.run(60.0);
        assert!(
            late_report.mean_hops < early_report.mean_hops,
            "late {} vs early {}",
            late_report.mean_hops,
            early_report.mean_hops
        );
    }

    #[test]
    fn gossip_overhead_is_periodic_not_per_request() {
        let (tree, mix) = fig7_mix();
        let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
        let report = sim.run(20.0);
        let gossip = report.ledger.count(TrafficClass::Gossip);
        // 4 nodes x (neighbors) x (20 s / 0.5 s) is on the order of 500,
        // far below the ~7200 requests.
        assert!(gossip > 100, "gossip {gossip}");
        assert!(
            (gossip as f64) < report.served_requests as f64 * 0.5,
            "gossip {} vs served {}",
            gossip,
            report.served_requests
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (tree, mix) = fig7_mix();
        let run = |seed: u64| {
            let cfg = PacketSimConfig {
                seed,
                ..PacketSimConfig::default()
            };
            let mut sim = PacketSim::new(&tree, &mix, cfg);
            let r = sim.run(5.0);
            (r.served_requests, r.copy_pushes)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn gossip_loss_tolerated() {
        let (tree, mix) = fig7_mix();
        let cfg = PacketSimConfig {
            gossip_loss: 0.3,
            ..PacketSimConfig::default()
        };
        let mut sim = PacketSim::new(&tree, &mix, cfg);
        let report = sim.run(60.0);
        let initial = report.trace.initial().unwrap_or(f64::INFINITY);
        assert!(
            report.final_distance < initial * 0.5,
            "distance {} of initial {}",
            report.final_distance,
            initial
        );
    }

    #[test]
    fn trace_is_reproducible_across_runs() {
        // The timer rings must merge with the heap in a deterministic
        // order: two identically seeded runs produce identical traces.
        let (tree, mix) = fig7_mix();
        let trace = |_| {
            let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
            sim.run(15.0).trace.distances().to_vec()
        };
        assert_eq!(trace(0), trace(1));
    }
}
