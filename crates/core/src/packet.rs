//! Shared node logic of the packet-level WebWave protocol.
//!
//! Both packet-level drivers — the sequential [`PacketSim`] and the
//! sharded parallel engine in the `ww-pdes` crate — execute exactly this
//! module's handlers. Everything here is **node-local by construction**:
//! a handler may read the static [`PacketWorld`], mutate the one
//! [`NodeState`] the event targets, append follow-up events to the
//! [`NodeCtx`] outbox, and bump shard-mergeable counters — and nothing
//! else. No handler reads another node's state, so the global event
//! interleaving across nodes cannot influence any node's evolution, which
//! is what lets a sharded run replay the sequential run bit for bit.
//!
//! Three design rules keep it that way:
//!
//! 1. **Content-keyed randomness.** Every random draw comes from a
//!    per-node stream forked purely from `(master seed, node, purpose)`
//!    and consumed in node-local event order — never from global
//!    sequence counters (which would depend on the cross-node
//!    interleaving and therefore on the sharding).
//! 2. **Message-passing only.** Cross-node effects travel as timestamped
//!    events along tree edges, each paying at least one
//!    [`PacketSimConfig::link_delay`]. Tunneling, which used to inspect
//!    ancestor caches synchronously, is a [`PacketEvent::TunnelProbe`]
//!    climbing hop by hop and a [`PacketEvent::TunnelGrant`] descending
//!    back — the link latency is the parallel engine's lookahead.
//! 3. **Barrier-time observation.** The convergence trace is sampled at
//!    diffusion-epoch boundaries (`k * diffusion_period`) by the driver,
//!    not inside per-node handlers. That turns the old `O(n²)` per-period
//!    observer into `O(n)` and gives the parallel engine a globally
//!    consistent instant at which to aggregate.
//!
//! [`PacketSim`]: crate::packetsim::PacketSim

use crate::fold::IncrementalFold;
use ww_cache::{plan_push_dense, plan_shed_dense, DenseFlowTable, DenseRateSlice};
use ww_diffusion::safe_alpha;
use ww_model::{DocId, DocSet, DocTable, LeafRemoval, ModelError, NodeId, RateVector, Tree};
use ww_net::{DocRequest, DocResponse, RequestId, TrafficClass, TrafficLedger};
use ww_sim::{exp_delay, SimQueue, SimRng, SimTime, TimerRing};
use ww_stats::ExactSum;
use ww_workload::DocMix;

/// Stream tag of per-node arrival randomness.
const STREAM_ARRIVAL: u64 = 0xA221_0000;
/// Stream tag of per-node gossip-loss randomness.
const STREAM_GOSSIP: u64 = 0xB0B0_0000;
/// Stream tag folded in (with the world generation) when the arrival
/// stage is re-resolved at a barrier, so rebuilt streams are fresh yet
/// remain pure functions of `(seed, node, doc, generation)`.
const STREAM_REBUILD: u64 = 0x4EB1_0000;

/// Configuration of a packet-level run (shared by the sequential and the
/// sharded parallel driver).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketSimConfig {
    /// Master random seed.
    pub seed: u64,
    /// One-way per-hop link latency, seconds.
    pub link_delay: f64,
    /// How often each node gossips its measured load to tree neighbors.
    pub gossip_period: f64,
    /// How often each node runs its diffusion step.
    pub diffusion_period: f64,
    /// Rate-measurement window, seconds.
    pub measure_window: f64,
    /// Diffusion parameter; `None` selects `1/(max_degree + 1)`.
    pub alpha: Option<f64>,
    /// Enable tunneling across potential barriers.
    pub tunneling: bool,
    /// Underloaded-with-no-action periods tolerated before tunneling.
    pub barrier_patience: usize,
    /// Probability that a gossip message is lost (failure injection).
    pub gossip_loss: f64,
    /// Relative hysteresis: a load difference must exceed this fraction of
    /// the larger load before the protocol acts. Guards against reacting
    /// to measurement noise.
    pub hysteresis: f64,
    /// Additional absolute deadband in units of the Poisson standard
    /// deviation `sqrt(load)`; with rate-measured loads, differences below
    /// `noise_sigmas * sqrt(L)` are statistically indistinguishable from
    /// sampling noise.
    pub noise_sigmas: f64,
}

impl Default for PacketSimConfig {
    fn default() -> Self {
        PacketSimConfig {
            seed: 1997,
            link_delay: 0.005,
            gossip_period: 0.5,
            diffusion_period: 1.0,
            measure_window: 1.0,
            alpha: None,
            tunneling: true,
            barrier_patience: 2,
            gossip_loss: 0.0,
            hysteresis: 0.05,
            noise_sigmas: 3.0,
        }
    }
}

/// The shared world of a packet-level run: topology, document universe,
/// offered demand, oracle, and configuration. Immutable *within* an
/// epoch — shards read it concurrently while their event loops run —
/// and mutable only at epoch barriers, where the drivers apply churn,
/// publishes, and workload shifts through [`PacketWorld::join`],
/// [`PacketWorld::leave`], [`PacketWorld::publish`], and
/// [`PacketWorld::set_mix`].
#[derive(Debug, Clone)]
pub struct PacketWorld {
    /// The routing tree.
    pub tree: Tree,
    /// Dense document index of the simulated universe.
    pub table: DocTable,
    /// Slot of each node within its parent's child list (root: unused 0).
    pub child_slot: Vec<usize>,
    /// The live per-node, per-document demand mix (authoritative;
    /// `demand` is derived from it).
    pub mix: DocMix,
    /// Per node: `(doc, dense index, rate)` arrival streams.
    pub demand: Vec<Vec<(DocId, u32, f64)>>,
    /// The WebFold oracle for the offered demand.
    pub oracle: RateVector,
    /// Run configuration.
    pub config: PacketSimConfig,
    /// Resolved diffusion parameter.
    pub alpha: f64,
    /// Arrival-stage generation: bumped by every barrier operation that
    /// re-resolves the arrival streams (churn, publish, shift). Folded
    /// into the stream RNG forks, so rebuilt streams stay content-keyed.
    pub generation: u64,
    /// The incremental WebFold cache behind `oracle`: barrier mutations
    /// dirty only root paths, so each oracle refresh re-folds
    /// `O(depth)` summaries instead of sweeping all `n` nodes.
    fold: IncrementalFold,
    /// Whether a barrier batch is open (see [`PacketWorld::begin_batch`]).
    batched: bool,
    /// Whether a mutation deferred its oracle refresh to the batch end.
    batch_dirty: bool,
    /// Observation-only oracle bookkeeping (see `docs/observability.md`).
    pub(crate) tel: WorldTel,
}

/// Observation-only counters the world keeps about its own oracle
/// maintenance: how often the incremental refold ran versus a
/// from-scratch sweep, and (when a driver asked for spans) how long the
/// refreshes took. Plain integers off the per-packet path — they are
/// read only by `telemetry_snapshot`, never by the simulation.
#[derive(Debug, Clone, Default)]
pub struct WorldTel {
    /// Incremental `refold_path` refreshes since construction.
    pub refolds: u64,
    /// From-scratch WebFold sweeps (construction counts one).
    pub full_sweeps: u64,
    /// Accumulated oracle-refresh time (only when `timed`).
    pub refresh_ns: u64,
    /// Refresh spans recorded (only when `timed`).
    pub refresh_count: u64,
    /// Whether refreshes read the monotonic clock (full-span telemetry
    /// requested by the owning driver).
    pub timed: bool,
}

impl PacketWorld {
    /// Builds the world for `tree` under the per-node document demand
    /// `mix`.
    ///
    /// # Panics
    ///
    /// Panics if `mix` does not cover `tree` or config values are out of
    /// range.
    pub fn new(tree: &Tree, mix: &DocMix, config: PacketSimConfig) -> Self {
        assert_eq!(mix.len(), tree.len(), "doc mix must cover the tree");
        assert!(config.link_delay >= 0.0, "link delay must be >= 0");
        assert!(
            (0.0..=1.0).contains(&config.gossip_loss),
            "gossip loss is a probability"
        );
        let table = DocTable::from_ids(mix.documents());
        let mut world = PacketWorld {
            tree: tree.clone(),
            table,
            child_slot: Vec::new(),
            mix: mix.clone(),
            demand: Vec::new(),
            oracle: RateVector::zeros(tree.len()),
            config,
            alpha: 0.5,
            generation: 0,
            fold: IncrementalFold::new(tree, &mix.spontaneous()),
            batched: false,
            batch_dirty: false,
            tel: WorldTel {
                // `IncrementalFold::new` seeds its cache with one
                // from-scratch sweep.
                full_sweeps: 1,
                ..WorldTel::default()
            },
        };
        world.refresh_derived();
        assert!(
            world.alpha > 0.0 && world.alpha < 1.0,
            "alpha must lie in (0, 1)"
        );
        world
    }

    /// Recomputes everything derived from `(tree, mix, table)`. Called
    /// at construction and after every barrier mutation. The structural
    /// half (demand streams, child-slot index) always runs — mutations
    /// later in the same barrier read it — while the expensive oracle
    /// half is deferred to [`PacketWorld::end_batch`] when a batch is
    /// open, so a K-event barrier pays for one refold instead of K.
    fn refresh_derived(&mut self) {
        self.refresh_structural();
        if self.batched {
            self.batch_dirty = true;
        } else {
            self.refresh_oracle();
        }
    }

    /// The cheap structural half: child-slot index and demand streams.
    fn refresh_structural(&mut self) {
        let n = self.tree.len();
        self.child_slot = vec![0usize; n];
        for u in self.tree.nodes() {
            for (slot, &c) in self.tree.children(u).iter().enumerate() {
                self.child_slot[c.index()] = slot;
            }
        }
        self.demand = (0..n)
            .map(|i| {
                self.mix
                    .demands_of(NodeId::new(i))
                    .iter()
                    .map(|&(d, r)| {
                        (
                            d,
                            self.table.index_of(d).expect("demand doc in universe"),
                            r,
                        )
                    })
                    .collect()
            })
            .collect();
    }

    /// The expensive half: diffusion parameter and WebFold oracle, the
    /// latter through the incremental refold cache.
    fn refresh_oracle(&mut self) {
        let t0 = if self.tel.timed {
            Some(std::time::Instant::now())
        } else {
            None
        };
        self.alpha = self.config.alpha.unwrap_or_else(|| safe_alpha(&self.tree));
        let spontaneous = self.mix.spontaneous();
        self.oracle = self.fold.refold_path(&self.tree, &spontaneous).into_load();
        self.tel.refolds += 1;
        if let Some(t0) = t0 {
            self.tel.refresh_ns += t0.elapsed().as_nanos() as u64;
            self.tel.refresh_count += 1;
        }
    }

    /// Opens a barrier batch: subsequent mutations keep refreshing the
    /// structural derived state eagerly (later mutations in the batch
    /// depend on it) but defer the oracle/alpha refresh until
    /// [`PacketWorld::end_batch`].
    ///
    /// # Panics
    ///
    /// Panics if a batch is already open.
    pub fn begin_batch(&mut self) {
        assert!(!self.batched, "a world batch is already open");
        self.batched = true;
    }

    /// Closes the batch, performing the deferred oracle refresh once if
    /// any mutation ran. The world is then bit-identical to one that
    /// applied the same mutations unbatched.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn end_batch(&mut self) {
        assert!(self.batched, "no open world batch");
        self.batched = false;
        if std::mem::take(&mut self.batch_dirty) {
            self.refresh_oracle();
        }
    }

    /// Enables or disables span timing of oracle refreshes. Observation
    /// only: the flag gates reads of the monotonic clock, never anything
    /// the simulation computes.
    pub fn set_telemetry_timing(&mut self, timed: bool) {
        self.tel.timed = timed;
    }

    /// The observation-only oracle-maintenance counters (refolds, full
    /// sweeps, refresh spans). See `docs/observability.md`.
    pub fn oracle_telemetry(&self) -> &WorldTel {
        &self.tel
    }

    /// A cache server joins as a new leaf under `parent`, bringing
    /// `rate` req/s of demand split across the universe proportionally
    /// to current global document popularity (the same law
    /// `DocSim::add_leaf` applies). Bumps the arrival generation; the
    /// driver must rebuild the arrival stage afterwards.
    ///
    /// # Errors
    ///
    /// [`ModelError::NodeOutOfRange`] for an unknown parent,
    /// [`ModelError::InvalidRate`] for a bad rate or when `rate > 0`
    /// but the universe carries no demand to model the split on.
    pub fn join(&mut self, parent: NodeId, rate: f64) -> Result<NodeId, ModelError> {
        if parent.index() >= self.tree.len() {
            return Err(ModelError::NodeOutOfRange {
                node: parent,
                len: self.tree.len(),
            });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(ModelError::InvalidRate {
                node: parent,
                value: rate,
            });
        }
        // Per-document global demand, accumulated in one pass over the
        // mix (node order per document — the same float order a per-doc
        // `doc_total` scan produces, without the m × n binary searches).
        let mut totals = vec![0.0f64; self.table.len()];
        for i in 0..self.mix.len() {
            for &(d, r) in self.mix.demands_of(NodeId::new(i)) {
                let k = self.table.index_of(d).expect("mix doc in universe");
                totals[k as usize] += r;
            }
        }
        let grand: f64 = totals.iter().sum();
        if rate > 0.0 && grand <= 0.0 {
            return Err(ModelError::InvalidRate {
                node: parent,
                value: rate,
            });
        }
        let id = self.tree.add_leaf(parent)?;
        self.fold.on_join(&self.tree, id);
        let newcomer = self.mix.add_node();
        debug_assert_eq!(id, newcomer);
        if rate > 0.0 {
            for (k, &t) in totals.iter().enumerate() {
                if t > 0.0 {
                    self.mix
                        .set(newcomer, self.table.doc(k as u32), rate * t / grand);
                }
            }
        }
        self.generation += 1;
        self.refresh_derived();
        Ok(id)
    }

    /// A leaf cache server departs: its demand re-homes to its parent
    /// and ids compact by swap-remove, exactly as
    /// [`Tree::remove_leaf`]. Bumps the arrival generation; the driver
    /// must apply the same compaction to its per-node state, perform the
    /// event surgery of [`renumber_for_leave`], and rebuild the arrival
    /// stage.
    ///
    /// # Errors
    ///
    /// As [`Tree::remove_leaf`]: unknown id, the root, or an interior
    /// node.
    pub fn leave(&mut self, node: NodeId) -> Result<LeafRemoval, ModelError> {
        let removal = self.tree.remove_leaf(node)?;
        self.fold.on_leave(&self.tree, &removal);
        let departed = self.mix.swap_remove_node(node);
        for (d, r) in departed {
            if r > 0.0 {
                self.mix.add_rate(removal.parent, d, r);
            }
        }
        self.generation += 1;
        self.refresh_derived();
        Ok(removal)
    }

    /// Publishes a document: `origin`'s clients start requesting `doc`
    /// at `rate` req/s, added on top of any existing demand. A
    /// first-time id grows the dense universe; the returned
    /// [`UniverseGrowth`] tells the driver how to remap every node's
    /// per-document state (`None`: the universe was unchanged). Bumps
    /// the arrival generation.
    ///
    /// # Errors
    ///
    /// [`ModelError::NodeOutOfRange`] for an unknown origin,
    /// [`ModelError::InvalidRate`] for a negative/non-finite rate.
    pub fn publish(
        &mut self,
        doc: DocId,
        origin: NodeId,
        rate: f64,
    ) -> Result<Option<UniverseGrowth>, ModelError> {
        let n = self.tree.len();
        if origin.index() >= n {
            return Err(ModelError::NodeOutOfRange {
                node: origin,
                len: n,
            });
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(ModelError::InvalidRate {
                node: origin,
                value: rate,
            });
        }
        let growth = self.grow_universe([doc].into_iter());
        self.mix.add_rate(origin, doc, rate);
        self.generation += 1;
        self.refresh_derived();
        Ok(growth)
    }

    /// Replaces the whole demand mix mid-run (hot-set rotation, Zipf
    /// re-skew). Copies and serve allocations survive — exactly the
    /// `DocSim::set_mix` contract — and first-time document ids grow
    /// the universe via the returned [`UniverseGrowth`]. Bumps the
    /// arrival generation.
    ///
    /// # Errors
    ///
    /// [`ModelError::LengthMismatch`] when `mix` does not cover the
    /// current tree.
    pub fn set_mix(&mut self, mix: &DocMix) -> Result<Option<UniverseGrowth>, ModelError> {
        let n = self.tree.len();
        if mix.len() != n {
            return Err(ModelError::LengthMismatch {
                expected: n,
                actual: mix.len(),
            });
        }
        let growth = self.grow_universe(mix.documents().into_iter());
        self.mix = mix.clone();
        self.generation += 1;
        self.refresh_derived();
        Ok(growth)
    }

    /// Grows the dense universe by any of `docs` not yet in the table.
    /// Insertion keeps ascending-id order, so existing columns at or
    /// above an insertion point shift right.
    fn grow_universe(&mut self, docs: impl Iterator<Item = DocId>) -> Option<UniverseGrowth> {
        let mut fresh_ids: Vec<DocId> =
            docs.filter(|&d| self.table.index_of(d).is_none()).collect();
        fresh_ids.sort_unstable();
        fresh_ids.dedup();
        if fresh_ids.is_empty() {
            return None;
        }
        let new_table = DocTable::from_ids(
            self.table
                .docs()
                .iter()
                .copied()
                .chain(fresh_ids.iter().copied()),
        );
        let old_to_new: Vec<u32> = self
            .table
            .docs()
            .iter()
            .map(|&d| new_table.index_of(d).expect("old doc kept"))
            .collect();
        let fresh: Vec<u32> = fresh_ids
            .iter()
            .map(|&d| new_table.index_of(d).expect("just inserted"))
            .collect();
        let new_len = new_table.len();
        self.table = new_table;
        Some(UniverseGrowth {
            old_to_new,
            fresh,
            new_len,
        })
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` for the (degenerate) empty world.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// First gossip fire of node `i`: phases are staggered across nodes
    /// to avoid artificial synchrony.
    pub fn gossip_phase(&self, i: usize) -> SimTime {
        let phase = (i as f64 + 1.0) / (self.len() as f64 + 1.0);
        SimTime::from_secs(self.config.gossip_period * phase)
    }

    /// First diffusion fire of node `i` (offset half a period past the
    /// gossip phase so estimates exist before the first decision).
    pub fn diffusion_phase(&self, i: usize) -> SimTime {
        let phase = (i as f64 + 1.0) / (self.len() as f64 + 1.0);
        SimTime::from_secs(self.config.diffusion_period * (0.5 + 0.5 * phase))
    }
}

/// How a universe-growing barrier operation (publish, shifted mix with
/// new ids) relocated the dense document indices: existing columns move
/// to `old_to_new[old]`, and the brand-new documents land at `fresh`.
/// Drivers apply the same remapping to every node's per-document state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UniverseGrowth {
    /// New dense index of each old dense index.
    pub old_to_new: Vec<u32>,
    /// Dense indices of the newly inserted documents (ascending).
    pub fresh: Vec<u32>,
    /// Size of the grown universe.
    pub new_len: usize,
}

/// One barrier-time mutation, in the uniform shape every packet driver
/// (sequential, sharded parallel, distributed) accepts through its
/// `apply_all` batch API.
#[derive(Debug, Clone, PartialEq)]
pub enum BarrierOp {
    /// A cache server joins as a new leaf under `parent` with `rate`
    /// req/s of demand.
    AddLeaf {
        /// Parent of the newcomer.
        parent: NodeId,
        /// Offered demand the newcomer brings, req/s.
        rate: f64,
    },
    /// A leaf cache server departs.
    RemoveLeaf {
        /// The departing leaf.
        node: NodeId,
    },
    /// `origin`'s clients start requesting `doc` at `rate` req/s.
    PublishDoc {
        /// The published document.
        doc: DocId,
        /// Home server of the new demand.
        origin: NodeId,
        /// Added demand, req/s.
        rate: f64,
    },
    /// The whole demand mix is replaced.
    SetMix {
        /// The new mix; must cover the tree as of this op.
        mix: DocMix,
    },
    /// The control link between `node` and its parent fails.
    FailLink {
        /// The node whose uplink fails (not the root).
        node: NodeId,
    },
    /// The control link between `node` and its parent recovers.
    HealLink {
        /// The node whose uplink heals (not the root).
        node: NodeId,
    },
    /// Every cached copy of `doc` outside its home server is revoked.
    Invalidate {
        /// The invalidated document.
        doc: DocId,
    },
}

/// What one accepted [`BarrierOp`] did.
#[derive(Debug, Clone, PartialEq)]
pub enum BarrierOutcome {
    /// A leaf joined with this id.
    Added(NodeId),
    /// A leaf departed.
    Removed(LeafRemoval),
    /// A link toggled; `false` when it was already in that state.
    Toggled(bool),
    /// The op completed with nothing further to report.
    Done,
}

/// One deferred queue-surgery pass, recorded while a barrier batch is
/// open. At commit the accumulated steps compose into a **single**
/// `filter_map_events` sweep: applying them to an event in order is
/// exactly the function composition of the per-op sweeps — every step
/// drops arrival events, so the one fresh arrival re-resolution at the
/// end of the batch sees the same survivors the sequential K-pass path
/// produces.
#[derive(Debug, Clone)]
pub enum SurgeryStep {
    /// The sweep of a demand re-resolution (join/publish/shift): drop
    /// arrivals, remap document indices when the universe grew.
    Rebuild(Option<UniverseGrowth>),
    /// The sweep of a leave: drop arrivals and the departed node's
    /// events, renumber the compacted former-last id.
    Leave {
        /// Id the departed leaf held.
        removed: NodeId,
        /// Former last id, now living at `removed` (when renumbered).
        moved: Option<NodeId>,
    },
}

/// Applies a batch's surgery steps to one queued event, in batch order.
/// `None` drops the event.
pub fn apply_surgery(ev: PacketEvent, steps: &[SurgeryStep]) -> Option<PacketEvent> {
    let mut ev = ev;
    for step in steps {
        ev = match step {
            SurgeryStep::Rebuild(growth) => remap_for_rebuild(ev, growth.as_ref())?,
            SurgeryStep::Leave { removed, moved } => renumber_for_leave(ev, *removed, *moved)?,
        };
    }
    Some(ev)
}

/// A token bucket shaping one document's serve rate.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    rate: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    const BURST: f64 = 2.0;

    fn new(rate: f64, now: f64) -> Self {
        TokenBucket {
            rate,
            tokens: 1.0,
            last: now,
        }
    }

    fn try_take(&mut self, now: f64) -> bool {
        self.tokens = (self.tokens + self.rate * (now - self.last)).min(Self::BURST);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Per-node protocol state, all per-document tables dense. Owned by
/// whichever driver shard hosts the node; handlers only ever touch the
/// state of the event's target node.
#[derive(Debug)]
pub struct NodeState {
    /// Documents this node holds a copy of.
    pub copies: DocSet,
    /// Documents this node's router filter intercepts.
    pub filter: DocSet,
    /// Per-child-slot, per-doc forwarded-rate meters.
    pub flows: DenseFlowTable,
    /// Per-doc rate of all requests seen at this node (own + children).
    pub seen: DenseFlowTable,
    /// Per-doc rate this node actually served.
    pub served: DenseFlowTable,
    /// Serve allocations in req/s per held document (token buckets),
    /// one slab cell per dense index; `alloc_set` marks live buckets.
    pub alloc: Vec<TokenBucket>,
    /// Marks live token buckets.
    pub alloc_set: DocSet,
    /// Latest gossiped load estimate of the parent.
    pub parent_est: Option<f64>,
    /// Latest gossiped load estimates of children, by child slot.
    pub child_est: Vec<Option<f64>>,
    /// Total requests served (lifetime).
    pub served_total: u64,
    /// Consecutive underloaded periods without a successful takeover.
    pub underload_streak: usize,
    /// Per-demand-stream arrival randomness, forked purely from
    /// `(master seed, node, doc)` — independent of any global counter.
    pub arrival_rng: Vec<SimRng>,
    /// Gossip-loss randomness, forked purely from `(master seed, node)`.
    pub gossip_rng: SimRng,
    /// Node-local request counter (request ids are `(node, counter)`).
    pub next_request: u64,
}

/// The RNG of one arrival stream: a pure function of
/// `(master seed, node, doc)` at generation zero, with the world's
/// arrival generation folded in once the stage has been rebuilt — so
/// streams never depend on shard layout or global construction order,
/// before or after a barrier rebuild.
pub fn arrival_stream_rng(world: &PacketWorld, node: usize, doc: DocId) -> SimRng {
    let base = SimRng::seed(world.config.seed)
        .fork(STREAM_ARRIVAL ^ (node as u64))
        .fork(doc.value());
    if world.generation == 0 {
        base
    } else {
        base.fork(STREAM_REBUILD ^ world.generation)
    }
}

/// The gossip-loss RNG of one node. Nodes that join mid-run fold the
/// generation they joined at into the fork, so a joiner reusing a
/// previously compacted id never resumes a departed node's stream.
fn gossip_stream_rng(world: &PacketWorld, node: usize) -> SimRng {
    let base = SimRng::seed(world.config.seed).fork(STREAM_GOSSIP ^ (node as u64));
    if world.generation == 0 {
        base
    } else {
        base.fork(STREAM_REBUILD ^ world.generation)
    }
}

/// Builds the initial state of `node`. The home server (root) starts
/// holding every document.
pub fn init_state(world: &PacketWorld, node: NodeId) -> NodeState {
    init_state_at(world, node, 0.0)
}

/// [`init_state`] for a node created mid-run (a barrier-time join): its
/// rate meters anchor their first window at `at` instead of time zero.
pub fn init_state_at(world: &PacketWorld, node: NodeId, at: f64) -> NodeState {
    let m = world.table.len();
    let config = &world.config;
    let i = node.index();
    let arrival_rng = world.demand[i]
        .iter()
        .map(|&(doc, _, _)| arrival_stream_rng(world, i, doc))
        .collect();
    let copies = if node == world.tree.root() {
        world.table.full_set()
    } else {
        world.table.empty_set()
    };
    let table =
        |rows: usize| DenseFlowTable::new_anchored(config.measure_window, 0.5, rows, m.max(1), at);
    NodeState {
        copies,
        filter: world.table.empty_set(),
        flows: table(world.tree.children(node).len().max(1)),
        seen: table(1),
        served: table(1),
        alloc: vec![TokenBucket::new(0.0, at); m],
        alloc_set: world.table.empty_set(),
        parent_est: None,
        child_est: vec![None; world.tree.children(node).len()],
        served_total: 0,
        underload_streak: 0,
        arrival_rng,
        gossip_rng: gossip_stream_rng(world, i),
        next_request: 0,
    }
}

/// The initial arrival events of `node`, in demand-stream order. The
/// first inter-arrival gap is drawn from the stream's own RNG, so the
/// schedule is independent of which shard primes it.
pub fn initial_arrivals(
    world: &PacketWorld,
    state: &mut NodeState,
    node: NodeId,
    out: &mut Vec<(SimTime, PacketEvent)>,
) {
    let i = node.index();
    for stream in 0..world.demand[i].len() {
        let (doc, index, rate) = world.demand[i][stream];
        if rate > 0.0 {
            let gap = exp_delay(&mut state.arrival_rng[stream], 1.0 / rate);
            out.push((
                SimTime::from_secs(gap),
                PacketEvent::Arrival {
                    node,
                    doc,
                    index,
                    stream: stream as u32,
                    rate,
                },
            ));
        }
    }
}

/// Re-resolves one node's arrival streams after a barrier mutation:
/// fresh stream RNGs forked from `(seed, node, doc, generation)`, and
/// one first arrival per positive-rate stream scheduled after `at`. The
/// driver must have dropped the node's stale [`PacketEvent::Arrival`]
/// events from its queue first (the whole-queue pass of
/// [`remap_for_rebuild`] / [`renumber_for_leave`]).
pub fn rebuild_node_arrivals(
    world: &PacketWorld,
    state: &mut NodeState,
    node: NodeId,
    at: SimTime,
    out: &mut Vec<(SimTime, PacketEvent)>,
) {
    let i = node.index();
    state.arrival_rng = world.demand[i]
        .iter()
        .map(|&(doc, _, _)| arrival_stream_rng(world, i, doc))
        .collect();
    for stream in 0..world.demand[i].len() {
        let (doc, index, rate) = world.demand[i][stream];
        if rate > 0.0 {
            let gap = exp_delay(&mut state.arrival_rng[stream], 1.0 / rate);
            out.push((
                at + SimTime::from_secs(gap),
                PacketEvent::Arrival {
                    node,
                    doc,
                    index,
                    stream: stream as u32,
                    rate,
                },
            ));
        }
    }
}

/// Queue surgery for a generation bump without churn (publish, shift):
/// stale arrivals vanish — their streams are re-resolved — and, when the
/// universe grew, surviving events' dense document indices shift to
/// their new columns. Everything else keeps its `(time, seq)` key.
pub fn remap_for_rebuild(ev: PacketEvent, growth: Option<&UniverseGrowth>) -> Option<PacketEvent> {
    let k = |index: u32| growth.map_or(index, |g| g.old_to_new[index as usize]);
    match ev {
        PacketEvent::Arrival { .. } => None,
        PacketEvent::Packet {
            node,
            from,
            request,
            index,
        } => Some(PacketEvent::Packet {
            node,
            from,
            request,
            index: k(index),
        }),
        PacketEvent::CopyInstall { node, index, rate } => Some(PacketEvent::CopyInstall {
            node,
            index: k(index),
            rate,
        }),
        PacketEvent::TunnelProbe {
            node,
            origin,
            index,
            rate,
            hops,
        } => Some(PacketEvent::TunnelProbe {
            node,
            origin,
            index: k(index),
            rate,
            hops,
        }),
        PacketEvent::TunnelGrant {
            node,
            target,
            index,
            rate,
        } => Some(PacketEvent::TunnelGrant {
            node,
            target,
            index: k(index),
            rate,
        }),
        gossip @ PacketEvent::GossipDeliver { .. } => Some(gossip),
    }
}

/// Queue surgery for a barrier-time leave: stale arrivals vanish, every
/// event that still involves the departed node — as target, source,
/// requester, or tunnel origin/target — is dropped (its state is gone,
/// its clients re-homed), and all references to the renumbered
/// former-last id move to the vacated one, so no surviving event
/// mentions the departed id in any field. Both drivers run this same
/// pure function over their queues, so the surviving event set — and
/// each survivor's `(time, seq)` key — cannot depend on the sharding.
pub fn renumber_for_leave(
    ev: PacketEvent,
    removed: NodeId,
    moved: Option<NodeId>,
) -> Option<PacketEvent> {
    let map = |x: NodeId| {
        if Some(x) == moved {
            removed
        } else {
            x
        }
    };
    match ev {
        PacketEvent::Arrival { .. } => None,
        PacketEvent::Packet {
            node,
            from,
            mut request,
            index,
        } => {
            // `from == Some(removed)` implies `origin == removed` (a
            // departing leaf only ever forwards its own clients'
            // requests), so dropping by origin covers both.
            if node == removed || from == Some(removed) || request.origin == removed {
                return None;
            }
            request.origin = map(request.origin);
            Some(PacketEvent::Packet {
                node: map(node),
                from: from.map(map),
                request,
                index,
            })
        }
        PacketEvent::GossipDeliver { to, from, load } => {
            if to == removed || from == removed {
                return None;
            }
            Some(PacketEvent::GossipDeliver {
                to: map(to),
                from: map(from),
                load,
            })
        }
        PacketEvent::CopyInstall { node, index, rate } => {
            if node == removed {
                return None;
            }
            Some(PacketEvent::CopyInstall {
                node: map(node),
                index,
                rate,
            })
        }
        PacketEvent::TunnelProbe {
            node,
            origin,
            index,
            rate,
            hops,
        } => {
            if node == removed || origin == removed {
                return None;
            }
            Some(PacketEvent::TunnelProbe {
                node: map(node),
                origin: map(origin),
                index,
                rate,
                hops,
            })
        }
        PacketEvent::TunnelGrant {
            node,
            target,
            index,
            rate,
        } => {
            if node == removed || target == removed {
                return None;
            }
            Some(PacketEvent::TunnelGrant {
                node: map(node),
                target: map(target),
                index,
                rate,
            })
        }
    }
}

/// Remaps one node's per-document state after the universe grew:
/// bitsets, token buckets, and flow meters move to their shifted
/// columns; fresh columns start empty, anchored at `at`. The home
/// server additionally receives the only copy of each new document.
pub fn grow_node_state(state: &mut NodeState, growth: &UniverseGrowth, at: f64, is_root: bool) {
    let shift_set = |set: &DocSet| {
        let mut grown = DocSet::new(growth.new_len);
        for idx in set.iter() {
            grown.insert(growth.old_to_new[idx as usize]);
        }
        grown
    };
    state.copies = shift_set(&state.copies);
    state.filter = shift_set(&state.filter);
    state.alloc_set = shift_set(&state.alloc_set);
    if is_root {
        for &k in &growth.fresh {
            state.copies.insert(k);
        }
    }
    let mut alloc = vec![TokenBucket::new(0.0, at); growth.new_len];
    for (old, &new) in growth.old_to_new.iter().enumerate() {
        alloc[new as usize] = state.alloc[old];
    }
    state.alloc = alloc;
    state
        .flows
        .remap_docs(&growth.old_to_new, growth.new_len, at);
    state
        .seen
        .remap_docs(&growth.old_to_new, growth.new_len, at);
    state
        .served
        .remap_docs(&growth.old_to_new, growth.new_len, at);
}

/// Rebuilds one node's per-child-slot state (flow meter rows and gossip
/// child estimates) from a slot mapping: `map[new_slot]` names the old
/// slot whose history the new slot keeps, `None` starts fresh (anchored
/// at `at`). Applied when churn renumbers a node's child list.
pub fn remap_children(state: &mut NodeState, map: &[Option<usize>], at: f64) {
    let rows: Vec<Option<usize>> = if map.is_empty() {
        vec![None]
    } else {
        map.to_vec()
    };
    state.flows.reorder_rows(&rows, at);
    let old_est = std::mem::take(&mut state.child_est);
    state.child_est = map
        .iter()
        .map(|&src| src.and_then(|s| old_est.get(s).copied().flatten()))
        .collect();
}

/// The per-child slot mapping of a parent that just gained a leaf: the
/// newcomer holds the highest id, so it sorts into the last slot and
/// every existing slot keeps its history. Shared by both drivers so
/// their join surgery cannot diverge.
pub fn join_slot_map(old_children: usize) -> Vec<Option<usize>> {
    let mut map: Vec<Option<usize>> = (0..old_children).map(Some).collect();
    map.push(None);
    map
}

/// The (at most two) parents whose child lists a leave renumbered: the
/// departed leaf's parent, and — when the compaction moved a node — the
/// moved node's parent (one of its children changed id, so its sort
/// position among the siblings may have). Shared by both drivers so
/// their leave surgery cannot diverge.
pub fn parents_to_remap(tree: &Tree, removal: &LeafRemoval) -> Vec<NodeId> {
    let mut parents = vec![removal.parent];
    if removal.moved.is_some() {
        if let Some(mp) = tree.parent(removal.removed) {
            if !parents.contains(&mp) {
                parents.push(mp);
            }
        }
    }
    parents
}

/// The per-child slot mapping of `parent` after a leave renumbered the
/// tree: for each child in the *new* child list, the slot it occupied
/// under the old numbering (`old_child_slot`), with `moved -> removed`
/// renumbering already applied to the child ids.
pub fn child_slot_map(
    tree: &Tree,
    parent: NodeId,
    removed: NodeId,
    moved: Option<NodeId>,
    old_child_slot: &[usize],
) -> Vec<Option<usize>> {
    tree.children(parent)
        .iter()
        .map(|&c| {
            let old_id = if c == removed {
                moved.expect("only the moved node now holds the vacated id")
            } else {
                c
            };
            Some(old_child_slot[old_id.index()])
        })
        .collect()
}

/// The worker-side fold of the convergence-trace sample: rolls each
/// offered node's serve meter to `now` and accumulates the squared
/// distance to the oracle into an [`ExactSum`]. Because the accumulator
/// is exact, per-shard partials merged in any order reproduce — bit for
/// bit — the single driver-side pass over all nodes in node order.
pub fn trace_partial<'a>(
    oracle: &RateVector,
    nodes: impl Iterator<Item = (usize, &'a mut NodeState)>,
    now: f64,
) -> ExactSum {
    let mut sum = ExactSum::new();
    for (j, state) in nodes {
        let r = sample_served_rate(state, now);
        sum.add_square(r - oracle[NodeId::new(j)]);
    }
    sum
}

/// Irregular events of the packet-level protocol. The two periodic timer
/// streams are not events at all — they live in
/// [`TimerRing`]s owned by the driver.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketEvent {
    /// A client at `node` issues a request for the document at dense
    /// index `index`; `stream` names the node's arrival stream (for its
    /// RNG) and `rate` its constant arrival rate.
    Arrival {
        /// Requesting node.
        node: NodeId,
        /// The document.
        doc: DocId,
        /// Dense index of the document.
        index: u32,
        /// Index of the arrival stream within the node's demand list.
        stream: u32,
        /// Arrival rate of the stream.
        rate: f64,
    },
    /// A request packet arrives at `node`'s router, possibly from a child.
    Packet {
        /// Receiving node.
        node: NodeId,
        /// Child the packet came from (`None`: the node's own client).
        from: Option<NodeId>,
        /// The request.
        request: DocRequest,
        /// Dense index of the requested document.
        index: u32,
    },
    /// A gossip message from `from` reporting its measured load.
    GossipDeliver {
        /// Receiving node.
        to: NodeId,
        /// Reporting neighbor.
        from: NodeId,
        /// Its measured load.
        load: f64,
    },
    /// A pushed copy of the document at `index` arrives at `node` with a
    /// serve allocation in req/s.
    CopyInstall {
        /// Receiving node.
        node: NodeId,
        /// Dense index of the document.
        index: u32,
        /// Serve allocation carried by the copy.
        rate: f64,
    },
    /// A tunneling probe climbing toward the nearest upstream holder of
    /// the document at `index`, one hop per link delay.
    TunnelProbe {
        /// Node the probe is arriving at.
        node: NodeId,
        /// The starved node that started the probe.
        origin: NodeId,
        /// Dense index of the wanted document.
        index: u32,
        /// Serve allocation the grant will carry.
        rate: f64,
        /// Hops climbed so far (≥ 1 on arrival).
        hops: u32,
    },
    /// A granted tunnel copy descending back to `target`, one hop per
    /// link delay.
    TunnelGrant {
        /// Node the grant is arriving at.
        node: NodeId,
        /// The requester it descends toward.
        target: NodeId,
        /// Dense index of the document.
        index: u32,
        /// Serve allocation carried.
        rate: f64,
    },
}

impl PacketEvent {
    /// The node this event targets (whose state its handler mutates).
    pub fn node(&self) -> NodeId {
        match *self {
            PacketEvent::Arrival { node, .. }
            | PacketEvent::Packet { node, .. }
            | PacketEvent::CopyInstall { node, .. }
            | PacketEvent::TunnelProbe { node, .. }
            | PacketEvent::TunnelGrant { node, .. } => node,
            PacketEvent::GossipDeliver { to, .. } => to,
        }
    }
}

/// Shard-mergeable counters of a packet-level run. Every field is a sum,
/// so per-shard instances merge associatively into the sequential totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketCounters {
    /// Copies pushed parent-to-child.
    pub copy_pushes: u64,
    /// Tunneling fetches initiated.
    pub tunnel_fetches: u64,
    /// Total upward hops over all served requests.
    pub hops_sum: u64,
    /// Total requests served.
    pub served_requests: u64,
}

impl PacketCounters {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &PacketCounters) {
        self.copy_pushes += other.copy_pushes;
        self.tunnel_fetches += other.tunnel_fetches;
        self.hops_sum += other.hops_sum;
        self.served_requests += other.served_requests;
    }
}

/// Reusable planning buffers (candidate lists, sort scratch, planned
/// slices) — one set per driver shard.
#[derive(Debug, Default)]
pub struct Scratch {
    cand: Vec<(u32, f64)>,
    sort: Vec<(u32, f64)>,
    plan: Vec<DenseRateSlice>,
}

/// Everything a handler may touch besides the target node's state: the
/// static world, the (barrier-mutated) failed-link flags, the shard's
/// ledger/counters/scratch, and the outbox of follow-up events.
///
/// Outbox entries are `(fire time, event)`; the driver routes each to
/// the shard hosting [`PacketEvent::node`] and must preserve push order
/// when assigning tie-breaking sequence numbers.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// The static world.
    pub world: &'a PacketWorld,
    /// Per node: `true` when the control link to its parent is failed.
    pub failed_up: &'a [bool],
    /// Traffic ledger (per shard; merged at barriers).
    pub ledger: &'a mut TrafficLedger,
    /// Protocol counters (per shard; merged at barriers).
    pub counters: &'a mut PacketCounters,
    /// Follow-up events produced by the handler.
    pub out: &'a mut Vec<(SimTime, PacketEvent)>,
    /// Reusable planning buffers.
    pub scratch: &'a mut Scratch,
}

impl NodeCtx<'_> {
    fn delay(&self) -> SimTime {
        SimTime::from_secs(self.world.config.link_delay)
    }

    /// Is `hi - lo` a statistically meaningful imbalance, or measurement
    /// noise? Rate estimates of a Poisson stream at rate `L` carry a
    /// standard deviation of about `sqrt(L)` per window, so the protocol
    /// only acts beyond a relative hysteresis plus a few sigmas.
    fn significant_imbalance(&self, hi: f64, lo: f64) -> bool {
        let c = &self.world.config;
        hi - lo > c.hysteresis * hi + c.noise_sigmas * hi.max(1.0).sqrt()
    }

    /// `true` when the control link between two tree neighbors is down.
    fn link_severed(&self, a: NodeId, b: NodeId) -> bool {
        if self.world.tree.parent(a) == Some(b) {
            self.failed_up[a.index()]
        } else {
            self.failed_up[b.index()]
        }
    }
}

/// Which driver event source holds the earliest pending `(time, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverSource {
    /// The irregular-event heap.
    Heap,
    /// The gossip timer ring.
    Gossip,
    /// The diffusion timer ring.
    Diffusion,
}

/// The earliest pending `(time, seq, source)` across a driver's event
/// queue and its two timer rings — the same total order one combined
/// heap would produce. Both the sequential and the sharded driver merge
/// through this one function (generic over the [`SimQueue`] backend, so
/// the `BinaryHeap` and radix queues share it), so their tie-breaking
/// can never diverge.
pub fn next_source<Q: SimQueue<PacketEvent>>(
    queue: &Q,
    gossip_ring: &TimerRing,
    diffusion_ring: &TimerRing,
) -> Option<(SimTime, u64, DriverSource)> {
    let heap = queue.peek_entry().map(|(t, s)| (t, s, DriverSource::Heap));
    let gossip = gossip_ring
        .peek()
        .map(|(t, s, _)| (t, s, DriverSource::Gossip));
    let diffusion = diffusion_ring
        .peek()
        .map(|(t, s, _)| (t, s, DriverSource::Diffusion));
    [heap, gossip, diffusion]
        .into_iter()
        .flatten()
        .min_by_key(|&(t, s, _)| (t, s))
}

/// The measured load of a node: its served rate over the rolling window.
pub fn measured_load(state: &mut NodeState, now: f64) -> f64 {
    state.served.roll_to(now);
    state.served.row_total(0)
}

/// Rolls the node's serve meter to `now` and returns its total rate —
/// the per-node quantity behind the convergence trace and the final
/// report. Drivers must call this at the *same* instants (epoch
/// boundaries, report time) for traces to match across drivers.
pub fn sample_served_rate(state: &mut NodeState, now: f64) -> f64 {
    measured_load(state, now)
}

/// Revokes the cached copy of dense index `k` at a (non-home) node:
/// copy, filter membership, serve allocation, and the stale serve-rate
/// estimate all vanish. Returns `true` when a copy was actually removed
/// (the caller charges the invalidation message).
pub fn invalidate_node(state: &mut NodeState, k: u32) -> bool {
    if state.copies.remove(k) {
        state.filter.remove(k);
        state.alloc_set.remove(k);
        state.alloc[k as usize].rate = 0.0;
        state.served.clear_doc(k);
        true
    } else {
        false
    }
}

/// The child of `cur` on the tree path down to `target`.
///
/// # Panics
///
/// Panics if `target` is not a strict descendant of `cur`.
pub fn next_toward(tree: &Tree, cur: NodeId, target: NodeId) -> NodeId {
    let mut u = target;
    while let Some(p) = tree.parent(u) {
        if p == cur {
            return u;
        }
        u = p;
    }
    panic!("{target} is not a descendant of {cur}");
}

/// Dispatches one irregular event to its handler.
pub fn handle(ctx: &mut NodeCtx<'_>, state: &mut NodeState, t: SimTime, event: PacketEvent) {
    match event {
        PacketEvent::Arrival {
            node,
            doc,
            index,
            stream,
            rate,
        } => on_arrival(ctx, state, t, node, doc, index, stream, rate),
        PacketEvent::Packet {
            node,
            from,
            request,
            index,
        } => on_packet(ctx, state, t, node, from, request, index),
        PacketEvent::GossipDeliver { to, from, load } => {
            if ctx.world.tree.parent(to) == Some(from) {
                state.parent_est = Some(load);
            } else {
                let slot = ctx.world.child_slot[from.index()];
                state.child_est[slot] = Some(load);
            }
        }
        PacketEvent::CopyInstall { node, index, rate } => {
            let _ = node;
            on_copy_install(state, t, index, rate);
        }
        PacketEvent::TunnelProbe {
            node,
            origin,
            index,
            rate,
            hops,
        } => on_tunnel_probe(ctx, state, t, node, origin, index, rate, hops),
        PacketEvent::TunnelGrant {
            node,
            target,
            index,
            rate,
        } => {
            if node == target {
                on_copy_install(state, t, index, rate);
            } else {
                let next = next_toward(&ctx.world.tree, node, target);
                ctx.out.push((
                    t + ctx.delay(),
                    PacketEvent::TunnelGrant {
                        node: next,
                        target,
                        index,
                        rate,
                    },
                ));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn on_arrival(
    ctx: &mut NodeCtx<'_>,
    state: &mut NodeState,
    t: SimTime,
    node: NodeId,
    doc: DocId,
    index: u32,
    stream: u32,
    rate: f64,
) {
    // Issue the request packet at this node; ids are (node, counter).
    let id = RequestId::new(((node.index() as u64) << 32) | state.next_request);
    state.next_request += 1;
    let request = DocRequest::new(id, doc, node);
    ctx.ledger
        .record(TrafficClass::Request, request.wire_bytes(), 0);
    ctx.out.push((
        t,
        PacketEvent::Packet {
            node,
            from: None,
            request,
            index,
        },
    ));
    // Schedule the next arrival from the stream's own RNG — a pure
    // function of (seed, node, doc) and the stream's draw count.
    let gap = exp_delay(&mut state.arrival_rng[stream as usize], 1.0 / rate);
    ctx.out.push((
        t + SimTime::from_secs(gap),
        PacketEvent::Arrival {
            node,
            doc,
            index,
            stream,
            rate,
        },
    ));
}

fn on_packet(
    ctx: &mut NodeCtx<'_>,
    state: &mut NodeState,
    t: SimTime,
    node: NodeId,
    from: Option<NodeId>,
    request: DocRequest,
    index: u32,
) {
    let now = t.as_secs();
    if let Some(child) = from {
        let slot = ctx.world.child_slot[child.index()];
        state.flows.record(slot, index, now);
    }
    state.seen.record(0, index, now);

    let is_root = ctx.world.tree.parent(node).is_none();
    let should_serve = if is_root {
        true
    } else if state.filter.contains(index) {
        // Intercepted: serve if the token bucket grants it; otherwise
        // put the packet back on its path (a filter false-positive in
        // rate terms).
        if state.alloc_set.contains(index) {
            state.alloc[index as usize].try_take(now)
        } else {
            false
        }
    } else {
        false
    };

    if should_serve {
        let response = DocResponse::serve(&request, node);
        state.served.record(0, index, now);
        state.served_total += 1;
        ctx.counters.hops_sum += u64::from(response.up_hops);
        ctx.counters.served_requests += 1;
        ctx.ledger
            .record(TrafficClass::Response, 1024, response.round_trip_hops);
    } else {
        let parent = ctx.world.tree.parent(node).expect("non-root forwards");
        ctx.ledger
            .record(TrafficClass::Request, request.wire_bytes(), 1);
        ctx.out.push((
            t + ctx.delay(),
            PacketEvent::Packet {
                node: parent,
                from: Some(node),
                request: request.hop(),
                index,
            },
        ));
    }
}

/// The gossip timer of `node` fires: report the measured load to the
/// parent first, then the children (the historical neighbor order). The
/// driver re-arms the timer after draining the outbox.
pub fn on_gossip_timer(ctx: &mut NodeCtx<'_>, state: &mut NodeState, t: SimTime, node: NodeId) {
    let now = t.as_secs();
    let load = measured_load(state, now);
    if let Some(p) = ctx.world.tree.parent(node) {
        gossip_to(ctx, state, t, node, p, load);
    }
    for slot in 0..ctx.world.tree.children(node).len() {
        let c = ctx.world.tree.children(node)[slot];
        gossip_to(ctx, state, t, node, c, load);
    }
}

/// Emits one gossip message from `node` to `nbr`, subject to the
/// failure-injection loss probability. A severed control link emits
/// nothing — the sender knows the link is down.
fn gossip_to(
    ctx: &mut NodeCtx<'_>,
    state: &mut NodeState,
    t: SimTime,
    node: NodeId,
    nbr: NodeId,
    load: f64,
) {
    if ctx.link_severed(node, nbr) {
        return;
    }
    ctx.ledger.record(TrafficClass::Gossip, 32, 1);
    let loss = ctx.world.config.gossip_loss;
    let lost = loss > 0.0 && rand::Rng::gen::<f64>(&mut state.gossip_rng) < loss;
    if !lost {
        ctx.out.push((
            t + ctx.delay(),
            PacketEvent::GossipDeliver {
                to: nbr,
                from: node,
                load,
            },
        ));
    }
}

/// The diffusion timer of `node` fires: push load down to lighter
/// children, take over or shed load against the parent, and eventually
/// tunnel. The driver re-arms the timer after draining the outbox.
pub fn on_diffusion(ctx: &mut NodeCtx<'_>, state: &mut NodeState, t: SimTime, node: NodeId) {
    let now = t.as_secs();
    let m = ctx.world.table.len();
    state.flows.roll_to(now);
    state.seen.roll_to(now);
    let my_load = measured_load(state, now);

    // Push load down to any child that gossiped a lower load.
    let is_root = ctx.world.tree.parent(node).is_none();
    for slot in 0..ctx.world.tree.children(node).len() {
        let c = ctx.world.tree.children(node)[slot];
        if ctx.failed_up[c.index()] {
            // Control link down: no copies move to this child.
            continue;
        }
        let Some(child_load) = state.child_est[slot] else {
            continue;
        };
        if !ctx.significant_imbalance(my_load, child_load) {
            continue;
        }
        let a_c = state.flows.row_total(slot);
        let target = (ctx.world.alpha * (my_load - child_load)).min(a_c);
        if target <= 0.0 {
            continue;
        }
        // Docs this node serves that the child forwards.
        if is_root {
            // The root serves everything that reaches it; it can push
            // any doc the child forwards.
            state.flows.row_doc_rates(slot, &mut ctx.scratch.cand);
        } else {
            ctx.scratch.cand.clear();
            for k in 0..m as u32 {
                let s = state.served.rate(0, k);
                if s <= 0.0 {
                    continue;
                }
                let f = state.flows.rate(slot, k);
                let cap = s.min(f);
                if cap > 0.0 {
                    ctx.scratch.cand.push((k, cap));
                }
            }
        }
        plan_push_dense(
            &ctx.scratch.cand,
            target,
            &mut ctx.scratch.sort,
            &mut ctx.scratch.plan,
        );
        for pi in 0..ctx.scratch.plan.len() {
            let slice = ctx.scratch.plan[pi];
            ctx.counters.copy_pushes += 1;
            ctx.ledger.record(TrafficClass::CopyPush, 16 * 1024, 1);
            ctx.out.push((
                t + ctx.delay(),
                PacketEvent::CopyInstall {
                    node: c,
                    index: slice.index,
                    rate: slice.rate,
                },
            ));
            if !is_root {
                // Give up the corresponding share of our own allocation.
                if state.alloc_set.contains(slice.index) {
                    let b = &mut state.alloc[slice.index as usize];
                    b.rate = (b.rate - slice.rate).max(0.0);
                }
            }
        }
    }

    // Compare against the parent: take over passing load, shed, or
    // eventually tunnel. A failed uplink suspends all of it (tunneling
    // included — the fetch path runs through the dead control link).
    if ctx.world.tree.parent(node).is_some() && !ctx.failed_up[node.index()] {
        if let Some(pl) = state.parent_est {
            if ctx.significant_imbalance(pl, my_load) {
                let want = ctx.world.alpha * (pl - my_load);
                // Take over flow for documents we already hold.
                ctx.scratch.cand.clear();
                for k in 0..m as u32 {
                    let seen_rate = state.seen.rate(0, k);
                    if seen_rate <= 0.0 || !state.copies.contains(k) {
                        continue;
                    }
                    let served = state.served.rate(0, k);
                    let headroom = (seen_rate - served).max(0.0);
                    if headroom > 0.0 {
                        ctx.scratch.cand.push((k, headroom));
                    }
                }
                plan_push_dense(
                    &ctx.scratch.cand,
                    want,
                    &mut ctx.scratch.sort,
                    &mut ctx.scratch.plan,
                );
                let mut taken = 0.0;
                for pi in 0..ctx.scratch.plan.len() {
                    let slice = ctx.scratch.plan[pi];
                    let k = slice.index;
                    if state.alloc_set.insert(k) {
                        state.alloc[k as usize] = TokenBucket::new(0.0, now);
                    }
                    state.alloc[k as usize].rate += slice.rate;
                    taken += slice.rate;
                }
                if taken <= 1e-9 {
                    state.underload_streak += 1;
                    if ctx.world.config.tunneling
                        && state.underload_streak > ctx.world.config.barrier_patience
                    {
                        start_tunnel(ctx, state, t, node, want);
                        state.underload_streak = 0;
                    }
                } else {
                    state.underload_streak = 0;
                }
            } else if ctx.significant_imbalance(my_load, pl) {
                // Shed upward: reduce allocations, coldest docs first.
                let shed_target = ctx.world.alpha * (my_load - pl);
                state.served.row_doc_rates(0, &mut ctx.scratch.cand);
                plan_shed_dense(
                    &ctx.scratch.cand,
                    shed_target,
                    &mut ctx.scratch.sort,
                    &mut ctx.scratch.plan,
                );
                for pi in 0..ctx.scratch.plan.len() {
                    let slice = ctx.scratch.plan[pi];
                    if state.alloc_set.contains(slice.index) {
                        let b = &mut state.alloc[slice.index as usize];
                        b.rate = (b.rate - slice.rate).max(0.0);
                    }
                }
                state.underload_streak = 0;
            }
        }
    }
}

/// Tunneling: probe upstream for the hottest forwarded-but-not-held
/// document. The probe climbs one hop per link delay
/// ([`PacketEvent::TunnelProbe`]); the nearest holder answers with a
/// [`PacketEvent::TunnelGrant`] descending the same path, so the copy
/// lands after the full round trip.
fn start_tunnel(ctx: &mut NodeCtx<'_>, state: &mut NodeState, t: SimTime, node: NodeId, want: f64) {
    let m = ctx.world.table.len();
    // Hottest seen-but-not-held document; ties break toward the
    // smaller index (= smaller id), matching the sparse sort order.
    let mut best: Option<(u32, f64)> = None;
    for k in 0..m as u32 {
        let r = state.seen.rate(0, k);
        if r <= 0.0 || state.copies.contains(k) {
            continue;
        }
        if best.is_none_or(|(_, br)| r > br) {
            best = Some((k, r));
        }
    }
    let Some((index, rate)) = best else {
        return;
    };
    let Some(parent) = ctx.world.tree.parent(node) else {
        return;
    };
    ctx.counters.tunnel_fetches += 1;
    ctx.out.push((
        t + ctx.delay(),
        PacketEvent::TunnelProbe {
            node: parent,
            origin: node,
            index,
            rate: rate.min(want).max(1.0),
            hops: 1,
        },
    ));
}

#[allow(clippy::too_many_arguments)]
fn on_tunnel_probe(
    ctx: &mut NodeCtx<'_>,
    state: &mut NodeState,
    t: SimTime,
    node: NodeId,
    origin: NodeId,
    index: u32,
    rate: f64,
    hops: u32,
) {
    let is_root = ctx.world.tree.parent(node).is_none();
    if state.copies.contains(index) || is_root {
        // Found the nearest upstream holder: charge the round trip and
        // send the copy back down the path.
        ctx.ledger.record(TrafficClass::Tunnel, 16 * 1024, hops * 2);
        let next = next_toward(&ctx.world.tree, node, origin);
        ctx.out.push((
            t + ctx.delay(),
            PacketEvent::TunnelGrant {
                node: next,
                target: origin,
                index,
                rate,
            },
        ));
    } else {
        let parent = ctx.world.tree.parent(node).expect("non-root climbs");
        ctx.out.push((
            t + ctx.delay(),
            PacketEvent::TunnelProbe {
                node: parent,
                origin,
                index,
                rate,
                hops: hops + 1,
            },
        ));
    }
}

fn on_copy_install(state: &mut NodeState, t: SimTime, index: u32, rate: f64) {
    let now = t.as_secs();
    if state.copies.insert(index) {
        state.filter.insert(index);
    }
    if state.alloc_set.insert(index) {
        state.alloc[index as usize] = TokenBucket::new(0.0, now);
    }
    state.alloc[index as usize].rate += rate;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_toward_walks_the_path() {
        // 0 -> 1 -> 2 -> 3 and 1 -> 4.
        let tree = Tree::from_parents(&[None, Some(0), Some(1), Some(2), Some(1)]).unwrap();
        assert_eq!(
            next_toward(&tree, NodeId::new(0), NodeId::new(3)).index(),
            1
        );
        assert_eq!(
            next_toward(&tree, NodeId::new(1), NodeId::new(3)).index(),
            2
        );
        assert_eq!(
            next_toward(&tree, NodeId::new(1), NodeId::new(4)).index(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "not a descendant")]
    fn next_toward_rejects_non_descendants() {
        let tree = Tree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let _ = next_toward(&tree, NodeId::new(1), NodeId::new(2));
    }

    #[test]
    fn arrival_rng_is_shard_independent() {
        // Re-initializing a node's state yields identical streams: the
        // randomness is a pure function of (seed, node, doc), not of any
        // global construction order.
        let tree = Tree::from_parents(&[None, Some(0), Some(0)]).unwrap();
        let mut mix = DocMix::new(3);
        mix.set(NodeId::new(1), DocId::new(7), 10.0);
        mix.set(NodeId::new(2), DocId::new(7), 20.0);
        let world = PacketWorld::new(&tree, &mix, PacketSimConfig::default());
        let mut a = init_state(&world, NodeId::new(2));
        let mut b = init_state(&world, NodeId::new(2));
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        initial_arrivals(&world, &mut a, NodeId::new(2), &mut out_a);
        initial_arrivals(&world, &mut b, NodeId::new(2), &mut out_b);
        assert_eq!(out_a.len(), 1);
        assert_eq!(out_a[0].0, out_b[0].0);
    }
}
