//! Churn-equivalence fuzz suite for the incremental WebFold oracle.
//!
//! Drives random trees through random event-grammar sequences — joins,
//! leaves, rate deltas, and rate masks — and asserts that
//! [`IncrementalFold::refold_path`] reproduces the from-scratch
//! [`webfold`] partition **bit for bit** (load vector, fold roots, fold
//! membership, GLE flag) after every single step and after whole batches
//! applied between refolds. Together the generators below cover well
//! over a thousand distinct fuzzed sequences, pinning the equivalence
//! argument in `ww_core::fold`'s docs empirically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ww_core::fold::{webfold, FoldedTree, IncrementalFold};
use ww_model::{NodeId, RateVector, Tree};

/// One churn-grammar event, mirroring what barrier pipelines feed the
/// oracle: structural churn plus spontaneous-rate updates.
#[derive(Debug, Clone, Copy)]
enum Op {
    Join {
        parent: usize,
        rate: f64,
    },
    Leave {
        leaf: usize,
    },
    RateDelta {
        node: usize,
        rate: f64,
    },
    /// A link-mask style update: the node's spontaneous rate drops to 0.
    Mask {
        node: usize,
    },
}

fn random_op(rng: &mut StdRng, tree: &Tree) -> Op {
    let n = tree.len();
    let leaves: Vec<usize> = (0..n)
        .filter(|&i| {
            let u = NodeId::new(i);
            tree.is_leaf(u) && u != tree.root()
        })
        .collect();
    loop {
        match rng.gen_range(0..4u32) {
            0 => {
                return Op::Join {
                    parent: rng.gen_range(0..n),
                    rate: rng.gen_range(0.0..50.0),
                }
            }
            1 if !leaves.is_empty() && n > 1 => {
                return Op::Leave {
                    leaf: leaves[rng.gen_range(0..leaves.len())],
                }
            }
            2 => {
                return Op::RateDelta {
                    node: rng.gen_range(0..n),
                    rate: rng.gen_range(0.0..50.0),
                }
            }
            3 => {
                return Op::Mask {
                    node: rng.gen_range(0..n),
                }
            }
            _ => {}
        }
    }
}

/// Applies `op` to the primary state (tree + rates) and notifies the
/// incremental cache of structural changes, exactly as `PacketWorld`
/// and the rate/document engines do.
fn apply(op: Op, tree: &mut Tree, rates: &mut Vec<f64>, inc: &mut IncrementalFold) {
    match op {
        Op::Join { parent, rate } => {
            let id = tree.add_leaf(NodeId::new(parent)).unwrap();
            rates.push(rate);
            inc.on_join(tree, id);
        }
        Op::Leave { leaf } => {
            let removal = tree.remove_leaf(NodeId::new(leaf)).unwrap();
            removal.rehome(rates);
            inc.on_leave(tree, &removal);
        }
        Op::RateDelta { node, rate } => rates[node] = rate,
        Op::Mask { node } => rates[node] = 0.0,
    }
}

/// Bit-level equality of everything the oracle consumers read. The fold
/// trace is deliberately excluded: the incremental path does not replay
/// the global merge order and documents an empty trace.
fn assert_bit_identical(incremental: &FoldedTree, scratch: &FoldedTree, ctx: &str) {
    let a = incremental.load().as_slice();
    let b = scratch.load().as_slice();
    assert_eq!(a.len(), b.len(), "{ctx}: load length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{ctx}: load[{i}] {x} != {y} (bitwise)"
        );
    }
    assert_eq!(
        incremental.fold_roots(),
        scratch.fold_roots(),
        "{ctx}: fold roots"
    );
    assert_eq!(
        incremental.fold_root_of(),
        scratch.fold_root_of(),
        "{ctx}: fold membership"
    );
    assert_eq!(incremental.is_gle(), scratch.is_gle(), "{ctx}: GLE flag");
    assert_eq!(
        incremental.fold_count(),
        scratch.fold_count(),
        "{ctx}: fold count"
    );
}

fn seed_state(rng: &mut StdRng) -> (Tree, Vec<f64>) {
    let n = rng.gen_range(1..60);
    let depth = rng.gen_range(1..9);
    let tree = ww_topology::random_tree_of_depth(rng, n, depth);
    let rates = ww_workload::random_uniform(rng, &tree, 0.0, 50.0)
        .as_slice()
        .to_vec();
    (tree, rates)
}

#[test]
fn incremental_matches_scratch_after_every_step() {
    // 600 sequences x 8 steps: refold after each single event.
    for seed in 0..600u64 {
        let mut rng = StdRng::seed_from_u64(0xF01D_0000 + seed);
        let (mut tree, mut rates) = seed_state(&mut rng);
        let mut inc = IncrementalFold::new(&tree, &RateVector::from(rates.clone()));
        for step in 0..8 {
            let op = random_op(&mut rng, &tree);
            apply(op, &mut tree, &mut rates, &mut inc);
            let e = RateVector::from(rates.clone());
            let got = inc.refold_path(&tree, &e);
            let want = webfold(&tree, &e);
            assert_bit_identical(&got, &want, &format!("seed {seed} step {step} {op:?}"));
        }
    }
}

#[test]
fn incremental_matches_scratch_after_batched_application() {
    // 500 sequences x (2..=6)-event bursts applied between refolds —
    // the shape a batched barrier produces: many dirty paths, one refold.
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(0xBA7C_4000 + seed);
        let (mut tree, mut rates) = seed_state(&mut rng);
        let mut inc = IncrementalFold::new(&tree, &RateVector::from(rates.clone()));
        for burst in 0..3 {
            let k = rng.gen_range(2..=6);
            let mut applied = Vec::new();
            for _ in 0..k {
                let op = random_op(&mut rng, &tree);
                apply(op, &mut tree, &mut rates, &mut inc);
                applied.push(op);
            }
            let e = RateVector::from(rates.clone());
            let got = inc.refold_path(&tree, &e);
            let want = webfold(&tree, &e);
            assert_bit_identical(
                &got,
                &want,
                &format!("seed {seed} burst {burst} {applied:?}"),
            );
        }
    }
}

#[test]
fn refold_is_stable_without_changes() {
    // A refold with nothing dirty must emit the identical partition.
    let mut rng = StdRng::seed_from_u64(7);
    let (tree, rates) = seed_state(&mut rng);
    let e = RateVector::from(rates);
    let mut inc = IncrementalFold::new(&tree, &e);
    let first = inc.refold_path(&tree, &e);
    let second = inc.refold_path(&tree, &e);
    assert_bit_identical(&second, &first, "idempotent refold");
    assert_bit_identical(&first, &webfold(&tree, &e), "fresh cache");
}

#[test]
fn paper_scenarios_match_from_construction() {
    for s in ww_topology::paper::all_scenarios() {
        let mut inc = IncrementalFold::new(&s.tree, &s.spontaneous);
        let got = inc.refold_path(&s.tree, &s.spontaneous);
        assert_bit_identical(&got, &webfold(&s.tree, &s.spontaneous), &s.name);
    }
}

#[test]
#[should_panic(expected = "structural churn")]
fn unreported_structural_change_panics() {
    let mut tree = Tree::from_parents(&[None, Some(0)]).unwrap();
    let e = RateVector::from(vec![1.0, 2.0]);
    let mut inc = IncrementalFold::new(&tree, &e);
    tree.add_leaf(NodeId::new(0)).unwrap();
    let _ = inc.refold_path(&tree, &RateVector::from(vec![1.0, 2.0, 3.0]));
}
