//! Golden-trace equivalence: the dense-state engines must be
//! *bit-identical* to the naive hash-table / clone-per-round reference
//! implementations on the paper scenarios.
//!
//! This is the contract that makes the dense-state refactor safe: same
//! seeds, same convergence traces, same statistics, same figure outputs —
//! only faster.

use ww_core::docsim::{DocSim, DocSimConfig};
use ww_core::reference::{NaiveDocSim, NaiveRateWave};
use ww_core::wave::{RateWave, WaveConfig};
use ww_model::{DocId, NodeId};
use ww_topology::paper;

/// Asserts two traces are identical to the last bit.
fn assert_traces_bit_identical(
    dense: &ww_stats::ConvergenceTrace,
    naive: &ww_stats::ConvergenceTrace,
) {
    assert_eq!(dense.len(), naive.len(), "trace lengths differ");
    for (round, (d, n)) in dense.distances().iter().zip(naive.distances()).enumerate() {
        assert_eq!(
            d.to_bits(),
            n.to_bits(),
            "trace diverges at round {round}: dense {d:e} vs naive {n:e}"
        );
    }
}

#[test]
fn rate_wave_matches_reference_on_fig6() {
    let s = paper::fig6();
    let mut dense = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
    let mut naive = NaiveRateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
    dense.run(2000);
    naive.run(2000);
    assert_traces_bit_identical(dense.trace(), naive.trace());
    assert_eq!(dense.load().as_slice(), naive.load().as_slice());
}

#[test]
fn rate_wave_matches_reference_on_all_rate_scenarios() {
    for s in paper::all_scenarios() {
        let mut dense = RateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        let mut naive = NaiveRateWave::new(&s.tree, &s.spontaneous, WaveConfig::default());
        dense.run(500);
        naive.run(500);
        assert_traces_bit_identical(dense.trace(), naive.trace());
        assert_eq!(
            dense.load().as_slice(),
            naive.load().as_slice(),
            "{} loads differ",
            s.name
        );
    }
}

#[test]
fn rate_wave_matches_reference_when_child_ids_precede_parents() {
    // Valid trees may number a child below its parent (Prüfer generation
    // does this routinely); the permuted engine must replay the naive
    // per-cell accumulation order even then.
    use rand::SeedableRng;
    use ww_model::{RateVector, Tree};

    // A hand-built instance: root 1; node 2's children are 0 (id below 2)
    // and 3 (id above 2).
    let tree = Tree::from_parents(&[Some(2), None, Some(1), Some(2), Some(0)]).unwrap();
    let rates = RateVector::from(vec![13.3, 1.7, 5.9, 21.1, 8.35]);
    let mut dense = RateWave::new(&tree, &rates, WaveConfig::default());
    let mut naive = NaiveRateWave::new(&tree, &rates, WaveConfig::default());
    dense.run(500);
    naive.run(500);
    assert_traces_bit_identical(dense.trace(), naive.trace());

    // And random Prüfer trees, where arbitrary parent/child id orders
    // appear throughout.
    let mut rng = rand::rngs::StdRng::seed_from_u64(97);
    for _ in 0..20 {
        let tree = ww_topology::random_pruefer(&mut rng, 40);
        let rates = ww_workload::random_uniform(&mut rng, &tree, 0.0, 50.0);
        let mut dense = RateWave::new(&tree, &rates, WaveConfig::default());
        let mut naive = NaiveRateWave::new(&tree, &rates, WaveConfig::default());
        dense.run(200);
        naive.run(200);
        assert_traces_bit_identical(dense.trace(), naive.trace());
        assert_eq!(dense.load().as_slice(), naive.load().as_slice());
    }
}

#[test]
fn rate_wave_matches_reference_under_stale_gossip() {
    // The staleness ring buffer must reproduce the naive history clones
    // exactly — including the warm-up rounds before the window fills.
    let s = paper::fig6();
    for staleness in [1usize, 3, 7] {
        let cfg = WaveConfig {
            alpha: None,
            staleness,
        };
        let mut dense = RateWave::new(&s.tree, &s.spontaneous, cfg);
        let mut naive = NaiveRateWave::new(&s.tree, &s.spontaneous, cfg);
        dense.run(800);
        naive.run(800);
        assert_traces_bit_identical(dense.trace(), naive.trace());
    }
}

#[test]
fn docsim_matches_reference_on_fig7_with_tunneling() {
    let b = paper::fig7();
    let mut dense = DocSim::from_barrier_scenario(&b, DocSimConfig::default());
    let mut naive = NaiveDocSim::from_barrier_scenario(&b, DocSimConfig::default());
    dense.run(1500);
    naive.run(1500);
    assert_traces_bit_identical(dense.trace(), naive.trace());
    assert_eq!(dense.stats(), naive.stats(), "protocol counters differ");
    assert_eq!(dense.load().as_slice(), naive.load().as_slice());
    for u in 0..4 {
        assert_eq!(
            dense.copies_at(NodeId::new(u)),
            naive.copies_at(NodeId::new(u)),
            "copies at node {u} differ"
        );
    }
}

#[test]
fn docsim_matches_reference_on_fig7_without_tunneling() {
    let b = paper::fig7();
    let cfg = DocSimConfig {
        alpha: None,
        tunneling: false,
        barrier_patience: 2,
    };
    let mut dense = DocSim::from_barrier_scenario(&b, cfg);
    let mut naive = NaiveDocSim::from_barrier_scenario(&b, cfg);
    dense.run(800);
    naive.run(800);
    assert_traces_bit_identical(dense.trace(), naive.trace());
    assert_eq!(dense.stats(), naive.stats());
}

#[test]
fn docsim_matches_reference_with_aggressive_alpha_and_deletions() {
    use ww_model::Tree;
    use ww_workload::DocMix;
    let tree = Tree::from_parents(&[None, Some(0), Some(1)]).unwrap();
    let mut mix = DocMix::new(3);
    mix.set(NodeId::new(1), DocId::new(2), 90.0);
    mix.set(NodeId::new(2), DocId::new(1), 30.0);
    let cfg = DocSimConfig {
        alpha: Some(0.8),
        tunneling: true,
        barrier_patience: 2,
    };
    let mut dense = DocSim::new(&tree, &mix, cfg);
    let mut naive = NaiveDocSim::new(&tree, &mix, cfg);
    dense.run(2000);
    naive.run(2000);
    assert_traces_bit_identical(dense.trace(), naive.trace());
    assert_eq!(dense.stats(), naive.stats());
}

#[test]
fn docsim_matches_reference_on_zipf_mix() {
    // A wider universe (16 docs over the fig6 tree) exercises slab
    // indexing well beyond the 3-document barrier scenario.
    let s = paper::fig6();
    let mix = ww_workload::shared_zipf_mix(&s.tree, &s.spontaneous, 16, 1.0);
    let cfg = DocSimConfig::default();
    let mut dense = DocSim::new(&s.tree, &mix, cfg);
    let mut naive = NaiveDocSim::new(&s.tree, &mix, cfg);
    dense.run(400);
    naive.run(400);
    assert_traces_bit_identical(dense.trace(), naive.trace());
    assert_eq!(dense.stats(), naive.stats());
    assert_eq!(dense.load().as_slice(), naive.load().as_slice());
}
