//! Property tests for barrier-time event application on the packet
//! engine's mutable world: churn round-trips, shift idempotence, and
//! universe-growth invariants, over randomized topologies and demand.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use ww_core::packetsim::{PacketSim, PacketSimConfig};
use ww_model::{DocId, NodeId};

/// A small random world: tree, Zipf demand, configured simulator.
fn build_sim(nodes: usize, docs: usize, seed: u64) -> PacketSim {
    let mut rng = StdRng::seed_from_u64(seed);
    let tree = ww_topology::random_tree_of_depth(&mut rng, nodes, 4.min(nodes - 1));
    let rates = ww_workload::zipf_nodes(&mut rng, &tree, 10.0 * nodes as f64, 1.0);
    let mix = ww_workload::shared_zipf_mix(&tree, &rates, docs, 1.0);
    PacketSim::new(&tree, &mix, PacketSimConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Join-then-leave round-trips the world: removing the leaf that
    /// just joined restores the tree shape, the demand mix, and the
    /// oracle bit for bit (the arrival generation advances — streams
    /// are re-resolved — but the *world* is restored).
    #[test]
    fn join_then_leave_round_trips_the_world(
        nodes in 5usize..30,
        docs in 2usize..8,
        seed in 0u64..1000,
        parent_pick in 0usize..30,
        rate in 1.0f64..200.0,
    ) {
        let mut sim = build_sim(nodes, docs, seed);
        sim.run(2.0);
        let before_parents = sim.tree().to_parents();
        let before_mix = sim.world().mix.clone();
        let parent = NodeId::new(parent_pick % sim.tree().len());
        let id = sim.add_leaf(parent, rate).expect("join applies");
        prop_assert_eq!(id.index(), before_parents.len());
        let removal = sim.remove_leaf(id).expect("the new leaf departs");
        // The newest id is the highest, so no renumbering can occur...
        prop_assert!(removal.moved.is_none());
        // ...and the tree is exactly restored.
        prop_assert_eq!(sim.tree().to_parents(), before_parents);
        // The demand round-trips too, except that the departed node's
        // rate re-homed onto the parent: every other node's per-doc
        // demand is untouched, and the parent's total grew by `rate`.
        let after_mix = &sim.world().mix;
        for j in 0..before_mix.len() {
            let node = NodeId::new(j);
            if node == parent {
                let (b, a) = (before_mix.node_total(node), after_mix.node_total(node));
                prop_assert!((a - (b + rate)).abs() < 1e-6 * (1.0 + a),
                    "parent total {} vs {} + {}", a, b, rate);
            } else {
                prop_assert_eq!(before_mix.demands_of(node), after_mix.demands_of(node));
            }
        }
        // Total offered demand is conserved up to the re-homed rate, so
        // the oracle total follows it.
        let after_total = after_mix.spontaneous().total();
        prop_assert!(
            (sim.world().oracle.total() - after_total).abs() < 1e-6 * (1.0 + after_total)
        );
    }

    /// Applying the same mix twice leaves the world's demand, oracle,
    /// and universe exactly where one application put them (the arrival
    /// generation differs — by design, streams re-resolve each time).
    #[test]
    fn set_mix_is_idempotent_on_the_world(
        nodes in 5usize..25,
        docs in 2usize..8,
        seed in 0u64..1000,
        new_docs in 1usize..10,
        theta in 0.1f64..1.5,
    ) {
        let mut sim = build_sim(nodes, docs, seed);
        sim.run(1.0);
        let tree = sim.tree().clone();
        let rates = ww_workload::uniform(&tree, 12.0);
        let mix = ww_workload::shared_zipf_mix(&tree, &rates, new_docs, theta);
        sim.set_mix(&mix).expect("shift applies");
        let once_mix = sim.world().mix.clone();
        let once_oracle: Vec<u64> =
            sim.world().oracle.as_slice().iter().map(|x| x.to_bits()).collect();
        let once_docs = sim.doc_table().docs().to_vec();
        sim.set_mix(&mix).expect("shift re-applies");
        prop_assert_eq!(&sim.world().mix, &once_mix);
        let twice_oracle: Vec<u64> =
            sim.world().oracle.as_slice().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(once_oracle, twice_oracle);
        prop_assert_eq!(once_docs, sim.doc_table().docs().to_vec());
    }

    /// Publishing grows the universe monotonically and preserves every
    /// existing document's identity; demand totals grow by the rate.
    #[test]
    fn publish_grows_universe_monotonically(
        nodes in 5usize..25,
        docs in 2usize..8,
        seed in 0u64..1000,
        new_doc in 100u64..200,
        origin_pick in 0usize..25,
        rate in 0.5f64..50.0,
    ) {
        let mut sim = build_sim(nodes, docs, seed);
        sim.run(1.0);
        let before_docs = sim.doc_table().docs().to_vec();
        let before_total = sim.world().mix.spontaneous().total();
        let origin = NodeId::new(origin_pick % sim.tree().len());
        sim.publish_doc(DocId::new(new_doc), origin, rate).expect("publish applies");
        let after_docs = sim.doc_table().docs();
        prop_assert_eq!(after_docs.len(), before_docs.len() + 1);
        for d in &before_docs {
            prop_assert!(after_docs.contains(d), "doc {:?} vanished", d);
        }
        prop_assert!(after_docs.contains(&DocId::new(new_doc)));
        let after_total = sim.world().mix.spontaneous().total();
        prop_assert!((after_total - (before_total + rate)).abs() < 1e-6 * (1.0 + after_total));
        // Publishing the same doc again only adds demand.
        sim.publish_doc(DocId::new(new_doc), origin, 1.0).expect("re-publish applies");
        prop_assert_eq!(sim.doc_table().docs().len(), before_docs.len() + 1);
    }

    /// Churn keeps the simulation deterministic: the same op sequence
    /// from the same seed produces bit-identical reports.
    #[test]
    fn churned_runs_are_reproducible(
        nodes in 5usize..20,
        seed in 0u64..500,
    ) {
        let run = || {
            let mut sim = build_sim(nodes, 4, seed);
            sim.run(2.0);
            sim.add_leaf(NodeId::new(0), 30.0).expect("join");
            sim.run(4.0);
            let leaf = NodeId::new(sim.tree().len() - 1);
            sim.remove_leaf(leaf).expect("leave");
            let r = sim.run(6.0);
            (
                r.served_requests,
                r.trace.distances().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}

/// An out-of-range parent is reported as such even when the world
/// carries no demand (the zero-demand check must not shadow it).
#[test]
fn join_reports_unknown_parent_before_rate_problems() {
    let tree = ww_model::Tree::from_parents(&[None, Some(0)]).unwrap();
    let mix = ww_workload::DocMix::new(2); // zero demand everywhere
    let mut sim = PacketSim::new(&tree, &mix, PacketSimConfig::default());
    match sim.add_leaf(NodeId::new(99), 5.0) {
        Err(ww_model::ModelError::NodeOutOfRange { node, len }) => {
            assert_eq!((node.index(), len), (99, 2));
        }
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
}

/// Leaves depart carrying their copies; a node that rejoins under the
/// same id starts cold (fresh RNG generation, no copies).
#[test]
fn rejoiner_starts_cold() {
    let mut sim = build_sim(12, 4, 9);
    sim.run(5.0);
    let parent = NodeId::new(0);
    let id = sim.add_leaf(parent, 25.0).expect("join");
    sim.run(8.0);
    let served_before = sim.served_total(id);
    sim.remove_leaf(id).expect("leave");
    let id2 = sim.add_leaf(parent, 25.0).expect("rejoin");
    assert_eq!(id, id2, "the vacated id is reused");
    assert_eq!(sim.served_total(id2), 0, "rejoiner starts cold");
    let _ = served_before;
    // And the simulation keeps running fine afterwards.
    let report = sim.run(12.0);
    assert!(report.served_requests > 0);
}
