//! `webwave-bench` — the recorded perf trajectory of the dense-state
//! engines.
//!
//! Measures `RateWave::run` and `DocSim::run` against the naive
//! hash-table / clone-per-round reference engines
//! (`ww_core::reference`) on 1k+ node trees, verifies that dense and
//! naive produce **bit-identical convergence traces**, times `webfold`
//! itself across scales, and writes everything to
//! `BENCH_webfold_scaling.json` (or the path given as the first CLI
//! argument).
//!
//! Run with: `cargo run --release -p ww-bench --bin webwave-bench`

use std::fmt::Write as _;
use ww_bench::{scaling_mix, scaling_scenario, time_min};
use ww_core::docsim::{DocSim, DocSimConfig};
use ww_core::fold::webfold;
use ww_core::reference::{NaiveDocSim, NaiveRateWave};
use ww_core::wave::{RateWave, WaveConfig};

const SAMPLES: usize = 5;

struct Comparison {
    engine: &'static str,
    nodes: usize,
    docs: usize,
    rounds: usize,
    staleness: usize,
    dense_ns_per_round: f64,
    naive_ns_per_round: f64,
    speedup: f64,
    traces_identical: bool,
}

fn traces_equal(a: &ww_stats::ConvergenceTrace, b: &ww_stats::ConvergenceTrace) -> bool {
    a.len() == b.len()
        && a.distances()
            .iter()
            .zip(b.distances())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn bench_rate_wave(nodes: usize, rounds: usize, staleness: usize) -> Comparison {
    let (tree, rates) = scaling_scenario(nodes, 12, nodes as u64);
    let config = WaveConfig {
        alpha: None,
        staleness,
    };

    // Trace equivalence on a short prefix (cheap, exact).
    let mut dense_probe = RateWave::new(&tree, &rates, config);
    let mut naive_probe = NaiveRateWave::new(&tree, &rates, config);
    dense_probe.run(rounds.min(50));
    naive_probe.run(rounds.min(50));
    let traces_identical = traces_equal(dense_probe.trace(), naive_probe.trace());

    let dense = time_min(
        SAMPLES,
        || RateWave::new(&tree, &rates, config),
        |w| w.run(rounds),
    );
    let naive = time_min(
        SAMPLES,
        || NaiveRateWave::new(&tree, &rates, config),
        |w| w.run(rounds),
    );
    Comparison {
        engine: "RateWave::run",
        nodes,
        docs: 0,
        rounds,
        staleness,
        dense_ns_per_round: dense.as_nanos() as f64 / rounds as f64,
        naive_ns_per_round: naive.as_nanos() as f64 / rounds as f64,
        speedup: naive.as_secs_f64() / dense.as_secs_f64(),
        traces_identical,
    }
}

fn bench_docsim(nodes: usize, docs: usize, rounds: usize) -> Comparison {
    let (tree, rates) = scaling_scenario(nodes, 12, nodes as u64 ^ 0xD0C);
    let mix = scaling_mix(&tree, &rates, docs);
    let config = DocSimConfig::default();

    let mut dense_probe = DocSim::new(&tree, &mix, config);
    let mut naive_probe = NaiveDocSim::new(&tree, &mix, config);
    dense_probe.run(rounds.min(10));
    naive_probe.run(rounds.min(10));
    let traces_identical = traces_equal(dense_probe.trace(), naive_probe.trace())
        && dense_probe.stats() == naive_probe.stats();

    let dense = time_min(
        SAMPLES,
        || DocSim::new(&tree, &mix, config),
        |s| s.run(rounds),
    );
    let naive = time_min(
        SAMPLES.min(3),
        || NaiveDocSim::new(&tree, &mix, config),
        |s| s.run(rounds),
    );
    Comparison {
        engine: "DocSim::run",
        nodes,
        docs,
        rounds,
        staleness: 0,
        dense_ns_per_round: dense.as_nanos() as f64 / rounds as f64,
        naive_ns_per_round: naive.as_nanos() as f64 / rounds as f64,
        speedup: naive.as_secs_f64() / dense.as_secs_f64(),
        traces_identical,
    }
}

fn bench_webfold(nodes: usize) -> (usize, f64) {
    let (tree, rates) = scaling_scenario(nodes, 12, nodes as u64);
    let d = time_min(
        SAMPLES,
        || (),
        |()| {
            std::hint::black_box(webfold(&tree, &rates));
        },
    );
    (nodes, d.as_nanos() as f64)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_webfold_scaling.json".to_string());

    eprintln!("webwave-bench: dense vs naive engines ({SAMPLES} samples, min)");
    let comparisons = vec![
        bench_rate_wave(1_000, 300, 0),
        bench_rate_wave(10_000, 100, 0),
        bench_rate_wave(100_000, 30, 0),
        bench_rate_wave(10_000, 100, 3),
        bench_docsim(1_000, 64, 30),
        bench_docsim(4_000, 64, 15),
    ];
    for c in &comparisons {
        eprintln!(
            "  {} nodes={} docs={} rounds={} staleness={}: dense {:.0} ns/round, naive {:.0} ns/round, speedup {:.2}x, traces_identical={}",
            c.engine,
            c.nodes,
            c.docs,
            c.rounds,
            c.staleness,
            c.dense_ns_per_round,
            c.naive_ns_per_round,
            c.speedup,
            c.traces_identical
        );
    }

    eprintln!("webwave-bench: webfold scaling");
    let folds: Vec<(usize, f64)> = [1_000, 10_000, 100_000]
        .into_iter()
        .map(bench_webfold)
        .collect();
    for &(n, ns) in &folds {
        eprintln!("  webfold nodes={n}: {:.3} ms", ns / 1e6);
    }

    // Hand-built JSON (the vendored serde stub does not serialize).
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"webfold_scaling\",\n");
    json.push_str("  \"generated_by\": \"webwave-bench\",\n");
    json.push_str("  \"samples\": ");
    let _ = write!(json, "{SAMPLES}");
    json.push_str(",\n  \"engine_comparisons\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"nodes\": {}, \"docs\": {}, \"rounds\": {}, \"staleness\": {}, \"dense_ns_per_round\": {:.0}, \"naive_ns_per_round\": {:.0}, \"speedup\": {:.3}, \"traces_identical\": {}}}{}",
            c.engine,
            c.nodes,
            c.docs,
            c.rounds,
            c.staleness,
            c.dense_ns_per_round,
            c.naive_ns_per_round,
            c.speedup,
            c.traces_identical,
            if i + 1 < comparisons.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"webfold_ns\": [\n");
    for (i, &(n, ns)) in folds.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"nodes\": {n}, \"ns\": {:.0}}}{}",
            ns,
            if i + 1 < folds.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&out_path, &json).expect("write bench output");
    eprintln!("webwave-bench: wrote {out_path}");

    let worst = comparisons
        .iter()
        .map(|c| c.speedup)
        .fold(f64::INFINITY, f64::min);
    let all_identical = comparisons.iter().all(|c| c.traces_identical);
    eprintln!("webwave-bench: worst speedup {worst:.2}x, traces identical: {all_identical}");
    if !all_identical {
        eprintln!("webwave-bench: WARNING — dense/naive traces diverge");
        std::process::exit(1);
    }
}
